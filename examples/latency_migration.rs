//! Experiment 1 (paper Fig 11): agile migration to a lower-latency path.
//!
//! An ICMP stream runs for 60 s on tunnel 1 (MIA-SAO-AMS, crossing the
//! 20 ms tc-delayed link). The optimizer is then consulted with the
//! min-latency objective; Hecate's RTT forecasts recommend tunnel 2
//! (MIA-CHI-AMS) and the flow migrates with a single PBR rewrite at the
//! MIA edge — no core-network change. The RTT drops ~4x.
//!
//! Run with: `cargo run --release --example latency_migration`

use polka_hecate::framework::dashboard::sparkline;
use polka_hecate::framework::sdn::SelfDrivingNetwork;

fn main() {
    let mut sdn = SelfDrivingNetwork::testbed(42).expect("testbed builds");
    println!("tunnels: {:?}", sdn.tunnel_names());
    for name in sdn.tunnel_names() {
        let t = sdn.tunnel(&name).unwrap();
        let hops: Vec<&str> = t
            .node_path
            .iter()
            .map(|&n| sdn.sim.topo.node_name(n))
            .collect();
        println!(
            "  {name}: {} (label {} bits)",
            hops.join("-"),
            t.label_bits()
        );
    }

    let result = sdn.run_latency_migration(60).expect("experiment completes");

    println!("\nping host1 -> host2, 1 Hz:");
    let rtts: Vec<f64> = result.rtt_series.iter().map(|(_, v)| *v).collect();
    println!("  {}", sparkline(&rtts));
    for (t, rtt) in result.rtt_series.iter().step_by(10) {
        println!("  t={t:5.0}s rtt={rtt:6.2} ms");
    }
    println!(
        "\nmigration at t={}s: {} -> {}",
        result.migration_at_s, result.tunnel_before, result.tunnel_after
    );
    println!(
        "mean RTT before: {:6.2} ms   after: {:6.2} ms   improvement: {:.1}x",
        result.mean_before_ms,
        result.mean_after_ms,
        result.mean_before_ms / result.mean_after_ms
    );
    assert!(result.mean_after_ms < result.mean_before_ms / 2.0);
    println!("\nFig 11 shape reproduced: single PBR rewrite, large RTT drop.");
}
