//! Quickstart: the paper's Figure 1 worked example, end to end.
//!
//! Builds the three-node PolKA network of Fig 1, compiles a routeID with
//! the polynomial CRT, forwards a packet through each core node with a
//! single `mod` per hop, round-trips the label through the wire header,
//! and verifies proof-of-transit — all of PolKA's moving parts in ~60
//! lines.
//!
//! Run with: `cargo run --example quickstart`

use polka_hecate::gf2poly::Poly;
use polka_hecate::polka::header::PolkaHeader;
use polka_hecate::polka::{pot, CoreNode, NodeId, PortId, RouteSpec};

fn main() {
    // The paper's node identifiers: s1 = t+1, s2 = t^2+t+1, s3 = t^3+t+1.
    let s1 = NodeId::new("s1", Poly::from_binary_str("11"));
    let s2 = NodeId::new("s2", Poly::from_binary_str("111"));
    let s3 = NodeId::new("s3", Poly::from_binary_str("1011"));
    println!("node IDs:");
    for n in [&s1, &s2, &s3] {
        println!("  {} = {}", n.name(), n.poly());
    }

    // Output ports per the paper: o1 = 1, o2 = t (port 2), o3 = t^2+t (port 6).
    let spec = RouteSpec::new(vec![
        (s1.clone(), PortId(1)),
        (s2.clone(), PortId(2)),
        (s3.clone(), PortId(6)),
    ]);
    let route = spec.compile().expect("coprime irreducible moduli");
    println!("\nrouteID = {} ({} bits)", route, route.label_bits());

    // Each core node computes one polynomial remainder — no tables,
    // no header rewrite.
    println!("\nper-hop forwarding (routeID mod nodeID):");
    for node_id in [&s1, &s2, &s3] {
        let mut node = CoreNode::new(node_id.clone());
        let port = node.forward(&route).expect("remainder decodes to a port");
        println!("  at {}: -> {}", node_id.name(), port);
    }

    // The paper's direct check: routeID 10000 gives port 2 at s2.
    let fixed = polka_hecate::polka::RouteId::from_poly(Poly::from_binary_str("10000"));
    let mut node2 = CoreNode::new(s2.clone());
    println!(
        "\npaper check: routeID=10000 at s2 -> {}",
        node2.forward(&fixed).unwrap()
    );

    // Wire encoding round-trip.
    let hdr = PolkaHeader::new(route.clone());
    let mut wire = hdr.encode();
    let decoded = PolkaHeader::decode(&mut wire).expect("well-formed header");
    assert_eq!(decoded.route, route);
    println!("header: {} bytes on the wire", hdr.wire_len());

    // Proof-of-transit: the egress can verify the packet crossed
    // exactly s1, s2, s3 in order.
    let nodes = [s1, s2, s3];
    let observed = pot::accumulate_pot(&route, &nodes);
    assert!(pot::verify_pot(&spec, observed));
    println!("proof-of-transit verified: packet crossed s1, s2, s3 in order");
}
