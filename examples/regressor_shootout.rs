//! The paper's Fig 6 evaluation: all eighteen regressors on the UQ
//! wireless traces, RMSE per path, run in parallel.
//!
//! Prints the RMSE table in the paper's format (`R13: RFR(wifi, lte)`)
//! plus the ranking insight the paper draws from it: tree ensembles in
//! the lower-left corner, Lasso/ElasticNet over-shrunk, GPR off the
//! chart.
//!
//! Run with: `cargo run --release --example regressor_shootout`

use polka_hecate::hecate_ml::{evaluate_all, PipelineConfig};
use polka_hecate::traces::UqDataset;

fn main() {
    let data = UqDataset::default_dataset();
    let config = PipelineConfig::default();

    println!("evaluating 18 regressors on WiFi (Path 1) and LTE (Path 2)…");
    let wifi = evaluate_all(&data.wifi, &config);
    let lte = evaluate_all(&data.lte, &config);

    println!(
        "\n{:<4} {:<12} {:>10} {:>10} {:>9}",
        "id", "model", "WiFi RMSE", "LTE RMSE", "fit ms"
    );
    let mut rows = Vec::new();
    for (w, l) in wifi.iter().zip(&lte) {
        let (w, l) = match (w, l) {
            (Ok(w), Ok(l)) => (w, l),
            _ => continue,
        };
        println!(
            "{:<4} {:<12} {:>10.2} {:>10.2} {:>9.1}",
            w.kind.paper_id(),
            w.kind.label(),
            w.rmse,
            l.rmse,
            w.fit_time.as_secs_f64() * 1000.0
        );
        rows.push((w.kind, w.rmse, l.rmse));
    }

    // The paper's reading of the scatter plot.
    rows.sort_by(|a, b| (a.1 + a.2).total_cmp(&(b.1 + b.2)));
    println!("\nbest by combined RMSE:");
    for (kind, w, l) in rows.iter().take(4) {
        println!("  {kind}  (wifi {w:.2}, lte {l:.2})");
    }
    println!("worst by combined RMSE:");
    for (kind, w, l) in rows.iter().rev().take(3) {
        println!("  {kind}  (wifi {w:.2}, lte {l:.2})");
    }
    let best = rows.first().expect("at least one model");
    println!(
        "\nselected for the routing framework: {} — the paper chose R13:RFR",
        best.0
    );
}
