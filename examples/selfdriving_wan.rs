//! A self-driving WAN session: the full Fig 3/4 loop with the Scheduler,
//! Dashboard, telemetry-driven decisions and a link failure thrown in.
//!
//! Scenario: three scheduled flows arrive over time; Hecate steers each
//! to the best predicted tunnel; mid-run the MIA-SAO link fails and the
//! framework re-optimizes the survivors onto the remaining paths.
//!
//! Run with: `cargo run --release --example selfdriving_wan`

use polka_hecate::framework::dashboard::render_frame;
use polka_hecate::framework::scheduler::FlowRequest;
use polka_hecate::framework::sdn::SelfDrivingNetwork;
use polka_hecate::netsim::Event;

fn main() {
    let mut sdn = SelfDrivingNetwork::testbed(7).expect("testbed builds");

    // Users request flows over time via the Dashboard -> Scheduler.
    sdn.scheduler.submit(FlowRequest {
        label: "flow1".into(),
        tos: 32,
        demand_mbps: None,
        start_ms: 15_000,
    });
    sdn.scheduler.submit(FlowRequest {
        label: "flow2".into(),
        tos: 64,
        demand_mbps: Some(6.0),
        start_ms: 30_000,
    });
    sdn.scheduler.submit(FlowRequest {
        label: "flow3".into(),
        tos: 96,
        demand_mbps: None,
        start_ms: 45_000,
    });

    // Warm-up + arrivals.
    sdn.advance(60_000).expect("sim advances");
    println!("after 60s:");
    for label in ["flow1", "flow2", "flow3"] {
        println!(
            "  {label} on {:?} at {:.2} Mbps",
            sdn.flow_tunnel(label).unwrap_or("?"),
            sdn.flow_series(label)
                .last()
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        );
    }

    // Re-optimize with full telemetry.
    let moves = sdn.reoptimize_bandwidth().expect("reoptimization");
    println!("\noptimizer assignment:");
    for (flow, tunnel) in &moves {
        println!("  {flow} -> {tunnel}");
    }
    sdn.advance(90_000).expect("sim advances");

    // Fail the MIA-SAO link: tunnel1 dies.
    let mia = sdn.sim.topo.node("MIA").expect("MIA exists");
    let sao = sdn.sim.topo.node("SAO").expect("SAO exists");
    let lid = sdn.sim.topo.link_between(mia, sao).expect("link exists");
    let now = sdn.sim.now_ms();
    sdn.sim
        .schedule(now, Event::SetLinkUp(lid, false))
        .expect("link events are always schedulable");
    println!("\nt=90s: MIA-SAO link FAILED");
    sdn.advance(105_000).expect("sim advances");

    // Re-optimize: survivors of tunnel1 must move.
    let moves = sdn.reoptimize_bandwidth().expect("failure recovery");
    println!("recovery assignment:");
    for (flow, tunnel) in &moves {
        println!("  {flow} -> {tunnel}");
    }
    sdn.advance(135_000).expect("sim advances");

    // Dashboard frame.
    let links: Vec<(String, f64)> = sdn
        .sim
        .telemetry()
        .iter()
        .rev()
        .filter(|r| r.key.starts_with("link:"))
        .take(8)
        .map(|r| (r.key.clone(), r.value))
        .collect();
    let flows: Vec<(String, f64, Vec<f64>)> = ["flow1", "flow2", "flow3"]
        .iter()
        .map(|l| {
            let series: Vec<f64> = sdn.flow_series(l).iter().map(|(_, v)| *v).collect();
            let last = series.last().copied().unwrap_or(0.0);
            (l.to_string(), last, series)
        })
        .collect();
    println!("\n{}", render_frame("t=135s", &links, &flows));

    let total: f64 = flows.iter().map(|(_, last, _)| last).sum();
    println!("aggregate goodput after failure recovery: {total:.2} Mbps");
    assert!(
        total > 10.0,
        "the network must keep delivering after the failure"
    );
}
