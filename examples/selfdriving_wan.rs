//! A self-driving WAN session, scenario-engine edition: one canned
//! scenario from the catalog — an ESnet-like US backbone under diurnal
//! gravity traffic with a mid-run flap storm on the primary tunnel —
//! executed across the full routing-policy matrix.
//!
//! The scenario engine builds the topology, discovers link-disjoint
//! PolKA tunnels between the farthest PoPs, drives background load and
//! scripted impairments through the `SelfDrivingNetwork` control loop,
//! and scores each policy (Hecate forecasts vs last-sample vs static
//! shortest-path) into a deterministic `Scorecard`.
//!
//! Run with: `cargo run --release --example selfdriving_wan`

use polka_hecate::scenarios::{catalog, render_matrix, Policy};

fn main() {
    let scenario = catalog()
        .into_iter()
        .find(|s| s.name == "esnet-diurnal-flaps")
        .expect("catalog scenario exists");
    println!("scenario: {}", scenario.describe());
    println!(
        "seed    : {} (replay = same numbers, bit for bit)\n",
        scenario.seed
    );

    let cards = scenario.run_matrix().expect("scenario runs");
    print!("{}", render_matrix(&scenario.name, &cards));

    // The adaptive policies must beat parking every flow on the
    // shortest path while its links flap.
    let by_policy = |p: Policy| {
        cards
            .iter()
            .find(|c| c.policy == p.name())
            .expect("policy row")
    };
    let hecate = by_policy(Policy::Hecate);
    let fixed = by_policy(Policy::StaticShortest);
    println!(
        "\nhecate {:.2} Mbps vs static {:.2} Mbps ({} migrations, {} SLO-violation epochs vs {})",
        hecate.mean_aggregate_mbps,
        fixed.mean_aggregate_mbps,
        hecate.migrations,
        hecate.slo_violation_epochs,
        fixed.slo_violation_epochs,
    );
    assert!(
        hecate.mean_aggregate_mbps > fixed.mean_aggregate_mbps,
        "the self-driving loop must keep delivering through the storm"
    );
}
