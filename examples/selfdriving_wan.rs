//! A self-driving WAN session, scenario-engine edition, in two acts:
//!
//! 1. **Single pair** — the canned `esnet-diurnal-flaps` scenario: an
//!    ESnet-like US backbone under diurnal gravity traffic with a
//!    mid-run flap storm on the primary tunnel, executed across the
//!    full routing-policy matrix.
//! 2. **Traffic matrix** — the same backbone managed as *four*
//!    ingress/egress pairs at once (`wan-multipair`, built on
//!    `SelfDrivingNetwork::over_topology_pairs`): each pair gets its
//!    own disjoint candidate tunnels, telemetry is keyed
//!    `pair/tunnel/metric`, and the optimizer water-fills all pairs'
//!    flows so no shared trunk is oversubscribed. The scorecard gains
//!    one attribution row per pair.
//!
//! Run with: `cargo run --release --example selfdriving_wan`

use polka_hecate::scenarios::{catalog, render_matrix, Policy, Scorecard};

fn run_entry(name: &str) -> Vec<Scorecard> {
    let scenario = catalog()
        .into_iter()
        .find(|s| s.name == name)
        .expect("catalog scenario exists");
    println!("scenario: {}", scenario.describe());
    println!(
        "seed    : {} (replay = same numbers, bit for bit)\n",
        scenario.seed
    );
    let cards = scenario.run_matrix().expect("scenario runs");
    print!("{}", render_matrix(&scenario.name, &cards));
    cards
}

fn main() {
    // Act 1: the classic single managed pair under a flap storm.
    let cards = run_entry("esnet-diurnal-flaps");
    let by_policy = |cards: &[Scorecard], p: Policy| {
        cards
            .iter()
            .find(|c| c.policy == p.name())
            .cloned()
            .expect("policy row")
    };
    let hecate = by_policy(&cards, Policy::Hecate);
    let fixed = by_policy(&cards, Policy::StaticShortest);
    println!(
        "\nhecate {:.2} Mbps vs static {:.2} Mbps ({} migrations, {} SLO-violation epochs vs {})\n",
        hecate.mean_aggregate_mbps,
        fixed.mean_aggregate_mbps,
        hecate.migrations,
        hecate.slo_violation_epochs,
        fixed.slo_violation_epochs,
    );
    assert!(
        hecate.mean_aggregate_mbps > fixed.mean_aggregate_mbps,
        "the self-driving loop must keep delivering through the storm"
    );

    // Act 2: the same backbone as a managed traffic matrix — four
    // pairs, shared trunks, a permanent failure on pair 0's primary.
    let cards = run_entry("wan-multipair");
    let hecate = by_policy(&cards, Policy::Hecate);
    let fixed = by_policy(&cards, Policy::StaticShortest);
    println!("\nper-pair attribution (hecate):");
    for p in &hecate.per_pair {
        println!(
            "  {} {:<12} {:>7.2} Mbps  p99 {:>6.2}  {} migration(s)",
            p.pair, p.route, p.mean_goodput_mbps, p.p99_flow_mbps, p.migrations
        );
    }
    println!(
        "\nhecate {:.2} Mbps vs static {:.2} Mbps across the whole matrix",
        hecate.mean_aggregate_mbps, fixed.mean_aggregate_mbps,
    );
    assert!(
        hecate.mean_aggregate_mbps >= fixed.mean_aggregate_mbps,
        "shared-link-aware steering must not lose to static routing"
    );
}
