//! Experiment 2 (paper Fig 12): flow aggregation across multiple paths.
//!
//! Three greedy TCP flows (ToS 32/64/96) start on tunnel 1, sharing its
//! 20 Mbps bottleneck (< 20 Mbps total goodput). At t=60 s the optimizer
//! redistributes them — one flow per tunnel (20/10/5 Mbps bottlenecks) —
//! and aggregate goodput rises to ≈ 30 Mbps, matching the paper's
//! reported increase.
//!
//! Run with: `cargo run --release --example flow_aggregation`

use polka_hecate::framework::dashboard::{flow_row, sparkline};
use polka_hecate::framework::sdn::SelfDrivingNetwork;

fn main() {
    let mut sdn = SelfDrivingNetwork::testbed(42).expect("testbed builds");
    let result = sdn.run_flow_aggregation(60).expect("experiment completes");

    println!("per-flow goodput (1 Hz):");
    for (label, series) in &result.per_flow {
        let values: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
        let last = values.last().copied().unwrap_or(0.0);
        println!("  {}", flow_row(label, last, &values));
    }
    let totals: Vec<f64> = result.total.iter().map(|(_, v)| *v).collect();
    println!("  total      {}", sparkline(&totals));

    println!("\naggregate goodput samples:");
    for (t, v) in result.total.iter().step_by(10) {
        println!("  t={t:5.0}s total={v:6.2} Mbps");
    }

    println!(
        "\nredistribution at t={}s; final assignment:",
        result.redistribution_at_s
    );
    for (flow, tunnel) in &result.assignment {
        println!("  {flow} -> {tunnel}");
    }
    println!(
        "\nsteady aggregate before: {:5.2} Mbps   after: {:5.2} Mbps",
        result.total_before_mbps, result.total_after_mbps
    );
    assert!(
        result.total_before_mbps < 20.0,
        "phase 1 under the 20 Mbps cap"
    );
    assert!(result.total_after_mbps > 25.0, "phase 2 near 30 Mbps");
    println!("\nFig 12 shape reproduced: <20 Mbps on one tunnel, ~30 Mbps split.");
}
