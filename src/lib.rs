//! # polka-hecate
//!
//! A full Rust reproduction of *"Framework for Integrating Machine
//! Learning Methods for Path-Aware Source Routing"* (SC 2024,
//! arXiv:2501.04624): ML-driven traffic engineering (Hecate) steering a
//! polynomial source-routing data plane (PolKA) over an emulated
//! RARE/freeRtr testbed.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`gf2poly`] — GF(2)\[t\] polynomial arithmetic (CRT, irreducibles);
//! * [`polka`] — routeID compilation, stateless forwarding, migration,
//!   proof-of-transit and multipath extensions, port-switching baseline;
//! * [`dataplane`] — the packet-level PolKA forwarding plane: route
//!   labels behind one trait (routeID vs segment list), per-node port
//!   tables, batch-of-packets-per-hop forwarding, an ingress-sharded
//!   crossbeam pipeline, and a deterministic drop-tail-queue emulator
//!   with egress proof-of-transit checks;
//! * [`linalg`] — dense linear algebra + parallel helpers;
//! * [`hecate_ml`] — the paper's eighteen regressors and the evaluation
//!   pipeline;
//! * [`traces`] — the synthetic UQ wireless dataset and workload shapes;
//! * [`lp`] — simplex and the Sec. III TE formulations;
//! * [`netsim`] — the discrete-event flow-level network emulator;
//! * [`freertr`] — control-plane emulation (config dialect, ACL/PBR,
//!   message-queue router agents);
//! * [`framework`] — the integrated self-driving network and the two
//!   experiment runners (Fig 11, Fig 12), built around the shared
//!   ForecastEngine: a trained-model cache in `framework::hecate`
//!   (train once, roll/observe online, refit after N new samples),
//!   batched scheduler-tick decisions via
//!   `framework::controller::decide_flows`, and a mirrored-ring
//!   telemetry store with zero-copy windowed reads;
//! * [`scenarios`] — the deterministic scenario engine: a topology zoo
//!   (fat-tree, ring+chords, two-tier WAN, Waxman/Erdős–Rényi, ESnet-
//!   and GÉANT-like maps), traffic-matrix generators (gravity, diurnal,
//!   elephant/mice, on/off), scripted failure timelines, and a runner
//!   that scores routing policies (`Scorecard`) across the whole
//!   catalog from a single `u64` seed.
//!
//! ## Quickstart
//!
//! ```
//! use polka_hecate::framework::sdn::SelfDrivingNetwork;
//!
//! let mut sdn = SelfDrivingNetwork::testbed(42).unwrap();
//! let result = sdn.run_latency_migration(20).unwrap();
//! assert!(result.mean_after_ms < result.mean_before_ms);
//! ```

pub use dataplane;
pub use framework;
pub use freertr;
pub use gf2poly;
pub use hecate_ml;
pub use linalg;
pub use lp;
pub use netsim;
pub use polka;
pub use scenarios;
pub use traces;
