//! Integration test for the extension experiment: the framework steering
//! a flow over wireless-trace-driven links. The walk leaves the building
//! at t≈70 s: the WiFi path (tunnel 1) collapses while LTE (tunnel 2)
//! picks up — adaptive policies must follow, static must lose.

use polka_hecate::framework::sdn::{SelfDrivingNetwork, SteeringPolicy};
use polka_hecate::traces::{UqDataset, UqSpec};

fn traces() -> UqDataset {
    // The walk goes outdoors early, so most of the run happens where the
    // WiFi path is collapsed and LTE is strong — the regime a static
    // choice made indoors cannot survive.
    UqDataset::generate(&UqSpec {
        len: 200,
        outdoor_at: 40,
        arrival_at: 185,
        seed: 6,
    })
}

fn run(policy: SteeringPolicy) -> polka_hecate::framework::sdn::SteeringResult {
    let d = traces();
    let mut sdn = SelfDrivingNetwork::testbed(21).unwrap();
    sdn.run_trace_driven_steering(policy, 180, 10, &d.wifi, &d.lte)
        .unwrap()
}

#[test]
fn adaptive_steering_beats_static() {
    let hecate = run(SteeringPolicy::Hecate);
    let last = run(SteeringPolicy::LastSample);
    let fixed = run(SteeringPolicy::Static);

    // Over the whole run (which includes the indoor prefix where all
    // policies ride the same good WiFi path) adaptive must still win.
    assert!(
        hecate.mean_goodput > fixed.mean_goodput,
        "hecate {} must beat static {}",
        hecate.mean_goodput,
        fixed.mean_goodput
    );
    assert!(
        last.mean_goodput > fixed.mean_goodput,
        "last-sample {} must beat static {}",
        last.mean_goodput,
        fixed.mean_goodput
    );

    // The decisive window is after the walk goes outdoors (t > 70 s):
    // the WiFi tunnel is collapsed, LTE is strong, and only adaptive
    // policies are on it.
    let outdoor_mean = |r: &polka_hecate::framework::sdn::SteeringResult| {
        let v: Vec<f64> = r
            .goodput
            .iter()
            .filter(|(s, _)| *s > 70.0)
            .map(|(_, v)| *v)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let (h, f) = (outdoor_mean(&hecate), outdoor_mean(&fixed));
    assert!(
        h > f * 1.25,
        "outdoors, hecate {h} must clearly beat static {f}"
    );

    // Adaptive policies actually migrated; static never did.
    assert!(hecate.migrations >= 1);
    assert_eq!(fixed.migrations, 0);
}

#[test]
fn steering_keeps_goodput_above_collapsed_wifi() {
    let hecate = run(SteeringPolicy::Hecate);
    // After the outdoor switch, the WiFi path is worth ~12 Mbps at best;
    // LTE runs near 18-24. A steered flow should average well above the
    // collapsed-WiFi level in the second half of the run.
    let second_half: Vec<f64> = hecate
        .goodput
        .iter()
        .filter(|(s, _)| *s > 110.0)
        .map(|(_, v)| *v)
        .collect();
    let mean = second_half.iter().sum::<f64>() / second_half.len().max(1) as f64;
    assert!(mean > 9.0, "steered second-half mean {mean}");
}
