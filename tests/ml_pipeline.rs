//! Integration test: the Fig 6/7/8 evaluation pipeline on the UQ traces.
//!
//! Asserts the paper's qualitative findings: tree ensembles do best, the
//! over-regularized linear family does poorly, GPR is the outlier, WiFi
//! is harder than LTE, and RFR tracks the series where GPR collapses.

use polka_hecate::hecate_ml::{evaluate_all, evaluate_regressor, PipelineConfig, RegressorKind};
use polka_hecate::traces::UqDataset;

fn rmse_of(reports: &[(RegressorKind, f64)], kind: RegressorKind) -> f64 {
    reports
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, r)| *r)
        .unwrap_or_else(|| panic!("{kind} missing"))
}

#[test]
fn fig6_ranking_shape() {
    let data = UqDataset::default_dataset();
    let cfg = PipelineConfig::default();
    let wifi: Vec<(RegressorKind, f64)> = evaluate_all(&data.wifi, &cfg)
        .into_iter()
        .filter_map(|r| r.ok().map(|r| (r.kind, r.rmse)))
        .collect();
    let lte: Vec<(RegressorKind, f64)> = evaluate_all(&data.lte, &cfg)
        .into_iter()
        .filter_map(|r| r.ok().map(|r| (r.kind, r.rmse)))
        .collect();
    assert_eq!(wifi.len(), 18, "all models evaluate on WiFi");
    assert_eq!(lte.len(), 18, "all models evaluate on LTE");

    // WiFi (high variance) is harder than LTE for the good models, as in
    // the paper (RFR: WiFi 14.23 vs LTE 6.73).
    let rfr_wifi = rmse_of(&wifi, RegressorKind::Rfr);
    let rfr_lte = rmse_of(&lte, RegressorKind::Rfr);
    assert!(
        rfr_wifi > rfr_lte,
        "WiFi rmse {rfr_wifi} should exceed LTE rmse {rfr_lte}"
    );

    // Tree ensembles beat the over-shrunk Lasso/ElasticNet on WiFi.
    let lasso_wifi = rmse_of(&wifi, RegressorKind::Lasso);
    let en_wifi = rmse_of(&wifi, RegressorKind::ElasticNet);
    assert!(rfr_wifi < lasso_wifi, "RFR {rfr_wifi} < Lasso {lasso_wifi}");
    assert!(rfr_wifi < en_wifi, "RFR {rfr_wifi} < ElasticNet {en_wifi}");
    let gbr_wifi = rmse_of(&wifi, RegressorKind::Gbr);
    assert!(gbr_wifi < lasso_wifi, "GBR {gbr_wifi} < Lasso {lasso_wifi}");

    // GPR is the paper's off-the-chart outlier (excluded from Fig 6).
    let gpr_wifi = rmse_of(&wifi, RegressorKind::Gpr);
    let median_wifi = {
        let mut v: Vec<f64> = wifi.iter().map(|(_, r)| *r).collect();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    assert!(
        gpr_wifi > 1.5 * median_wifi,
        "GPR {gpr_wifi} should be far above the median {median_wifi}"
    );

    // RFR lands in the better half of the field on both paths.
    let better_than_rfr_wifi = wifi.iter().filter(|(_, r)| *r < rfr_wifi).count();
    assert!(
        better_than_rfr_wifi <= 8,
        "RFR should be in the top half on WiFi ({better_than_rfr_wifi} better)"
    );
}

#[test]
fn fig7_fig8_rfr_tracks_gpr_collapses() {
    let data = UqDataset::default_dataset();
    let cfg = PipelineConfig::default();
    let rfr = evaluate_regressor(RegressorKind::Rfr, &data.wifi, &cfg).unwrap();
    let gpr = evaluate_regressor(RegressorKind::Gpr, &data.wifi, &cfg).unwrap();

    // Fig 7 vs Fig 8: RFR close to observed, GPR far off.
    assert!(
        gpr.rmse > 2.0 * rfr.rmse,
        "GPR rmse {} should dwarf RFR rmse {}",
        gpr.rmse,
        rfr.rmse
    );
    // The paper's GPR RMSE (WiFi 34.75, LTE 52.43) exceeds the series'
    // own standard deviation — i.e. GPR does *worse than predicting the
    // mean* (R² < 0): the unit-length-scale kernel on near-duplicate
    // plateau rows produces wild oscillation, exactly what Fig 8 shows.
    assert!(
        gpr.r2 < 0.0,
        "GPR must be worse than the mean predictor, r2 = {}",
        gpr.r2
    );
    // RFR recovers a meaningful share of the signal (Fig 7 tracks).
    assert!(rfr.r2 > 0.3, "RFR r2 {} should be clearly positive", rfr.r2);
}

#[test]
fn pipeline_respects_time_ordering() {
    // No leakage: evaluating on a series whose future is wildly different
    // from its past must produce honest (large) errors, not suspicious
    // perfection.
    let mut series = vec![10.0; 300];
    for (i, v) in series.iter_mut().enumerate().skip(225) {
        *v = 50.0 + (i as f64 % 7.0);
    }
    let cfg = PipelineConfig::default();
    let rep = evaluate_regressor(RegressorKind::Rfr, &series, &cfg).unwrap();
    assert!(
        rep.rmse > 5.0,
        "train on calm past, test on shifted future: rmse {} must be large",
        rep.rmse
    );
}
