//! Smoke test for the `polka-hecate` facade: one public entry point per
//! re-exported crate, exercised through the facade paths a downstream
//! user would write. Guards against a re-export or crate edge silently
//! rotting out of the workspace manifest.

use polka_hecate::freertr::config::{fig10_mia_config, parse_config};
use polka_hecate::gf2poly::Poly;
use polka_hecate::hecate_ml::model::Regressor;
use polka_hecate::hecate_ml::tree::DecisionTreeRegressor;
use polka_hecate::linalg::Matrix;
use polka_hecate::lp::te::min_max_utilization;
use polka_hecate::netsim::topo::global_p4_lab;
use polka_hecate::netsim::{Event, FlowSpec, Simulation};
use polka_hecate::polka::{CoreNode, NodeId, PortId, RouteSpec};
use polka_hecate::traces::UqDataset;

#[test]
fn gf2poly_multiplication_works_through_facade() {
    // (t + 1)(t^2 + t + 1) = t^3 + 1 over GF(2).
    let a = Poly::from_binary_str("11");
    let b = Poly::from_binary_str("111");
    assert_eq!(a.mul_ref(&b), Poly::from_binary_str("1001"));
}

#[test]
fn polka_route_compiles_and_forwards() {
    let s1 = NodeId::new("s1", Poly::from_binary_str("11"));
    let s2 = NodeId::new("s2", Poly::from_binary_str("111"));
    let spec = RouteSpec::new(vec![(s1.clone(), PortId(1)), (s2.clone(), PortId(2))]);
    let route = spec.compile().expect("routeID compiles");
    assert_eq!(CoreNode::new(s1).forward(&route), Some(PortId(1)));
    assert_eq!(CoreNode::new(s2).forward(&route), Some(PortId(2)));
}

#[test]
fn hecate_ml_regressor_fits() {
    let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
    let y: Vec<f64> = (0..60).map(|i| if i < 30 { 2.0 } else { 9.0 }).collect();
    let mut model = DecisionTreeRegressor::new();
    model.fit(&Matrix::from_rows(&rows), &y).expect("fit");
    let pred = model
        .predict(&Matrix::from_rows(&[vec![10.0]]))
        .expect("predict");
    assert!((pred[0] - 2.0).abs() < 1e-9);
}

#[test]
fn netsim_carries_one_flow() {
    let topo = global_p4_lab();
    let path = topo.path_by_names(&["MIA", "CHI", "AMS"]).expect("path");
    let mut sim = Simulation::new(topo, 7);
    sim.schedule(
        0,
        Event::StartFlow {
            id: polka_hecate::netsim::FlowId(1),
            spec: FlowSpec {
                src: path[0],
                dst: path[path.len() - 1],
                demand_mbps: Some(5.0),
                tos: 0,
                label: "smoke".into(),
            },
            path: path.clone(),
        },
    )
    .expect("valid path schedules");
    sim.run_until(2_000, 500);
    let rate = sim
        .flow_rate(polka_hecate::netsim::FlowId(1))
        .expect("flow exists");
    assert!(rate > 0.0, "flow should carry traffic, rate = {rate}");
}

#[test]
fn freertr_config_roundtrips() {
    let cfg = fig10_mia_config();
    let back = parse_config(&cfg.emit()).expect("emitted config parses");
    assert_eq!(back, cfg);
}

#[test]
fn lp_te_allocates_within_capacity() {
    let alloc = min_max_utilization(12.0, &[10.0, 10.0]).expect("feasible");
    let total: f64 = alloc.flows.iter().sum();
    assert!((total - 12.0).abs() < 1e-6);
    assert!(alloc.max_utilization <= 1.0 + 1e-9);
}

#[test]
fn traces_generate_the_two_paths() {
    let d = UqDataset::default_dataset();
    assert_eq!(d.wifi.len(), 500);
    assert_eq!(d.lte.len(), 500);
}
