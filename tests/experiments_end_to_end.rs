//! Integration tests: the paper's two testbed experiments, end to end.
//!
//! These assert the *shape* of Figs 11 and 12 — who wins, by roughly what
//! factor — not the authors' absolute numbers (our substrate is a
//! simulator, theirs was VirtualBox + freeRtr).

use polka_hecate::framework::sdn::SelfDrivingNetwork;

#[test]
fn fig11_latency_migration_shape() {
    let mut sdn = SelfDrivingNetwork::testbed(42).unwrap();
    let r = sdn.run_latency_migration(40).unwrap();

    // Migration happened, from tunnel1 to the low-latency tunnel2.
    assert_eq!(r.tunnel_before, "tunnel1");
    assert_eq!(r.tunnel_after, "tunnel2");

    // Phase 1 RTT ~ 2*(20+9) = 58 ms; phase 2 ~ 2*(3+5) = 16 ms.
    assert!(
        (r.mean_before_ms - 58.0).abs() < 6.0,
        "phase-1 RTT {} should sit near 58 ms",
        r.mean_before_ms
    );
    assert!(
        (r.mean_after_ms - 16.0).abs() < 4.0,
        "phase-2 RTT {} should sit near 16 ms",
        r.mean_after_ms
    );
    // The headline: a ~4x improvement from one PBR rewrite.
    let gain = r.mean_before_ms / r.mean_after_ms;
    assert!(gain > 2.5, "improvement {gain}x too small");

    // The series itself steps down at the migration point.
    let before_last = r.rtt_series[(r.migration_at_s as usize) - 1].1;
    let after_first = r.rtt_series[r.migration_at_s as usize].1;
    assert!(
        after_first < before_last * 0.6,
        "visible step in the series"
    );
}

#[test]
fn fig12_flow_aggregation_shape() {
    let mut sdn = SelfDrivingNetwork::testbed(42).unwrap();
    let r = sdn.run_flow_aggregation(40).unwrap();

    // Phase 1: all three flows share tunnel1 -> total < 20 Mbps.
    assert!(
        r.total_before_mbps < 20.0,
        "phase-1 aggregate {} must stay under the 20 Mbps bottleneck",
        r.total_before_mbps
    );
    assert!(
        r.total_before_mbps > 13.0,
        "phase-1 aggregate {} should still near-saturate tunnel1",
        r.total_before_mbps
    );

    // Redistribution: one flow per tunnel.
    let mut tunnels: Vec<&str> = r.assignment.iter().map(|(_, t)| t.as_str()).collect();
    tunnels.sort_unstable();
    assert_eq!(tunnels, vec!["tunnel1", "tunnel2", "tunnel3"]);

    // Phase 2: aggregate rises to ~30 Mbps (0.86 * 35).
    assert!(
        (r.total_after_mbps - 30.0).abs() < 3.0,
        "phase-2 aggregate {} should approach 30 Mbps",
        r.total_after_mbps
    );
    assert!(r.total_after_mbps > r.total_before_mbps * 1.5);
}

#[test]
fn experiments_are_deterministic_given_seed() {
    let run = |seed| {
        let mut sdn = SelfDrivingNetwork::testbed(seed).unwrap();
        let r = sdn.run_latency_migration(20).unwrap();
        (r.mean_before_ms, r.mean_after_ms)
    };
    assert_eq!(run(9), run(9));
}
