//! Integration test: PolKA forwarding across the emulated Global P4 Lab
//! topology, including migration agility and recovery — pure data-plane
//! properties the framework relies on.

use polka_hecate::freertr::config::fig10_mia_config;
use polka_hecate::freertr::packet::PacketMeta;
use polka_hecate::freertr::prefix::Ipv4Prefix;
use polka_hecate::freertr::resolve::{allocator_for, compile_tunnel, walk_route};
use polka_hecate::netsim::topo::global_p4_lab;
use polka_hecate::polka::baseline::SegmentListRoute;
use polka_hecate::polka::PortId;

fn addr(s: &str) -> u32 {
    Ipv4Prefix::parse_addr(s).unwrap()
}

#[test]
fn packet_classification_to_delivery() {
    // A ToS-96 TCP packet: ACL flow3 -> PBR -> tunnel -> routeID -> walk.
    let topo = global_p4_lab();
    let mut alloc = allocator_for(&topo);
    let mut cfg = fig10_mia_config();
    cfg.set_pbr("flow3", "tunnel3").unwrap();

    let packet = PacketMeta::tcp(addr("40.40.1.10"), addr("40.40.2.2"), 40000, 5001, 96);
    let tunnel_name = cfg.classify(&packet).expect("packet matches flow3");
    assert_eq!(tunnel_name, "tunnel3");

    let tunnel = cfg.tunnel(tunnel_name).unwrap();
    let compiled = compile_tunnel(tunnel, &topo, &mut alloc).unwrap();
    let visited = walk_route(&compiled, &topo, &alloc).unwrap();
    let names: Vec<&str> = visited.iter().map(|&n| topo.node_name(n)).collect();
    assert_eq!(names, vec!["MIA", "CAL", "CHI", "AMS"]);
}

#[test]
fn migration_swaps_one_label_core_untouched() {
    // The PolKA selling point: migrating flow3 from tunnel1 to tunnel3
    // changes nothing in the core — only the edge's PBR and the label
    // the edge stamps. Node IDs (core state) stay identical.
    let topo = global_p4_lab();
    let mut alloc = allocator_for(&topo);
    let cfg = fig10_mia_config();
    let before: Vec<_> = alloc
        .assignments()
        .map(|(n, id)| (n.to_string(), id.clone()))
        .collect();

    let t1 = compile_tunnel(cfg.tunnel("tunnel1").unwrap(), &topo, &mut alloc).unwrap();
    let t3 = compile_tunnel(cfg.tunnel("tunnel3").unwrap(), &topo, &mut alloc).unwrap();
    assert_ne!(t1.route, t3.route, "different labels");

    // Core state after compiling both tunnels = node IDs only; no
    // per-flow entries anywhere. Recompiling tunnel1 yields the same
    // label (pure function of topology + allocator).
    let t1_again = compile_tunnel(cfg.tunnel("tunnel1").unwrap(), &topo, &mut alloc).unwrap();
    assert_eq!(t1.route, t1_again.route);
    let _ = before; // assignments only grow; nothing per-flow
}

#[test]
fn polka_label_fixed_size_vs_segment_list_shrinking() {
    // Baseline comparison: the PolKA label is one immutable polynomial;
    // the port-switching label is a list that must be rewritten per hop.
    let topo = global_p4_lab();
    let mut alloc = allocator_for(&topo);
    let cfg = fig10_mia_config();
    let compiled = compile_tunnel(cfg.tunnel("tunnel3").unwrap(), &topo, &mut alloc).unwrap();

    // Same path expressed as a segment list.
    let ports: Vec<PortId> = compiled.spec.hops().iter().map(|(_, p)| *p).collect();
    let mut seglist = SegmentListRoute::new(ports.clone());

    // PolKA: same label at every hop. Segment list: shrinks.
    let polka_bits_at_each_hop = vec![compiled.label_bits(); ports.len()];
    let mut seg_bits = Vec::new();
    for _ in 0..ports.len() {
        seg_bits.push(seglist.label_bits(8));
        seglist.pop_forward();
    }
    assert!(polka_bits_at_each_hop.windows(2).all(|w| w[0] == w[1]));
    assert!(seg_bits.windows(2).all(|w| w[0] > w[1]), "{seg_bits:?}");
}

#[test]
fn failure_recovery_has_a_precomputable_backup() {
    // Fail MIA-CHI: tunnel2 dies, but tunnel1 still walks — the edge can
    // migrate with a precomputed backup label, no recomputation in core.
    let mut topo = global_p4_lab();
    let mut alloc = allocator_for(&topo);
    let cfg = fig10_mia_config();
    let t1 = compile_tunnel(cfg.tunnel("tunnel1").unwrap(), &topo, &mut alloc).unwrap();
    let t2 = compile_tunnel(cfg.tunnel("tunnel2").unwrap(), &topo, &mut alloc).unwrap();

    let mia = topo.node("MIA").unwrap();
    let chi = topo.node("CHI").unwrap();
    let lid = topo.link_between(mia, chi).unwrap();
    topo.link_mut(lid).up = false;

    // tunnel2's physical path is broken…
    assert!(topo.path_by_names(&["MIA", "CHI", "AMS"]).is_err());
    // …but tunnel1's label still steers correctly (and was never touched).
    let visited = walk_route(&t1, &topo, &alloc).unwrap();
    assert_eq!(visited, t1.node_path);
    let _ = t2;
}

#[test]
fn labels_stay_compact_on_long_paths() {
    // Deep path through the European ring: label grows linearly with
    // hops * node degree, staying well under an MTU.
    let topo = global_p4_lab();
    let mut alloc = allocator_for(&topo);
    let tunnel = polka_hecate::freertr::config::TunnelCfg {
        id: "deep".into(),
        destination: None,
        domain_path: vec![
            "MIA".into(),
            "CAL".into(),
            "CHI".into(),
            "AMS".into(),
            "PAR".into(),
            "POZ".into(),
        ],
        mode: Default::default(),
    };
    let compiled = compile_tunnel(&tunnel, &topo, &mut alloc).unwrap();
    let visited = walk_route(&compiled, &topo, &alloc).unwrap();
    assert_eq!(visited, compiled.node_path);
    assert!(compiled.label_bits() <= 5 * alloc.degree());
    assert!(compiled.label_bits() < 8 * 64, "fits a tiny header");
}
