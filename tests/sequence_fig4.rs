//! Integration test: the Fig 4 sequence diagram.
//!
//! "startTelemetry → createTelemetry → getTelemetry → insertNewFlow →
//! requestScheduler → newFlow → askHecatePath → configureTunnel" — the
//! framework must execute the interactions in that order, across the real
//! crates (netsim emulator, freeRtr agents, PolKA compilation, Hecate).

use polka_hecate::framework::optimizer::Objective;
use polka_hecate::framework::scheduler::FlowRequest;
use polka_hecate::framework::sdn::SelfDrivingNetwork;
use polka_hecate::framework::telemetry::{Metric, SeriesKey};

#[test]
fn fig4_sequence_order() {
    let mut sdn = SelfDrivingNetwork::testbed(4).unwrap();

    // startTelemetry / createTelemetry: the controller samples paths.
    sdn.advance(20_000).unwrap();
    assert!(
        sdn.telemetry
            .len(&SeriesKey::new("tunnel1", Metric::AvailableBandwidth))
            >= 12,
        "telemetry warm"
    );

    // insertNewFlow via the scheduler (the Dashboard -> Scheduler leg).
    sdn.scheduler.submit(FlowRequest {
        label: "flow1".into(),
        tos: 32,
        demand_mbps: None,
        start_ms: 21_000,
        pair: polka_hecate::framework::PairId::default(),
    });
    sdn.advance(25_000).unwrap();

    // The recorded interaction order must follow Fig 4.
    let steps = sdn.log.steps().to_vec();
    let idx = |name: &str| {
        steps
            .iter()
            .position(|s| s == name)
            .unwrap_or_else(|| panic!("step {name} missing from {steps:?}"))
    };
    assert!(idx("newFlow") < idx("getTelemetry"));
    assert!(idx("getTelemetry") < idx("askHecatePath"));
    assert!(idx("askHecatePath") < idx("configureTunnel"));
    assert!(idx("configureTunnel") < idx("flowStarted"));

    // The decision was forecast-driven (telemetry was warm), and the SR
    // service really configured the edge router.
    let cfg = sdn.edge().running_config();
    let entry = cfg
        .pbr
        .iter()
        .find(|e| e.acl == "flow1")
        .expect("PBR entry installed");
    assert_eq!(entry.tunnel, "tunnel1", "max-bandwidth pick");
}

#[test]
fn decisions_are_executed_by_the_polka_data_plane() {
    // The chosen tunnel's routeID must actually steer a packet through
    // the emulated topology to the egress edge.
    let mut sdn = SelfDrivingNetwork::testbed(4).unwrap();
    sdn.advance(20_000).unwrap();
    let decision = sdn
        .admit_flow(
            &FlowRequest {
                label: "flow1".into(),
                tos: 32,
                demand_mbps: None,
                start_ms: 0,
                pair: polka_hecate::framework::PairId::default(),
            },
            Objective::MaxBandwidth,
        )
        .unwrap();
    let tunnel = sdn.tunnel(&decision.tunnel).unwrap();
    let visited =
        polka_hecate::freertr::resolve::walk_route(tunnel, &sdn.sim.topo, sdn.allocator()).unwrap();
    assert_eq!(visited, tunnel.node_path);
    let names: Vec<&str> = visited.iter().map(|&n| sdn.sim.topo.node_name(n)).collect();
    assert_eq!(names.first(), Some(&"MIA"));
    assert_eq!(names.last(), Some(&"AMS"));
}

#[test]
fn latency_objective_prefers_the_low_delay_tunnel() {
    let mut sdn = SelfDrivingNetwork::testbed(4).unwrap();
    sdn.advance(25_000).unwrap();
    let d = sdn
        .admit_flow(
            &FlowRequest {
                label: "icmp".into(),
                tos: 0,
                demand_mbps: Some(0.1),
                start_ms: 0,
                pair: polka_hecate::framework::PairId::default(),
            },
            Objective::MinLatency,
        )
        .unwrap();
    assert_eq!(d.tunnel, "tunnel2", "MIA-CHI-AMS is the low-latency path");
    assert!(d.used_forecast);
}
