//! Offline stand-in for the `criterion` 0.5 API surface this workspace
//! uses: `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally lightweight: each benchmark is warmed
//! up briefly, then timed over adaptively chosen batches, and a single
//! `name: median ns/iter` line is printed. Set `CRITERION_SAMPLE_MS` to
//! stretch the measurement window (default 200 ms per benchmark) when
//! you want tighter numbers; statistical analysis, plotting, and HTML
//! reports are out of scope for the shim.

// A benchmark harness is made of wall-clock reads; the workspace-wide
// disallowed-methods entry exists for simulator code, not this shim.
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn measure_ms() -> u64 {
    std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name + parameter pair, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`/`bench_with_input` ids.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling batches until
    /// the measurement window is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch sizing: grow until one batch costs >= ~1 ms.
        let mut batch: u64 = 1;
        let one_ms = Duration::from_millis(1);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= one_ms || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + Duration::from_millis(measure_ms());
        let mut samples: Vec<f64> = Vec::new();
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        if samples.is_empty() {
            // The first warm-up batch already blew the window; time once.
            let t0 = Instant::now();
            black_box(routine());
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn run_one<F: FnMut(&mut Bencher)>(full_name: &str, mut f: F) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let ns = b.ns_per_iter;
    if ns >= 1e9 {
        println!("bench {full_name:<50} {:>12.3} s/iter", ns / 1e9);
    } else if ns >= 1e6 {
        println!("bench {full_name:<50} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("bench {full_name:<50} {:>12.3} us/iter", ns / 1e3);
    } else {
        println!("bench {full_name:<50} {ns:>12.1} ns/iter");
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&id.into_benchmark_id(), f);
        self
    }

    /// Runs one named benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.id, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up adaptively.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; see `CRITERION_SAMPLE_MS`.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_benchmark_id()), f);
        self
    }

    /// Runs one benchmark inside the group with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_SAMPLE_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.measurement_time(Duration::from_secs(1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
