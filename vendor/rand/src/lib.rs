//! Offline stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the subset the workspace consumes:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64, matching `SeedableRng::seed_from_u64` semantics (same
//!   seed ⇒ same stream, across platforms and runs);
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen`] for the primitive types the code draws;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates) and `choose`.
//!
//! The stream differs bit-for-bit from upstream `StdRng` (ChaCha12); all
//! workspace tests assert statistical properties or self-consistency
//! under a fixed seed, not upstream byte sequences.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed, expanding it with
    /// SplitMix64 as upstream `rand` does.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform value of the inferred primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for limb in &mut s {
                *limb = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(0u8..=32);
            assert!(i <= 32);
        }
    }

    #[test]
    fn float_unit_interval_covers_mass() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
