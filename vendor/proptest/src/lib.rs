//! Offline stand-in for the `proptest` 1.x API surface this workspace
//! uses: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_filter`/`prop_flat_map`, `any::<T>()`, numeric range
//! strategies, tuple and `Vec<S>` composition, `prop::collection::vec`,
//! `prop::option::of`, `prop::bool::ANY`, simple regex string
//! strategies (`"[a-z]{1,8}"`), and the `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` random cases from a generator
//! seeded deterministically per test name, so failures reproduce
//! run-to-run. Unlike upstream there is no input shrinking — a failing
//! case panics with the bound values' Debug output via the ordinary
//! `assert!` machinery.

pub mod test_runner {
    //! Configuration and the deterministic test RNG.

    /// Per-test configuration. Only `cases` is consulted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 generator; deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from raw state.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// A generator seeded from a test's name (FNV-1a), so each
        /// property gets its own reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Rejects values failing `pred`, retrying (bounded).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                reason,
                pred,
            }
        }

        /// Builds a second strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.gen_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1000 candidates", self.reason);
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.gen_value(rng)).gen_value(rng)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }

    /// A `Vec` of strategies generates a `Vec` of one value each.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.gen_value(rng)).collect()
        }
    }

    /// String strategy from a small regex subset: literal characters,
    /// `[a-z0-9_]`-style classes, and `{m}` / `{m,n}` repetition of the
    /// preceding atom. Covers the patterns used in this workspace
    /// (`"[a-z]{1,8}"`, `"[A-Z]{2,4}"`).
    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            crate::string::sample_regex(self, rng)
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitives.

    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Finite, moderately sized values: sign * mantissa * 2^exp.
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            let exp = (rng.below(61) as i32) - 30;
            sign * rng.unit_f64() * (2f64).powi(exp)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for [`vec()`](fn@vec).
    pub trait IntoSizeRange {
        /// Bounds as `(min, max)` inclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod option {
    //! Option strategies (`of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            // 3:1 Some:None, matching upstream's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }

    /// `Some` values from `inner` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Either boolean, uniformly.
    pub const ANY: BoolAny = BoolAny;
}

pub mod string {
    //! Tiny regex sampler backing `&str` strategies.

    use crate::test_runner::TestRng;

    /// Samples one string matching the supported regex subset; panics on
    /// syntax outside that subset so unsupported patterns fail loudly.
    pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in regex {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in regex {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in regex {pattern:?}");
                i = close + 1;
                set
            } else {
                assert!(
                    !"([{?*+|.\\".contains(chars[i]),
                    "unsupported regex syntax {:?} in {pattern:?}",
                    chars[i]
                );
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Parse an optional {m} / {m,n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in regex {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                    None => {
                        let m: usize = body.parse().unwrap();
                        (m, m)
                    }
                };
                i = close + 1;
                (min, max)
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad repetition in regex {pattern:?}");
            let reps = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod prelude {
    //! Everything a property test module needs.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a property (panics on failure; the shim
/// has no shrinking, so this is `assert!` with proptest's name).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the rest of the current case when its assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests: each `fn name(bindings in strategies)` body
/// runs `cases` times over fresh random bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg).cases; $($rest)*);
    };
    (@cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = $cases;
                let mut proptest_rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::gen_value(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )*
                    // Bodies may `return Ok(())` to end a case early, as
                    // in upstream proptest where they implicitly return
                    // `Result<(), TestCaseError>`.
                    let proptest_case =
                        || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    if let ::std::result::Result::Err(message) = proptest_case() {
                        panic!("{}", message);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @cases $crate::test_runner::ProptestConfig::default().cases;
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..10, b in 0u8..=32, x in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 32);
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..5, 1.0f64..2.0), 2..6),
            o in prop::option::of(any::<u8>()),
            flag in prop::bool::ANY,
            s in "[a-z]{1,8}",
            doubled in (0u64..100).prop_map(|n| n * 2),
            odd in (0u64..100).prop_filter("odd", |n| n % 2 == 1),
            nested in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u8..9, n..n + 1)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, f) in &v {
                prop_assert!(*n < 5);
                prop_assert!((1.0..2.0).contains(f));
            }
            let _ = o;
            let _ = flag;
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_eq!(odd % 2, 1);
            prop_assert!(!nested.is_empty() && nested.len() < 4);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn vec_of_strategies_is_a_strategy() {
        let mut rng = crate::test_runner::TestRng::for_test("vecs");
        let strategies: Vec<_> = (0..3).map(|i| (i * 10)..(i * 10 + 5)).collect();
        let values = Strategy::gen_value(&strategies, &mut rng);
        assert_eq!(values.len(), 3);
        for (i, v) in values.iter().enumerate() {
            assert!((i * 10..i * 10 + 5).contains(&(*v as usize)));
        }
    }
}
