//! Offline stand-in for the `parking_lot` 0.12 API surface this
//! workspace uses: [`RwLock`] and [`Mutex`] with non-poisoning guards.
//!
//! Backed by `std::sync` primitives; a lock held by a panicking thread
//! is recovered transparently (`parking_lot` has no poisoning at all,
//! so this matches caller-visible behavior).

use std::fmt;
use std::sync::{self, PoisonError};

/// Re-export of the `std` read guard (API-compatible: `Deref`).
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-export of the `std` write guard (API-compatible: `DerefMut`).
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Re-export of the `std` mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock whose `read`/`write` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutual-exclusion lock whose `lock` never returns poison errors.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write_roundtrip() {
        let lock = RwLock::new(1u32);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
    }

    #[test]
    fn rwlock_recovers_after_panicking_writer() {
        let lock = Arc::new(RwLock::new(0u32));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: no poisoning observable by callers.
        *lock.write() = 7;
        assert_eq!(*lock.read(), 7);
    }

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }
}
