//! Offline stand-in for the `crossbeam` 0.8 API surface this workspace
//! uses: `crossbeam::channel::{bounded, unbounded, Sender, Receiver}`.
//!
//! Backed by `std::sync::mpsc`. The semantics the workspace relies on
//! hold: `Sender` is `Clone + Send + Debug`, `send` fails once the
//! receiver is dropped, `recv` blocks and fails once all senders are
//! dropped, and `bounded(n)` applies backpressure after `n` queued
//! messages.

pub mod channel {
    //! Multi-producer channels (mpsc subset of crossbeam's mpmc).

    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the channel is closed;
    /// carries the unsent message like crossbeam's.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a closed channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    pub use std::sync::mpsc::RecvError;
    /// Error returned by [`Receiver::try_recv`].
    pub use std::sync::mpsc::TryRecvError;

    enum SenderFlavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderFlavor<T> {
        fn clone(&self) -> Self {
            match self {
                SenderFlavor::Unbounded(tx) => SenderFlavor::Unbounded(tx.clone()),
                SenderFlavor::Bounded(tx) => SenderFlavor::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        flavor: SenderFlavor<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                flavor: self.flavor.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking on a full bounded channel. Fails iff the
        /// receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.flavor {
                SenderFlavor::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                SenderFlavor::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv()
        }

        /// A blocking iterator over received messages.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.rx.iter()
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                flavor: SenderFlavor::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// A channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                flavor: SenderFlavor::Bounded(tx),
            },
            Receiver { rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41u32).unwrap());
            tx.send(1).unwrap();
            let sum = rx.recv().unwrap() + rx.recv().unwrap();
            assert_eq!(sum, 42);
        }

        #[test]
        fn bounded_ack_pattern() {
            let (tx, rx) = bounded(1);
            tx.send("ack").unwrap();
            assert_eq!(rx.recv(), Ok("ack"));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
