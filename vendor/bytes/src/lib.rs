//! Offline stand-in for the `bytes` 1.x API surface this workspace
//! uses: [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits with
//! big-endian integer accessors.
//!
//! [`Bytes`] is a cheaply cloneable view into shared immutable storage
//! (`Arc<[u8]>` + a window); [`Buf`] reads consume the front of the
//! window without copying, matching upstream semantics for every call
//! site in the workspace (codec encode/decode and `slice` truncation
//! tests).

use std::fmt;
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read access to a contiguous byte cursor (big-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// `remaining() > 0`.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

/// Write access to a growable byte buffer (big-endian accessors).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A cheaply cloneable, immutable byte window.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer borrowing no storage beyond the static slice.
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    /// A buffer holding a copy of `slice`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: slice.into(),
            start: 0,
            end: slice.len(),
        }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-window sharing the same storage. `range` is relative to the
    /// current window; panics when out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts to an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.data), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roundtrip_is_big_endian() {
        let mut b = BytesMut::with_capacity(15);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        let mut wire = b.freeze();
        assert_eq!(wire.len(), 15);
        assert_eq!(wire.as_slice()[0], 0xAB);
        assert_eq!(wire.as_slice()[1], 0x12); // big-endian on the wire
        assert_eq!(wire.get_u8(), 0xAB);
        assert_eq!(wire.get_u16(), 0x1234);
        assert_eq!(wire.get_u32(), 0xDEAD_BEEF);
        assert_eq!(wire.get_u64(), 0x0102_0304_0506_0708);
        assert!(!wire.has_remaining());
    }

    #[test]
    fn slice_shares_storage_and_truncates() {
        let wire = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let head = wire.slice(..3);
        assert_eq!(head.as_slice(), &[1, 2, 3]);
        let mid = wire.slice(1..4);
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        assert_eq!(wire.len(), 5);
    }

    #[test]
    fn advance_consumes_front() {
        let mut b = Bytes::copy_from_slice(&[9, 8, 7]);
        b.advance(2);
        assert_eq!(b.as_slice(), &[7]);
        assert_eq!(b.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        b.advance(2);
    }
}
