//! Sharding the forwarding pipeline by ingress.
//!
//! Core nodes are stateless — a PolKA router's entire forwarding state
//! is one polynomial — so packets from different ingress edges never
//! share mutable state. That makes the pipeline embarrassingly
//! parallel: each worker thread owns a full clone of the
//! [`ForwardingPlane`] (port tables + core nodes, a few KB) and drains
//! batches for its assigned ingresses from a crossbeam channel.
//! Counters are accumulated per shard and merged once at the end, so
//! the merged totals are bit-identical no matter how the OS schedules
//! the workers.
//!
//! Two measurement modes:
//!
//! * [`ShardedForwarder`] — real worker threads; wall-clock throughput
//!   scales with *physical cores* (a 1-core CI box timeshares and shows
//!   ~1× regardless of shard count);
//! * [`shard_critical_path`] — the same partition executed shard-by-
//!   shard in isolation on one thread, reporting the slowest shard's
//!   time. `total_ns / critical_ns` is the parallel speedup an
//!   unloaded machine with `cores >= shards` achieves; it is what the
//!   scaling figure reports alongside wall clock, with the host core
//!   count printed next to it.

use crate::label::FlowRoute;
use crate::plane::{BatchReport, ForwardingPlane};
use crossbeam::channel::{bounded, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

/// One unit of work: `count` packets of one flow entering at
/// `route.ingress`.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// The flow's route (ingress, label, expected PoT).
    pub route: FlowRoute,
    /// Packets in this batch.
    pub count: usize,
}

/// What one shard did.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardReport {
    /// Merged forwarding counters for this shard's batches.
    pub report: BatchReport,
    /// Batches processed.
    pub batches: u64,
    /// Time spent forwarding (excludes waiting on the channel).
    pub busy_ns: u64,
}

/// The sharded forwarder: one worker thread per shard, batches routed
/// to `shard = ingress % shards`.
pub struct ShardedForwarder {
    txs: Vec<Sender<WorkItem>>,
    handles: Vec<JoinHandle<ShardReport>>,
    tracer: obsv::Tracer,
}

impl ShardedForwarder {
    /// Spawns `shards` workers, each owning a clone of `plane`.
    pub fn spawn(plane: &ForwardingPlane, shards: usize) -> Self {
        Self::spawn_traced(plane, shards, obsv::Tracer::off())
    }

    /// [`ShardedForwarder::spawn`] with a tracer: [`finish`] emits one
    /// `shard.forward` span per shard, laid end-to-end at cumulative
    /// busy-time offsets. Spans are emitted *after* the join, in shard
    /// order, so the record stream never depends on worker
    /// interleaving. Stamps are wall-derived busy nanoseconds — this
    /// forwarder is a bench harness (the measured quantity IS wall
    /// time); nothing here feeds a bit-replayed scorecard.
    ///
    /// [`finish`]: ShardedForwarder::finish
    pub fn spawn_traced(plane: &ForwardingPlane, shards: usize, tracer: obsv::Tracer) -> Self {
        let shards = shards.max(1);
        let mut txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = bounded::<WorkItem>(64);
            let mut local = plane.clone();
            handles.push(std::thread::spawn(move || {
                let mut shard = ShardReport::default();
                while let Ok(item) = rx.recv() {
                    // detlint: allow(wall-clock) — per-shard busy time
                    // is itself the measured quantity (reported, never
                    // fed back into a routing decision).
                    #[allow(clippy::disallowed_methods)]
                    let t0 = Instant::now();
                    let r = local.forward_batch(&item.route, item.count);
                    shard.busy_ns += t0.elapsed().as_nanos() as u64;
                    shard.report.merge(&r);
                    shard.batches += 1;
                }
                shard
            }));
            txs.push(tx);
        }
        ShardedForwarder {
            txs,
            handles,
            tracer,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// The shard an ingress maps to.
    pub fn shard_of(&self, ingress: netsim::NodeIdx) -> usize {
        ingress.0 as usize % self.txs.len()
    }

    /// Routes a batch to its ingress shard (blocks on backpressure).
    pub fn submit(&self, item: WorkItem) {
        let shard = self.shard_of(item.route.ingress);
        // A send fails only if the worker panicked; surfacing that at
        // join time (finish) keeps the hot path infallible.
        let _ = self.txs[shard].send(item);
    }

    /// Closes the channels, joins the workers and returns the merged
    /// counters plus each shard's report.
    pub fn finish(self) -> (BatchReport, Vec<ShardReport>) {
        drop(self.txs);
        let mut merged = BatchReport::default();
        let mut shards = Vec::with_capacity(self.handles.len());
        for h in self.handles {
            // detlint: allow(bare-panic) — a panicked worker's counters
            // are gone; propagating the panic is the only honest
            // outcome (a Result would report partial totals as truth).
            let r = h.join().expect("shard worker panicked");
            merged.merge(&r.report);
            shards.push(r);
        }
        if self.tracer.enabled() {
            // One span per shard at cumulative busy-time offsets: the
            // trace reads as the shards' busy work laid end-to-end,
            // and emission order (shard index) is deterministic.
            let mut offset = 0u64;
            for (i, s) in shards.iter().enumerate() {
                let span = self.tracer.span("shard", "shard.forward", offset);
                offset += s.busy_ns;
                let (shard, batches, delivered, busy_ns) =
                    (i as u64, s.batches, s.report.delivered, s.busy_ns);
                span.end(offset, move || {
                    vec![
                        ("shard", obsv::Value::U64(shard)),
                        ("batches", obsv::Value::U64(batches)),
                        ("delivered", obsv::Value::U64(delivered)),
                        ("busy_ns", obsv::Value::U64(busy_ns)),
                    ]
                });
            }
        }
        (merged, shards)
    }
}

/// Critical-path measurement of the same partition: items are split by
/// `ingress % shards` exactly as [`ShardedForwarder`] would, then each
/// shard's batches run back-to-back in isolation on the calling thread.
/// Returns the merged counters and each shard's isolated busy time; the
/// slowest shard is the parallel critical path.
pub fn shard_critical_path(
    plane: &ForwardingPlane,
    items: &[WorkItem],
    shards: usize,
) -> (BatchReport, Vec<u64>) {
    let shards = shards.max(1);
    let mut merged = BatchReport::default();
    let mut times = Vec::with_capacity(shards);
    for s in 0..shards {
        let mut local = plane.clone();
        // detlint: allow(wall-clock) — isolated per-shard wall timing
        // IS the critical-path measurement this function exists for.
        #[allow(clippy::disallowed_methods)]
        let t0 = Instant::now();
        for item in items
            .iter()
            .filter(|i| i.route.ingress.0 as usize % shards == s)
        {
            let r = local.forward_batch(&item.route, item.count);
            merged.merge(&r);
        }
        times.push(t0.elapsed().as_nanos() as u64);
    }
    (merged, times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::FlowRoute;
    use netsim::topo::mesh;
    use netsim::NodeIdx;
    use polka::NodeIdAllocator;

    /// A 16-node mesh with one flow per ingress, all of identical hop
    /// count (consecutive ring walks), so every shard gets equal work.
    fn workload(count: usize) -> (ForwardingPlane, Vec<WorkItem>) {
        let topo = mesh(16, 4, 100.0);
        let mut alloc = NodeIdAllocator::for_network(topo.node_count(), topo.max_port().max(1));
        let items: Vec<WorkItem> = (0..8u32)
            .map(|i| {
                let path: Vec<NodeIdx> = (0..5).map(|k| NodeIdx((i + k) % 16)).collect();
                WorkItem {
                    route: FlowRoute::along_path(&topo, &mut alloc, &path, true).unwrap(),
                    count,
                }
            })
            .collect();
        let plane = ForwardingPlane::new(&topo, &mut alloc).unwrap();
        (plane, items)
    }

    #[test]
    fn sharded_counters_match_single_shard_exactly() {
        let (plane, items) = workload(50);
        let mut reference = BatchReport::default();
        let mut single = plane.clone();
        for item in &items {
            reference.merge(&single.forward_batch(&item.route, item.count));
        }
        for shards in [1usize, 2, 4, 8] {
            let fwd = ShardedForwarder::spawn(&plane, shards);
            for item in &items {
                fwd.submit(item.clone());
            }
            let (merged, per_shard) = fwd.finish();
            assert_eq!(merged, reference, "{shards} shards");
            assert_eq!(per_shard.len(), shards);
            assert_eq!(
                per_shard.iter().map(|s| s.batches).sum::<u64>(),
                items.len() as u64
            );
        }
        assert_eq!(reference.delivered, 8 * 50);
        assert_eq!(reference.pot_rejected, 0);
    }

    #[test]
    fn traced_forwarder_emits_one_span_per_shard_in_order() {
        let (plane, items) = workload(10);
        let sink = obsv::RecordingSink::shared();
        let fwd = ShardedForwarder::spawn_traced(&plane, 4, obsv::Tracer::to(sink.clone()));
        for item in &items {
            fwd.submit(item.clone());
        }
        let (merged, shards) = fwd.finish();
        assert_eq!(merged.delivered, 8 * 10);
        let recs = sink.snapshot();
        assert_eq!(recs.len(), 8, "4 shards x (Begin + End)");
        for i in 0..4usize {
            let b = &recs[i * 2];
            let e = &recs[i * 2 + 1];
            assert_eq!((b.name, b.kind), ("shard.forward", obsv::RecordKind::Begin));
            assert_eq!(e.kind, obsv::RecordKind::End);
            assert!(
                e.args
                    .iter()
                    .any(|(k, v)| *k == "shard" && *v == obsv::Value::U64(i as u64)),
                "{e:?}"
            );
        }
        // Spans are laid end-to-end: the last End sits at the summed
        // busy time.
        let total: u64 = shards.iter().map(|s| s.busy_ns).sum();
        assert_eq!(recs[7].at_ns, total);
        // The untraced spawn emits nothing extra and still counts.
        let fwd = ShardedForwarder::spawn(&plane, 2);
        for item in &items {
            fwd.submit(item.clone());
        }
        let (merged, _) = fwd.finish();
        assert_eq!(merged.delivered, 8 * 10);
    }

    #[test]
    fn critical_path_partition_matches_and_scales() {
        // Sized so each shard's isolated run is long enough that the
        // sum/max ratio reflects the partition, not timer noise. Other
        // test threads share this core, so take the best of three
        // attempts — one clean measurement is enough to prove the
        // partition parallelizes; counters are asserted every round.
        let (plane, items) = workload(4000);
        let mut best = 0.0f64;
        for _ in 0..3 {
            let (merged1, t1) = shard_critical_path(&plane, &items, 1);
            let (merged4, t4) = shard_critical_path(&plane, &items, 4);
            assert_eq!(merged1, merged4, "partition must not change counters");
            assert_eq!(merged4.delivered, 8 * 4000);
            let total = t1[0].max(1);
            let critical = t4.iter().copied().max().unwrap().max(1);
            best = best.max(total as f64 / critical as f64);
            // 8 equal flows over 4 shards: the critical path is
            // ~total/4; 1.5x is a very generous floor.
            if best > 1.5 {
                break;
            }
        }
        assert!(best > 1.5, "critical-path scaling {best:.2}");
    }
}
