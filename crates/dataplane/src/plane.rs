//! The forwarding plane: per-node port tables precomputed from a
//! topology, one [`CoreNode`] per router, and the batch-of-packets-per-
//! hop fast path.
//!
//! The plane is the *engine* — pure forwarding with no notion of time.
//! Queueing, delay and drops-by-congestion live in [`crate::netem`];
//! thread-sharding lives in [`crate::shard`]. Core nodes are stateless
//! (their entire forwarding state is one polynomial), so the plane is
//! `Clone` and shards share nothing.

use crate::label::{FlowRoute, PacketState, SourceRoute};
use crate::DataplaneError;
use netsim::topo::NodeKind;
use netsim::{LinkId, NodeIdx, Topology};
use polka::{CoreNode, NodeIdAllocator, PortId};

/// Why a packet died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The label did not decode to a usable port at some node.
    NoRoute,
    /// The output link is failed.
    LinkDown,
    /// The hop budget ran out (routing loop or tampered label).
    TtlExpired,
    /// The output link's drop-tail queue was full.
    QueueFull,
}

/// The outcome of one forwarding operation at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopOutcome {
    /// Send out `port` towards `next` over `link`.
    Forwarded {
        /// Output port taken.
        port: PortId,
        /// Neighbor the port faces.
        next: NodeIdx,
        /// The traversed link.
        link: LinkId,
    },
    /// Port 0: decapsulate and deliver locally (packet at egress).
    Delivered,
    /// The packet is dropped here.
    Drop {
        /// Why the packet died.
        reason: DropReason,
        /// The output link that killed it, when one was resolved
        /// (`LinkDown` drops carry it so per-link loss counters can be
        /// charged; decode failures have no link).
        link: Option<LinkId>,
    },
}

#[derive(Debug, Clone)]
struct PlaneNode {
    /// The PolKA data-plane element; `None` for hosts.
    core: Option<CoreNode>,
    /// 1-based physical port → (neighbor, link). Index 0 is unused
    /// (port 0 means "deliver locally").
    ports: Vec<Option<(NodeIdx, LinkId)>>,
}

/// Counters from forwarding one batch through the plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Packets delivered at egress with a verified proof-of-transit.
    pub delivered: u64,
    /// Packets delivered at egress whose PoT accumulator did not match
    /// the route spec — rejected by the egress edge.
    pub pot_rejected: u64,
    /// Dropped: label failed to decode somewhere.
    pub dropped_no_route: u64,
    /// Dropped: a traversed link was down.
    pub dropped_link_down: u64,
    /// Dropped: TTL expired.
    pub dropped_ttl: u64,
    /// Total per-hop forwarding operations executed (the unit the
    /// throughput benches count).
    pub hop_ops: u64,
}

impl BatchReport {
    /// Merges another report into this one (used by the shard merger).
    pub fn merge(&mut self, other: &BatchReport) {
        self.delivered += other.delivered;
        self.pot_rejected += other.pot_rejected;
        self.dropped_no_route += other.dropped_no_route;
        self.dropped_link_down += other.dropped_link_down;
        self.dropped_ttl += other.dropped_ttl;
        self.hop_ops += other.hop_ops;
    }

    /// Every packet accounted for by this report.
    pub fn total(&self) -> u64 {
        self.delivered
            + self.pot_rejected
            + self.dropped_no_route
            + self.dropped_link_down
            + self.dropped_ttl
    }
}

/// The assembled plane: every router instantiated as a [`CoreNode`],
/// every physical port resolved to its neighbor and link.
#[derive(Debug, Clone)]
pub struct ForwardingPlane {
    nodes: Vec<PlaneNode>,
    link_up: Vec<bool>,
}

impl ForwardingPlane {
    /// Builds the plane for a topology. Every non-host node is assigned
    /// a nodeID from `alloc` — pass the same allocator the controller
    /// compiles routeIDs with, so labels and the plane agree (the
    /// allocator memoizes by name).
    pub fn new(topo: &Topology, alloc: &mut NodeIdAllocator) -> Result<Self, DataplaneError> {
        // Rebuild adjacency from the link list (the public topology API
        // only exposes up-link adjacency; the port numbering must be
        // static across failures).
        let mut neighbors: Vec<Vec<(NodeIdx, LinkId)>> = vec![Vec::new(); topo.node_count()];
        for (i, link) in topo.links().iter().enumerate() {
            let lid = LinkId(i as u32);
            neighbors[link.a.0 as usize].push((link.b, lid));
            neighbors[link.b.0 as usize].push((link.a, lid));
        }
        let mut nodes = Vec::with_capacity(topo.node_count());
        for (n, node_adj) in neighbors.iter().enumerate() {
            let idx = NodeIdx(n as u32);
            let core = if topo.node_kind(idx) == NodeKind::Host {
                None
            } else {
                Some(CoreNode::new(alloc.assign(topo.node_name(idx))?))
            };
            // Ports are numbered by ascending neighbor index, mirroring
            // `Topology::neighbor_port`.
            let mut adj = node_adj.clone();
            adj.sort_by_key(|(nb, _)| nb.0);
            let mut ports = vec![None; adj.len() + 1];
            for (p, (nb, lid)) in adj.into_iter().enumerate() {
                ports[p + 1] = Some((nb, lid));
            }
            nodes.push(PlaneNode { core, ports });
        }
        Ok(ForwardingPlane {
            nodes,
            link_up: topo.links().iter().map(|l| l.up).collect(),
        })
    }

    /// Fails or restores a link.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        if let Some(slot) = self.link_up.get_mut(link.0 as usize) {
            *slot = up;
        }
    }

    /// Current link state.
    pub fn link_up(&self, link: LinkId) -> bool {
        self.link_up.get(link.0 as usize).copied().unwrap_or(false)
    }

    /// One forwarding operation: the packet (with mutable `state`) shows
    /// up at `at` carrying `label`.
    pub fn hop(
        &mut self,
        at: NodeIdx,
        label: &impl SourceRoute,
        state: &mut PacketState,
    ) -> HopOutcome {
        if state.ttl == 0 {
            return HopOutcome::Drop {
                reason: DropReason::TtlExpired,
                link: None,
            };
        }
        let node = &mut self.nodes[at.0 as usize];
        let Some(core) = node.core.as_mut() else {
            return HopOutcome::Drop {
                reason: DropReason::NoRoute,
                link: None,
            };
        };
        let Some(port) = label.next_port(state, core) else {
            return HopOutcome::Drop {
                reason: DropReason::NoRoute,
                link: None,
            };
        };
        if port == PortId(0) {
            return HopOutcome::Delivered;
        }
        let Some(Some((next, link))) = node.ports.get(port.0 as usize) else {
            return HopOutcome::Drop {
                reason: DropReason::NoRoute,
                link: None,
            };
        };
        if !self.link_up[link.0 as usize] {
            return HopOutcome::Drop {
                reason: DropReason::LinkDown,
                link: Some(*link),
            };
        }
        state.ttl -= 1;
        HopOutcome::Forwarded {
            port,
            next: *next,
            link: *link,
        }
    }

    /// Walks one packet from the route's first hop to its fate.
    /// Returns the nodes visited (starting at `route.first_hop`).
    pub fn walk(
        &mut self,
        route: &FlowRoute,
        state: &mut PacketState,
    ) -> (Vec<NodeIdx>, HopOutcome) {
        let mut at = route.first_hop;
        let mut visited = vec![at];
        loop {
            match self.hop(at, &route.label, state) {
                HopOutcome::Forwarded { next, .. } => {
                    at = next;
                    visited.push(at);
                }
                outcome => return (visited, outcome),
            }
        }
    }

    /// The hot path: forwards `count` packets of one flow, batched per
    /// hop — the whole batch is pushed through node *k* before any
    /// packet touches node *k+1*, so each hop's [`CoreNode`] and label
    /// stay cache-resident across the inner loop. Every packet still
    /// executes its own per-hop forwarding operation (one GF(2)
    /// remainder for PolKA, one pop for the segment list): batching
    /// amortizes lookups, never the per-packet work.
    pub fn forward_batch(&mut self, route: &FlowRoute, count: usize) -> BatchReport {
        let mut report = BatchReport::default();
        if count == 0 {
            return report;
        }
        let mut states = vec![PacketState::stamped(); count];
        // Packets of one flow share the label, hence the path: the batch
        // stays together and per-packet fates diverge only at the end
        // (PoT verification), so `alive` is a prefix length.
        let mut at = route.first_hop;
        loop {
            // Advance packet 0 to learn the batch's hop outcome, then
            // run the identical per-packet operation for the rest.
            let outcome = self.hop(at, &route.label, &mut states[0]);
            report.hop_ops += 1;
            match outcome {
                HopOutcome::Forwarded { next, .. } => {
                    for state in &mut states[1..] {
                        self.hop(at, &route.label, state);
                        report.hop_ops += 1;
                    }
                    at = next;
                }
                HopOutcome::Delivered => {
                    for state in &mut states[1..] {
                        self.hop(at, &route.label, state);
                        report.hop_ops += 1;
                    }
                    for state in &states {
                        if state.pot == route.expected_pot {
                            report.delivered += 1;
                        } else {
                            report.pot_rejected += 1;
                        }
                    }
                    return report;
                }
                HopOutcome::Drop { reason, .. } => {
                    for state in &mut states[1..] {
                        self.hop(at, &route.label, state);
                        report.hop_ops += 1;
                    }
                    let n = count as u64;
                    match reason {
                        DropReason::NoRoute => report.dropped_no_route += n,
                        DropReason::LinkDown => report.dropped_link_down += n,
                        DropReason::TtlExpired => report.dropped_ttl += n,
                        // detlint: allow(bare-panic) — DropReason is
                        // shared with the emulator, but this engine has
                        // no queues; hop() can only construct the three
                        // reasons above, so this arm is dead by local
                        // inspection, not by caller contract.
                        DropReason::QueueFull => unreachable!("the plane has no queues"),
                    }
                    return report;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::FlowLabel;
    use netsim::topo::global_p4_lab;

    /// Compiles the MIA→SAO→AMS tunnel against the lab topology.
    fn tunnel1(topo: &Topology, alloc: &mut NodeIdAllocator) -> FlowRoute {
        route_for(topo, alloc, &["MIA", "SAO", "AMS"], true)
    }

    fn route_for(
        topo: &Topology,
        alloc: &mut NodeIdAllocator,
        names: &[&str],
        polka: bool,
    ) -> FlowRoute {
        let path: Vec<NodeIdx> = names.iter().map(|n| topo.node(n).unwrap()).collect();
        FlowRoute::along_path(topo, alloc, &path, polka).unwrap()
    }

    fn lab() -> (Topology, NodeIdAllocator) {
        let topo = global_p4_lab();
        let alloc = NodeIdAllocator::for_network(topo.node_count(), topo.max_port().max(1));
        (topo, alloc)
    }

    #[test]
    fn walk_follows_the_compiled_path() {
        let (topo, mut alloc) = lab();
        let route = tunnel1(&topo, &mut alloc);
        let mut plane = ForwardingPlane::new(&topo, &mut alloc).unwrap();
        let mut state = PacketState::stamped();
        let (visited, outcome) = plane.walk(&route, &mut state);
        assert_eq!(outcome, HopOutcome::Delivered);
        let names: Vec<&str> = visited.iter().map(|&n| topo.node_name(n)).collect();
        assert_eq!(names, vec!["SAO", "AMS"]);
        assert_eq!(state.pot, route.expected_pot, "egress PoT verifies");
    }

    #[test]
    fn batch_delivers_every_packet_with_pot() {
        let (topo, mut alloc) = lab();
        let route = tunnel1(&topo, &mut alloc);
        let mut plane = ForwardingPlane::new(&topo, &mut alloc).unwrap();
        let r = plane.forward_batch(&route, 256);
        assert_eq!(r.delivered, 256);
        assert_eq!(r.pot_rejected, 0);
        assert_eq!(r.total(), 256);
        // 2 encoded hops (SAO, AMS) * 256 packets.
        assert_eq!(r.hop_ops, 512);
    }

    #[test]
    fn polka_and_segment_batches_agree() {
        let (topo, mut alloc) = lab();
        let names = ["MIA", "CAL", "CHI", "AMS"];
        let pk = route_for(&topo, &mut alloc, &names, true);
        let sl = route_for(&topo, &mut alloc, &names, false);
        let mut plane = ForwardingPlane::new(&topo, &mut alloc).unwrap();
        let a = plane.forward_batch(&pk, 64);
        let b = plane.forward_batch(&sl, 64);
        assert_eq!(a, b, "same pipeline, same counters");
        assert_eq!(a.delivered, 64);
    }

    #[test]
    fn failed_link_drops_the_batch() {
        let (topo, mut alloc) = lab();
        let route = tunnel1(&topo, &mut alloc);
        let mut plane = ForwardingPlane::new(&topo, &mut alloc).unwrap();
        let sao = topo.node("SAO").unwrap();
        let ams = topo.node("AMS").unwrap();
        plane.set_link_up(topo.link_between(sao, ams).unwrap(), false);
        let r = plane.forward_batch(&route, 32);
        assert_eq!(r.dropped_link_down, 32);
        assert_eq!(r.delivered, 0);
    }

    #[test]
    fn tampered_label_never_panics_and_never_verifies() {
        // Corrupt the routeID: the packet either fails to decode, loops
        // until TTL death, or reaches some egress where PoT rejects it.
        let (topo, mut alloc) = lab();
        let mut route = tunnel1(&topo, &mut alloc);
        if let FlowLabel::Polka(r) = &route.label {
            let corrupted = r.poly() + &gf2poly::Poly::from_bits(0b1101);
            route.label = FlowLabel::Polka(polka::RouteId::from_poly(corrupted));
        }
        let mut plane = ForwardingPlane::new(&topo, &mut alloc).unwrap();
        let r = plane.forward_batch(&route, 16);
        assert_eq!(r.delivered, 0, "tampered packets must not verify: {r:?}");
        assert_eq!(r.total(), 16);
    }

    #[test]
    fn host_nodes_do_not_forward() {
        let (topo, mut alloc) = lab();
        let mut route = tunnel1(&topo, &mut alloc);
        route.first_hop = topo.node("host1").unwrap();
        let mut plane = ForwardingPlane::new(&topo, &mut alloc).unwrap();
        let r = plane.forward_batch(&route, 4);
        assert_eq!(r.dropped_no_route, 4);
    }
}
