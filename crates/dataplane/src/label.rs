//! Route labels: the two on-wire source-routing encodings behind one
//! trait, so the PolKA routeID and the port-switching baseline drive the
//! exact same forwarding pipeline.
//!
//! Per-packet mutable state is deliberately tiny ([`PacketState`]): the
//! PolKA label itself is shared by every packet of a flow because core
//! nodes *never rewrite it* — that immutability is the whole point of
//! the architecture, and it is what makes the sharded engine
//! allocation-free on the hot path.

use crate::DataplaneError;
use polka::header::PolkaHeader;
use polka::{pot, CoreNode, PortId, RouteId, RouteSpec};

/// Per-packet mutable forwarding state. Everything else (the label, the
/// expected proof-of-transit) is flow-level and shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketState {
    /// Remaining hop budget, decremented per hop.
    pub ttl: u8,
    /// Proof-of-transit accumulator, folded at every core hop.
    pub pot: u64,
    /// Segment cursor ("segments left"); unused by PolKA.
    pub cursor: u16,
}

impl PacketState {
    /// The state an ingress edge stamps onto a fresh packet.
    pub fn stamped() -> Self {
        PacketState {
            ttl: 64,
            pot: 0,
            cursor: 0,
        }
    }
}

/// The per-hop contract both encodings satisfy: given the packet's
/// mutable state and the local core node, produce the output port (and
/// fold the proof-of-transit accumulator). `None` means the label does
/// not decode at this node — the switch drops/punts.
pub trait SourceRoute {
    /// Computes the output port at `core` and updates `state` (PoT fold,
    /// plus the cursor advance for header-rewriting encodings).
    fn next_port(&self, state: &mut PacketState, core: &mut CoreNode) -> Option<PortId>;

    /// On-wire label size in bits as stamped at ingress.
    fn label_bits(&self) -> usize;

    /// Shim-header size in bytes *at the packet's current hop* — the
    /// segment list shrinks along the path, the PolKA label does not.
    fn header_bytes(&self, state: &PacketState) -> usize;

    /// True when forwarding mutates the packet header (the
    /// port-switching baseline); false for PolKA's read-only label.
    fn rewrites_header(&self) -> bool;
}

/// A flow's route label: either a PolKA routeID or the port-switching
/// segment list the PolKA papers compare against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowLabel {
    /// One CRT polynomial; every hop computes `routeID mod nodeID`.
    Polka(RouteId),
    /// Ordered output ports; every hop reads `ports[cursor]` and
    /// advances the cursor (the header rewrite).
    Segments(Vec<PortId>),
}

impl SourceRoute for FlowLabel {
    fn next_port(&self, state: &mut PacketState, core: &mut CoreNode) -> Option<PortId> {
        let port = match self {
            FlowLabel::Polka(route) => core.forward(route)?,
            FlowLabel::Segments(ports) => {
                let port = *ports.get(state.cursor as usize)?;
                state.cursor += 1; // the per-hop header rewrite
                port
            }
        };
        state.pot = pot::fold_hop(state.pot, core.id(), port);
        Some(port)
    }

    fn label_bits(&self) -> usize {
        match self {
            FlowLabel::Polka(route) => route.label_bits(),
            // 16-bit port labels, the width PortId carries on the wire.
            FlowLabel::Segments(ports) => ports.len() * 16,
        }
    }

    fn header_bytes(&self, state: &PacketState) -> usize {
        match self {
            // The PolKA shim header is immutable and constant-size.
            FlowLabel::Polka(route) => PolkaHeader::wire_len_for(route),
            // version(1) + ttl(1) + count(2) + remaining 16-bit ports.
            FlowLabel::Segments(ports) => 4 + 2 * ports.len().saturating_sub(state.cursor as usize),
        }
    }

    fn rewrites_header(&self) -> bool {
        matches!(self, FlowLabel::Segments(_))
    }
}

/// Everything the ingress edge needs to steer one flow: where packets
/// enter, the first encoded router, the label to stamp, and the
/// proof-of-transit value the egress will demand.
#[derive(Debug, Clone)]
pub struct FlowRoute {
    /// The edge node where packets are stamped (first element of the
    /// domain path; not encoded in the label).
    pub ingress: netsim::NodeIdx,
    /// The first router the label encodes (the edge forwards out its
    /// port towards it).
    pub first_hop: netsim::NodeIdx,
    /// The stamped label.
    pub label: FlowLabel,
    /// `pot::expected_pot` of the originating route spec — what the
    /// egress verifies.
    pub expected_pot: u64,
}

impl FlowRoute {
    /// A PolKA route: compiles (or reuses) the routeID for `spec` and
    /// derives the egress proof-of-transit from the same spec.
    pub fn polka(
        ingress: netsim::NodeIdx,
        first_hop: netsim::NodeIdx,
        route: RouteId,
        spec: &RouteSpec,
    ) -> Self {
        FlowRoute {
            ingress,
            first_hop,
            label: FlowLabel::Polka(route),
            expected_pot: pot::expected_pot(spec),
        }
    }

    /// The same path expressed as the port-switching baseline.
    pub fn segments(
        ingress: netsim::NodeIdx,
        first_hop: netsim::NodeIdx,
        spec: &RouteSpec,
    ) -> Self {
        let ports = spec.hops().iter().map(|(_, p)| *p).collect();
        FlowRoute {
            ingress,
            first_hop,
            label: FlowLabel::Segments(ports),
            expected_pot: pot::expected_pot(spec),
        }
    }

    /// Compiles a PolKA route from a spec (CRT) and wraps it.
    pub fn compile_polka(
        ingress: netsim::NodeIdx,
        first_hop: netsim::NodeIdx,
        spec: &RouteSpec,
    ) -> Result<Self, DataplaneError> {
        let route = spec.compile()?;
        Ok(Self::polka(ingress, first_hop, route, spec))
    }

    /// Builds the route for an explicit node path: every router after
    /// the ingress is assigned its node ID from `alloc`, ports come
    /// from the topology's deterministic numbering, and the egress hop
    /// encodes port 0 ("deliver locally"). This is the one place the
    /// path → `RouteSpec` convention lives.
    pub fn along_path(
        topo: &netsim::Topology,
        alloc: &mut polka::NodeIdAllocator,
        path: &[netsim::NodeIdx],
        polka_label: bool,
    ) -> Result<Self, DataplaneError> {
        if path.len() < 2 {
            return Err(DataplaneError::Route(
                "a route needs at least an ingress and one router".into(),
            ));
        }
        let mut hops = Vec::with_capacity(path.len() - 1);
        for k in 1..path.len() {
            let node = alloc.assign(topo.node_name(path[k]))?;
            let port = if k + 1 < path.len() {
                PortId(topo.neighbor_port(path[k], path[k + 1]).ok_or_else(|| {
                    DataplaneError::Topology(format!(
                        "{} has no port towards {}",
                        topo.node_name(path[k]),
                        topo.node_name(path[k + 1])
                    ))
                })?)
            } else {
                PortId(0)
            };
            hops.push((node, port));
        }
        let spec = RouteSpec::new(hops);
        if polka_label {
            Self::compile_polka(path[0], path[1], &spec)
        } else {
            Ok(Self::segments(path[0], path[1], &spec))
        }
    }

    /// The on-wire PolKA shim header an ingress edge would emit for this
    /// flow, or `None` for the segment-list baseline.
    pub fn stamp_header(&self) -> Option<PolkaHeader> {
        match &self.label {
            FlowLabel::Polka(route) => Some(PolkaHeader::new(route.clone())),
            FlowLabel::Segments(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2poly::Poly;
    use polka::NodeId;

    fn spec3() -> RouteSpec {
        RouteSpec::new(vec![
            (NodeId::new("s1", Poly::from_binary_str("11")), PortId(1)),
            (NodeId::new("s2", Poly::from_binary_str("111")), PortId(2)),
            (NodeId::new("s3", Poly::from_binary_str("1011")), PortId(0)),
        ])
    }

    #[test]
    fn both_labels_drive_identical_ports_and_pot() {
        let spec = spec3();
        let polka =
            FlowRoute::compile_polka(netsim::NodeIdx(0), netsim::NodeIdx(1), &spec).unwrap();
        let segs = FlowRoute::segments(netsim::NodeIdx(0), netsim::NodeIdx(1), &spec);
        let mut sp = PacketState::stamped();
        let mut ss = PacketState::stamped();
        for (node, want) in spec.hops() {
            let mut core = CoreNode::new(node.clone());
            assert_eq!(polka.label.next_port(&mut sp, &mut core), Some(*want));
            assert_eq!(segs.label.next_port(&mut ss, &mut core), Some(*want));
        }
        assert_eq!(sp.pot, ss.pot);
        assert_eq!(sp.pot, polka.expected_pot);
        assert_eq!(segs.expected_pot, polka.expected_pot);
    }

    #[test]
    fn polka_label_is_read_only_segments_mutate() {
        let spec = spec3();
        let polka =
            FlowRoute::compile_polka(netsim::NodeIdx(0), netsim::NodeIdx(1), &spec).unwrap();
        let segs = FlowRoute::segments(netsim::NodeIdx(0), netsim::NodeIdx(1), &spec);
        assert!(!polka.label.rewrites_header());
        assert!(segs.label.rewrites_header());
        // Segment headers shrink along the path; PolKA headers do not.
        let mut state = PacketState::stamped();
        let at_ingress = segs.label.header_bytes(&state);
        let polka_at_ingress = polka.label.header_bytes(&state);
        state.cursor = 2;
        assert!(segs.label.header_bytes(&state) < at_ingress);
        assert_eq!(polka.label.header_bytes(&state), polka_at_ingress);
    }

    #[test]
    fn segment_list_exhaustion_is_none() {
        let spec = spec3();
        let segs = FlowRoute::segments(netsim::NodeIdx(0), netsim::NodeIdx(1), &spec);
        let mut state = PacketState::stamped();
        state.cursor = 3;
        let (node, _) = &spec.hops()[0];
        let mut core = CoreNode::new(node.clone());
        assert_eq!(segs.label.next_port(&mut state, &mut core), None);
    }

    #[test]
    fn stamped_header_carries_the_route() {
        let spec = spec3();
        let polka =
            FlowRoute::compile_polka(netsim::NodeIdx(0), netsim::NodeIdx(1), &spec).unwrap();
        let hdr = polka.stamp_header().unwrap();
        let mut wire = hdr.encode();
        let back = PolkaHeader::decode(&mut wire).unwrap();
        assert_eq!(FlowLabel::Polka(back.route), polka.label);
        let segs = FlowRoute::segments(netsim::NodeIdx(0), netsim::NodeIdx(1), &spec);
        assert!(segs.stamp_header().is_none());
    }
}
