//! The packet-level PolKA forwarding plane.
//!
//! The paper's control loop ends in a *data plane*: the controller
//! compiles a path into one CRT routeID, ingress edges stamp it into a
//! [`polka::header::PolkaHeader`], and every core node forwards by a
//! single polynomial remainder — the header is never rewritten in
//! flight, so path migration and failure recovery are one ingress
//! rewrite. The fluid simulator in [`netsim`] models *rates*; this crate
//! models *packets*, closing the loop the paper actually runs:
//!
//! * [`label::FlowLabel`] / [`label::SourceRoute`] — the two on-wire
//!   route encodings behind one trait: the PolKA routeID (read-only
//!   remainder per hop) and the port-switching segment list
//!   (pop-one-label per hop, header mutates), so PolKA and the baseline
//!   run through the *same* pipeline for apples-to-apples benches;
//! * [`plane::ForwardingPlane`] — per-node port tables precomputed from
//!   a [`netsim::Topology`] plus one [`polka::CoreNode`] per router;
//!   batch-of-packets-per-hop forwarding ([`plane::ForwardingPlane::forward_batch`]);
//! * [`shard::ShardedForwarder`] — the pipeline sharded by ingress over
//!   crossbeam channels and worker threads; core nodes are stateless so
//!   shards share nothing and merged counters are deterministic;
//! * [`netem::PacketNet`] — the deterministic packet emulator: per-link
//!   drop-tail queues with transmission + propagation delay, periodic
//!   traffic sources, per-link/per-flow counters, and egress
//!   proof-of-transit verification ([`polka::pot`]) that rejects
//!   tampered or detoured packets.
//!
//! Everything is integer-nanosecond, allocation-light and free of RNG:
//! two runs with the same inputs produce bit-identical counters.

pub mod label;
pub mod netem;
pub mod plane;
pub mod shard;

pub use label::{FlowLabel, FlowRoute, PacketState, SourceRoute};
pub use netem::{FlowReport, LinkReport, PacketNet, TrafficSpec};
pub use plane::{BatchReport, DropReason, ForwardingPlane, HopOutcome};
pub use shard::{shard_critical_path, ShardReport, ShardedForwarder};

/// Errors from data-plane construction and operation.
#[derive(Debug, Clone, PartialEq)]
pub enum DataplaneError {
    /// A route label could not be built for the path.
    Route(String),
    /// The underlying PolKA layer failed.
    Polka(polka::PolkaError),
    /// The topology does not support the requested operation.
    Topology(String),
    /// An unknown flow was referenced.
    UnknownFlow(String),
}

impl std::fmt::Display for DataplaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataplaneError::Route(m) => write!(f, "route error: {m}"),
            DataplaneError::Polka(e) => write!(f, "polka error: {e}"),
            DataplaneError::Topology(m) => write!(f, "topology error: {m}"),
            DataplaneError::UnknownFlow(n) => write!(f, "unknown flow {n:?}"),
        }
    }
}

impl std::error::Error for DataplaneError {}

impl From<polka::PolkaError> for DataplaneError {
    fn from(e: polka::PolkaError) -> Self {
        DataplaneError::Polka(e)
    }
}
