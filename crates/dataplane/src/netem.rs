//! The deterministic packet-level emulator: periodic traffic sources,
//! per-directed-link drop-tail queues with transmission + propagation
//! delay, and egress proof-of-transit verification.
//!
//! Unlike the fluid model in [`netsim::Simulation`] (rates converging to
//! max-min fair shares), every packet here is individually stamped at
//! the ingress edge, individually forwarded at every core node (one
//! GF(2) remainder for PolKA), individually serialized onto links, and
//! individually dropped when a queue is full — so link counters and
//! flow goodput are *measured from forwarded packets*, not computed
//! from an allocation model. The whole machine is integer-nanosecond
//! and RNG-free: identical inputs produce identical counters.

use crate::label::{PacketState, SourceRoute};
use crate::plane::{DropReason, ForwardingPlane, HopOutcome};
use crate::{DataplaneError, FlowRoute};
use netsim::{LinkId, NodeIdx, Topology};
use polka::NodeIdAllocator;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Default drop-tail queue depth per directed link (bytes): ~25 ms at
/// 20 Mbps, the classic "small buffer" regime.
pub const DEFAULT_QUEUE_BYTES: u64 = 64 * 1024;

/// A periodic traffic source.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Flow name (telemetry key).
    pub name: String,
    /// The stamped route.
    pub route: FlowRoute,
    /// Payload bytes per packet (the shim header is added on top, per
    /// hop — the segment list shrinks, the PolKA label does not).
    pub payload_bytes: u32,
    /// Offered load in Mbps (payload basis).
    pub rate_mbps: f64,
}

/// Cumulative per-flow counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowReport {
    /// Packets emitted by the source.
    pub emitted: u64,
    /// Packets delivered at egress with a verified PoT.
    pub delivered: u64,
    /// Payload bytes delivered.
    pub delivered_bytes: u64,
    /// Delivered but rejected by the egress PoT check.
    pub pot_rejected: u64,
    /// Dropped: label undecodable.
    pub dropped_no_route: u64,
    /// Dropped: failed link on the path.
    pub dropped_link_down: u64,
    /// Dropped: TTL expired.
    pub dropped_ttl: u64,
    /// Dropped: a drop-tail queue was full.
    pub dropped_queue: u64,
    /// Sum of delivered packets' one-way latencies (ns).
    pub latency_sum_ns: u64,
}

impl FlowReport {
    /// Mean one-way delivery latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.latency_sum_ns as f64 / self.delivered as f64 / 1e6
    }

    /// Delivered payload goodput over a window (Mbps).
    pub fn goodput_mbps(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        // bytes * 8 bits over ns == bits/ns; * 1000 -> bits/us == Mbps.
        self.delivered_bytes as f64 * 8.0 * 1000.0 / window_ns as f64
    }

    fn sub(&self, earlier: &FlowReport) -> FlowReport {
        FlowReport {
            emitted: self.emitted - earlier.emitted,
            delivered: self.delivered - earlier.delivered,
            delivered_bytes: self.delivered_bytes - earlier.delivered_bytes,
            pot_rejected: self.pot_rejected - earlier.pot_rejected,
            dropped_no_route: self.dropped_no_route - earlier.dropped_no_route,
            dropped_link_down: self.dropped_link_down - earlier.dropped_link_down,
            dropped_ttl: self.dropped_ttl - earlier.dropped_ttl,
            dropped_queue: self.dropped_queue - earlier.dropped_queue,
            latency_sum_ns: self.latency_sum_ns - earlier.latency_sum_ns,
        }
    }
}

/// Cumulative per-directed-link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkReport {
    /// Packets serialized onto the link.
    pub tx_pkts: u64,
    /// Bytes serialized onto the link (payload + shim header).
    pub tx_bytes: u64,
    /// Packets dropped at this link's queue (full or link down).
    pub drops: u64,
}

impl LinkReport {
    fn sub(&self, earlier: &LinkReport) -> LinkReport {
        LinkReport {
            tx_pkts: self.tx_pkts - earlier.tx_pkts,
            tx_bytes: self.tx_bytes - earlier.tx_bytes,
            drops: self.drops - earlier.drops,
        }
    }
}

/// One directed link's counters over a window, with its measured load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkWindow {
    /// Underlying (undirected) link.
    pub link: LinkId,
    /// Transmitting endpoint.
    pub from: NodeIdx,
    /// Receiving endpoint.
    pub to: NodeIdx,
    /// Counters accumulated in the window.
    pub report: LinkReport,
    /// Measured load in Mbps over the window.
    pub used_mbps: f64,
    /// Configured link rate in Mbps.
    pub rate_mbps: f64,
    /// Whether the link was up at window close.
    pub up: bool,
}

/// One flow's counters over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowWindow {
    /// Flow name.
    pub name: String,
    /// Counters accumulated in the window.
    pub report: FlowReport,
    /// Delivered payload goodput over the window (Mbps).
    pub goodput_mbps: f64,
}

/// Everything a telemetry collector needs from one window.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Window length (ns).
    pub elapsed_ns: u64,
    /// Per-directed-link counters.
    pub links: Vec<LinkWindow>,
    /// Per-flow counters.
    pub flows: Vec<FlowWindow>,
}

/// One directed link: a drop-tail queue feeding a constant-rate
/// transmitter with propagation delay.
#[derive(Debug, Clone)]
struct DirLink {
    from: NodeIdx,
    to: NodeIdx,
    link: LinkId,
    rate_kbps: u64,
    delay_ns: u64,
    queue_cap_bytes: u64,
    busy_until_ns: u64,
    report: LinkReport,
}

impl DirLink {
    /// Serialization time of `bytes` at this link's rate.
    fn tx_ns(&self, bytes: u64) -> u64 {
        // bytes * 8 bits / (kbps) = ms-scale; *1e6 keeps ns integers.
        bytes * 8_000_000 / self.rate_kbps.max(1)
    }

    /// Enqueues a packet at time `t`; returns the arrival time at the
    /// far end, or `None` when the drop-tail queue is full.
    fn enqueue(&mut self, t_ns: u64, bytes: u64) -> Option<u64> {
        let backlog_ns = self.busy_until_ns.saturating_sub(t_ns);
        let backlog_bytes = backlog_ns * self.rate_kbps / 8_000_000;
        if backlog_bytes + bytes > self.queue_cap_bytes {
            self.report.drops += 1;
            return None;
        }
        let start = self.busy_until_ns.max(t_ns);
        self.busy_until_ns = start + self.tx_ns(bytes);
        self.report.tx_pkts += 1;
        self.report.tx_bytes += bytes;
        Some(self.busy_until_ns + self.delay_ns)
    }
}

#[derive(Debug)]
enum EvKind {
    /// A source emits its next packet.
    Emit { flow: usize },
    /// A packet arrives at a node. The packet carries the route it was
    /// *stamped* with — an ingress rewrite never retroactively changes
    /// packets already in flight.
    Arrive {
        flow: usize,
        at: NodeIdx,
        state: PacketState,
        emitted_ns: u64,
        route: Arc<FlowRoute>,
    },
}

#[derive(Debug)]
struct Ev {
    t_ns: u64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.t_ns == other.t_ns && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // reversed for a min-heap
        other
            .t_ns
            .cmp(&self.t_ns)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct FlowState {
    name: String,
    payload_bytes: u32,
    /// The route currently stamped at the ingress; packets snapshot it
    /// at emission time.
    route: Arc<FlowRoute>,
    interval_ns: u64,
    report: FlowReport,
    prev: FlowReport,
    ingress_dir: usize,
}

/// The packet network: a [`ForwardingPlane`] plus queued links, traffic
/// sources and counters.
#[derive(Debug)]
pub struct PacketNet {
    plane: ForwardingPlane,
    dirs: Vec<DirLink>,
    /// (a, b) -> directed-link index for a->b.
    dir_of: HashMap<(NodeIdx, NodeIdx), usize>,
    flows: Vec<FlowState>,
    by_name: HashMap<String, usize>,
    heap: BinaryHeap<Ev>,
    now_ns: u64,
    seq: u64,
    window_open_ns: u64,
    prev_links: Vec<LinkReport>,
    /// Ingress routeID rewrites performed via [`PacketNet::set_route`].
    pub ingress_rewrites: u64,
    /// Sim-time tracer for the packet plane (off by default). Drops
    /// and PoT rejections are instants; queue occupancy is sampled at
    /// window close. Stamps are the emulator's own `now_ns` clock.
    tracer: obsv::Tracer,
    /// Live total-drop counter (always on — one atomic add per drop).
    /// Adoptable into a metrics registry via
    /// [`PacketNet::register_metrics`], where per-epoch deltas feed
    /// SLO blame attribution.
    drops: obsv::Counter,
    /// Live PoT-rejection counter, same lifecycle as `drops`.
    pot_rejects: obsv::Counter,
}

impl PacketNet {
    /// Builds the packet network over a topology. `alloc` must be the
    /// same allocator the controller compiles routeIDs with.
    pub fn new(topo: &Topology, alloc: &mut NodeIdAllocator) -> Result<Self, DataplaneError> {
        let plane = ForwardingPlane::new(topo, alloc)?;
        let mut dirs = Vec::with_capacity(topo.link_count() * 2);
        let mut dir_of = HashMap::new();
        for (i, link) in topo.links().iter().enumerate() {
            let lid = LinkId(i as u32);
            for (from, to) in [(link.a, link.b), (link.b, link.a)] {
                dir_of.insert((from, to), dirs.len());
                dirs.push(DirLink {
                    from,
                    to,
                    link: lid,
                    rate_kbps: (link.capacity_mbps * 1000.0).round().max(1.0) as u64,
                    delay_ns: (link.delay_ms * 1e6).round() as u64,
                    queue_cap_bytes: DEFAULT_QUEUE_BYTES,
                    busy_until_ns: 0,
                    report: LinkReport::default(),
                });
            }
        }
        let prev_links = vec![LinkReport::default(); dirs.len()];
        Ok(PacketNet {
            plane,
            dirs,
            dir_of,
            flows: Vec::new(),
            by_name: HashMap::new(),
            heap: BinaryHeap::new(),
            now_ns: 0,
            seq: 0,
            window_open_ns: 0,
            prev_links,
            ingress_rewrites: 0,
            tracer: obsv::Tracer::off(),
            drops: obsv::Counter::default(),
            pot_rejects: obsv::Counter::default(),
        })
    }

    /// Current emulator time (ns).
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Attaches (or detaches) the sim-time tracer.
    pub fn set_tracer(&mut self, tracer: obsv::Tracer) {
        self.tracer = tracer;
    }

    /// Exposes the packet plane's live loss counters in `registry`
    /// (`dataplane.packet.drops`, `dataplane.packet.pot_rejects`).
    /// The counters are the same atomics the per-flow reports already
    /// charge, so adopting them costs nothing on the hot path.
    pub fn register_metrics(&self, registry: &obsv::Registry) {
        registry.adopt_counter("dataplane.packet.drops", &self.drops);
        registry.adopt_counter("dataplane.packet.pot_rejects", &self.pot_rejects);
    }

    /// Charges the aggregate drop counter and emits a per-packet drop
    /// instant (the instant only when tracing).
    fn trace_drop(&self, flow: usize, reason: &'static str, link: Option<LinkId>) {
        self.drops.inc();
        if self.tracer.enabled() {
            let name = self.flows[flow].name.clone();
            self.tracer
                .instant("packet", "packet.drop", self.now_ns, move || {
                    let mut args = vec![
                        ("reason", obsv::Value::Str(reason.to_string())),
                        ("flow", obsv::Value::Str(name)),
                    ];
                    if let Some(lid) = link {
                        args.push(("link", obsv::Value::U64(lid.0 as u64)));
                    }
                    args
                });
        }
    }

    /// Registers a traffic source. The first packet is emitted with a
    /// per-flow phase offset so sources do not burst in lockstep.
    pub fn add_flow(&mut self, spec: TrafficSpec) -> Result<(), DataplaneError> {
        if self.by_name.contains_key(&spec.name) {
            return Err(DataplaneError::Route(format!(
                "flow {:?} already exists",
                spec.name
            )));
        }
        let ingress_dir = self.resolve_ingress(&spec.route)?;
        let bits = spec.payload_bytes as f64 * 8.0;
        let interval_ns = ((bits * 1000.0 / spec.rate_mbps.max(1e-6)).round() as u64).max(1);
        let idx = self.flows.len();
        let first = self.now_ns + (idx as u64 * 9973) % interval_ns.max(1) + 1;
        self.flows.push(FlowState {
            name: spec.name.clone(),
            payload_bytes: spec.payload_bytes,
            route: Arc::new(spec.route),
            interval_ns,
            report: FlowReport::default(),
            prev: FlowReport::default(),
            ingress_dir,
        });
        self.by_name.insert(spec.name, idx);
        self.push(first, EvKind::Emit { flow: idx });
        Ok(())
    }

    /// THE migration primitive: swaps one flow's stamped route at the
    /// ingress edge. Core nodes are untouched — this is the single
    /// policy rewrite the PolKA architecture promises.
    pub fn set_route(&mut self, name: &str, route: FlowRoute) -> Result<(), DataplaneError> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| DataplaneError::UnknownFlow(name.to_string()))?;
        let ingress_dir = self.resolve_ingress(&route)?;
        self.flows[idx].route = Arc::new(route);
        self.flows[idx].ingress_dir = ingress_dir;
        self.ingress_rewrites += 1;
        Ok(())
    }

    /// A flow's current route.
    pub fn route(&self, name: &str) -> Option<&FlowRoute> {
        self.by_name.get(name).map(|&i| &*self.flows[i].route)
    }

    /// Fails or restores a link (both directions).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.plane.set_link_up(link, up);
    }

    /// Re-rates a link (both directions) — trace-driven or scenario
    /// capacity modulation reaching the packet plane. Packets already
    /// queued keep their old serialization stamps; new arrivals drain at
    /// the new rate. Rates are floored at 1 kbps so a "zeroed" link
    /// degrades to queue overflow instead of dividing by zero.
    pub fn set_link_rate(&mut self, link: LinkId, mbps: f64) {
        let rate_kbps = (mbps * 1000.0).round().max(1.0) as u64;
        for d in &mut self.dirs {
            if d.link == link {
                d.rate_kbps = rate_kbps;
            }
        }
    }

    /// Cumulative counters for one flow.
    pub fn flow_report(&self, name: &str) -> Option<FlowReport> {
        self.by_name.get(name).map(|&i| self.flows[i].report)
    }

    fn resolve_ingress(&self, route: &FlowRoute) -> Result<usize, DataplaneError> {
        self.dir_of
            .get(&(route.ingress, route.first_hop))
            .copied()
            .ok_or_else(|| {
                DataplaneError::Topology(format!(
                    "ingress {:?} is not adjacent to first hop {:?}",
                    route.ingress, route.first_hop
                ))
            })
    }

    fn push(&mut self, t_ns: u64, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Ev {
            t_ns,
            seq: self.seq,
            kind,
        });
    }

    /// Runs the packet machine for `window_ns`, then closes the window
    /// and returns its counters (per directed link with measured load,
    /// per flow with goodput). In-flight packets carry over to the next
    /// window.
    pub fn run_window(&mut self, window_ns: u64) -> WindowReport {
        let end = self.now_ns + window_ns;
        while self.heap.peek().is_some_and(|top| top.t_ns <= end) {
            let Some(ev) = self.heap.pop() else { break };
            self.now_ns = ev.t_ns;
            match ev.kind {
                EvKind::Emit { flow } => self.emit(flow),
                EvKind::Arrive {
                    flow,
                    at,
                    state,
                    emitted_ns,
                    route,
                } => self.arrive(flow, at, state, emitted_ns, route),
            }
        }
        self.now_ns = end;
        self.close_window()
    }

    fn emit(&mut self, flow: usize) {
        let f = &mut self.flows[flow];
        f.report.emitted += 1;
        let state = PacketState::stamped();
        let route = Arc::clone(&f.route); // the packet's stamped route
        let bytes = f.payload_bytes as u64 + route.label.header_bytes(&state) as u64;
        let next_emit = self.now_ns + f.interval_ns;
        let first_hop = route.first_hop;
        let dir = f.ingress_dir;
        let link = self.dirs[dir].link;
        if !self.plane.link_up(link) {
            self.flows[flow].report.dropped_link_down += 1;
            self.dirs[dir].report.drops += 1;
            self.trace_drop(flow, "link_down", Some(link));
        } else {
            let emitted_ns = self.now_ns;
            match self.dirs[dir].enqueue(self.now_ns, bytes) {
                Some(arrival) => self.push(
                    arrival,
                    EvKind::Arrive {
                        flow,
                        at: first_hop,
                        state,
                        emitted_ns,
                        route,
                    },
                ),
                None => {
                    self.flows[flow].report.dropped_queue += 1;
                    self.trace_drop(flow, "queue_full", Some(link));
                }
            }
        }
        self.push(next_emit, EvKind::Emit { flow });
    }

    fn arrive(
        &mut self,
        flow: usize,
        at: NodeIdx,
        mut state: PacketState,
        emitted_ns: u64,
        route: Arc<FlowRoute>,
    ) {
        let outcome = self.plane.hop(at, &route.label, &mut state);
        let f = &mut self.flows[flow];
        match outcome {
            HopOutcome::Delivered => {
                if state.pot == route.expected_pot {
                    f.report.delivered += 1;
                    f.report.delivered_bytes += f.payload_bytes as u64;
                    f.report.latency_sum_ns += self.now_ns - emitted_ns;
                } else {
                    f.report.pot_rejected += 1;
                    self.pot_rejects.inc();
                    // The PoT verdict is the security-relevant event a
                    // trace reader wants pinpointed in sim time.
                    if self.tracer.enabled() {
                        let name = self.flows[flow].name.clone();
                        self.tracer.instant(
                            "packet",
                            "packet.pot_reject",
                            self.now_ns,
                            move || vec![("flow", obsv::Value::Str(name))],
                        );
                    }
                }
            }
            HopOutcome::Drop { reason, link } => {
                let reason_str = match reason {
                    DropReason::NoRoute => {
                        f.report.dropped_no_route += 1;
                        "no_route"
                    }
                    DropReason::LinkDown => {
                        f.report.dropped_link_down += 1;
                        "link_down"
                    }
                    DropReason::TtlExpired => {
                        f.report.dropped_ttl += 1;
                        "ttl_expired"
                    }
                    DropReason::QueueFull => {
                        f.report.dropped_queue += 1;
                        "queue_full"
                    }
                };
                self.trace_drop(flow, reason_str, link);
                // Charge the loss to the killing link's directed
                // counters too (mid-path failures must be visible in
                // per-link telemetry, not just per-flow).
                if let Some(lid) = link {
                    // Directed pairs are laid out (a->b, b->a) per link.
                    let base = lid.0 as usize * 2;
                    debug_assert_eq!(self.dirs[base].link, lid);
                    let dir = if self.dirs[base].from == at {
                        base
                    } else {
                        base + 1
                    };
                    self.dirs[dir].report.drops += 1;
                }
            }
            HopOutcome::Forwarded { next, link, .. } => {
                let bytes = f.payload_bytes as u64 + route.label.header_bytes(&state) as u64;
                let dir = self.dir_of[&(at, next)];
                debug_assert_eq!(self.dirs[dir].link, link);
                match self.dirs[dir].enqueue(self.now_ns, bytes) {
                    Some(arrival) => self.push(
                        arrival,
                        EvKind::Arrive {
                            flow,
                            at: next,
                            state,
                            emitted_ns,
                            route,
                        },
                    ),
                    None => {
                        self.flows[flow].report.dropped_queue += 1;
                        self.trace_drop(flow, "queue_full", Some(link));
                    }
                }
            }
        }
    }

    fn close_window(&mut self) -> WindowReport {
        let elapsed_ns = self.now_ns - self.window_open_ns;
        self.window_open_ns = self.now_ns;
        // Per-link queue occupancy, sampled at the window boundary
        // (only backlogged directions, so idle links cost nothing).
        if self.tracer.enabled() {
            for d in &self.dirs {
                let backlog_ns = d.busy_until_ns.saturating_sub(self.now_ns);
                let backlog_bytes = backlog_ns * d.rate_kbps / 8_000_000;
                if backlog_bytes > 0 {
                    self.tracer
                        .instant("packet", "packet.queue", self.now_ns, || {
                            vec![
                                ("link", obsv::Value::U64(d.link.0 as u64)),
                                ("from", obsv::Value::U64(d.from.0 as u64)),
                                ("bytes", obsv::Value::U64(backlog_bytes)),
                            ]
                        });
                }
            }
        }
        let links = self
            .dirs
            .iter()
            .zip(self.prev_links.iter_mut())
            .map(|(d, prev)| {
                let report = d.report.sub(prev);
                *prev = d.report;
                let used_mbps = if elapsed_ns == 0 {
                    0.0
                } else {
                    report.tx_bytes as f64 * 8.0 * 1000.0 / elapsed_ns as f64
                };
                LinkWindow {
                    link: d.link,
                    from: d.from,
                    to: d.to,
                    report,
                    used_mbps,
                    rate_mbps: d.rate_kbps as f64 / 1000.0,
                    up: self.plane.link_up(d.link),
                }
            })
            .collect();
        let flows = self
            .flows
            .iter_mut()
            .map(|f| {
                let report = f.report.sub(&f.prev);
                f.prev = f.report;
                FlowWindow {
                    goodput_mbps: report.goodput_mbps(elapsed_ns),
                    name: f.name.clone(),
                    report,
                }
            })
            .collect();
        WindowReport {
            elapsed_ns,
            links,
            flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topo::global_p4_lab;

    fn route_for(topo: &Topology, alloc: &mut NodeIdAllocator, names: &[&str]) -> FlowRoute {
        let path: Vec<NodeIdx> = names.iter().map(|n| topo.node(n).unwrap()).collect();
        FlowRoute::along_path(topo, alloc, &path, true).unwrap()
    }

    fn lab_net() -> (Topology, NodeIdAllocator, PacketNet) {
        let topo = global_p4_lab();
        let mut alloc = NodeIdAllocator::for_network(topo.node_count(), topo.max_port().max(1));
        let net = PacketNet::new(&topo, &mut alloc).unwrap();
        (topo, alloc, net)
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn delivers_at_offered_rate_under_capacity() {
        let (topo, mut alloc, mut net) = lab_net();
        let route = route_for(&topo, &mut alloc, &["MIA", "SAO", "AMS"]);
        net.add_flow(TrafficSpec {
            name: "f1".into(),
            route,
            payload_bytes: 1250,
            rate_mbps: 8.0,
        })
        .unwrap();
        let w = net.run_window(1000 * MS);
        let f = &w.flows[0];
        assert!(f.report.dropped_queue == 0, "{:?}", f.report);
        assert!(
            (f.goodput_mbps - 8.0).abs() < 0.5,
            "goodput {}",
            f.goodput_mbps
        );
        assert_eq!(f.report.pot_rejected, 0);
        // Latency ~ serialization + 29 ms propagation on MIA-SAO-AMS.
        let lat = net.flow_report("f1").unwrap().mean_latency_ms();
        assert!((25.0..40.0).contains(&lat), "latency {lat}");
    }

    #[test]
    fn overload_is_shaved_by_drop_tail_queues() {
        let (topo, mut alloc, mut net) = lab_net();
        let route = route_for(&topo, &mut alloc, &["MIA", "CHI", "AMS"]); // 10 Mbps bottleneck
        net.add_flow(TrafficSpec {
            name: "f1".into(),
            route,
            payload_bytes: 1250,
            rate_mbps: 30.0,
        })
        .unwrap();
        let w = net.run_window(1000 * MS);
        let f = &w.flows[0];
        assert!(f.report.dropped_queue > 0, "{:?}", f.report);
        // Goodput is capped near the 10 Mbps bottleneck (minus headers).
        assert!(
            f.goodput_mbps < 10.5 && f.goodput_mbps > 8.0,
            "goodput {}",
            f.goodput_mbps
        );
        // The bottleneck link reports near-full utilization.
        let mia = topo.node("MIA").unwrap();
        let chi = topo.node("CHI").unwrap();
        let lw = w
            .links
            .iter()
            .find(|l| l.from == mia && l.to == chi)
            .unwrap();
        assert!(lw.used_mbps > 9.5, "util {}", lw.used_mbps);
        assert!(lw.report.drops > 0, "the bottleneck queue sheds load");
    }

    #[test]
    fn link_failure_drops_everything_and_recovery_restores() {
        let (topo, mut alloc, mut net) = lab_net();
        let route = route_for(&topo, &mut alloc, &["MIA", "SAO", "AMS"]);
        net.add_flow(TrafficSpec {
            name: "f1".into(),
            route,
            payload_bytes: 1250,
            rate_mbps: 4.0,
        })
        .unwrap();
        let mia = topo.node("MIA").unwrap();
        let sao = topo.node("SAO").unwrap();
        let lid = topo.link_between(mia, sao).unwrap();
        net.run_window(500 * MS);
        net.set_link_up(lid, false);
        let down = net.run_window(1000 * MS);
        // Packets serialized before the failure drain in flight (~30 ms
        // of propagation); everything emitted after the failure drops.
        assert!(
            down.flows[0].report.delivered < 20,
            "{:?}",
            down.flows[0].report
        );
        assert!(down.flows[0].report.dropped_link_down > 300);
        net.set_link_up(lid, true);
        let up = net.run_window(1000 * MS);
        assert!(up.flows[0].report.delivered > 0);
    }

    #[test]
    fn mid_path_failure_charges_the_links_loss_counter() {
        // Fail SAO->AMS (the second hop): drops happen *at SAO*, not at
        // the ingress queue, and must show up in that directed link's
        // counters, not only in the flow report.
        let (topo, mut alloc, mut net) = lab_net();
        let route = route_for(&topo, &mut alloc, &["MIA", "SAO", "AMS"]);
        net.add_flow(TrafficSpec {
            name: "f1".into(),
            route,
            payload_bytes: 1250,
            rate_mbps: 4.0,
        })
        .unwrap();
        let sao = topo.node("SAO").unwrap();
        let ams = topo.node("AMS").unwrap();
        net.run_window(500 * MS);
        net.set_link_up(topo.link_between(sao, ams).unwrap(), false);
        let down = net.run_window(1000 * MS);
        assert!(down.flows[0].report.dropped_link_down > 300);
        let lw = down
            .links
            .iter()
            .find(|l| l.from == sao && l.to == ams)
            .unwrap();
        assert!(
            lw.report.drops > 300,
            "per-link loss must see the failure: {:?}",
            lw.report
        );
        // The upstream MIA->SAO link kept transmitting (packets die one
        // hop later), so its drop counter stays clean.
        let mia = topo.node("MIA").unwrap();
        let upstream = down
            .links
            .iter()
            .find(|l| l.from == mia && l.to == sao)
            .unwrap();
        assert_eq!(upstream.report.drops, 0);
        assert!(upstream.report.tx_pkts > 300);
    }

    #[test]
    fn ingress_route_swap_migrates_the_flow() {
        let (topo, mut alloc, mut net) = lab_net();
        let t1 = route_for(&topo, &mut alloc, &["MIA", "SAO", "AMS"]);
        let t2 = route_for(&topo, &mut alloc, &["MIA", "CHI", "AMS"]);
        net.add_flow(TrafficSpec {
            name: "f1".into(),
            route: t1,
            payload_bytes: 1250,
            rate_mbps: 4.0,
        })
        .unwrap();
        net.run_window(500 * MS);
        assert_eq!(net.ingress_rewrites, 0);
        net.set_route("f1", t2).unwrap();
        assert_eq!(net.ingress_rewrites, 1);
        let w = net.run_window(1000 * MS);
        assert!(w.flows[0].report.delivered > 0);
        assert_eq!(w.flows[0].report.pot_rejected, 0, "new PoT verifies");
        // Traffic now crosses MIA->CHI, not MIA->SAO.
        let mia = topo.node("MIA").unwrap();
        let chi = topo.node("CHI").unwrap();
        let sao = topo.node("SAO").unwrap();
        let tx = |from, to| {
            w.links
                .iter()
                .find(|l| l.from == from && l.to == to)
                .unwrap()
                .report
                .tx_pkts
        };
        assert!(tx(mia, chi) > 0);
        assert_eq!(tx(mia, sao), 0);
    }

    #[test]
    fn detoured_packets_are_rejected_by_egress_pot() {
        // The adversary re-stamps the label with a different path to the
        // same egress; the expected PoT still describes the original
        // spec, so every delivered packet fails verification.
        let (topo, mut alloc, mut net) = lab_net();
        let t1 = route_for(&topo, &mut alloc, &["MIA", "SAO", "AMS"]);
        let detour = route_for(&topo, &mut alloc, &["MIA", "CHI", "AMS"]);
        net.add_flow(TrafficSpec {
            name: "f1".into(),
            route: t1.clone(),
            payload_bytes: 1250,
            rate_mbps: 4.0,
        })
        .unwrap();
        let tampered = FlowRoute {
            expected_pot: t1.expected_pot, // claims the original path
            ..detour
        };
        net.set_route("f1", tampered).unwrap();
        let w = net.run_window(1000 * MS);
        assert_eq!(w.flows[0].report.delivered, 0);
        assert!(w.flows[0].report.pot_rejected > 0, "{:?}", w.flows[0]);
    }

    #[test]
    fn deterministic_counters() {
        let run = || {
            let (topo, mut alloc, mut net) = lab_net();
            for (i, names) in [["MIA", "SAO", "AMS"], ["MIA", "CHI", "AMS"]]
                .iter()
                .enumerate()
            {
                let route = route_for(&topo, &mut alloc, names);
                net.add_flow(TrafficSpec {
                    name: format!("f{i}"),
                    route,
                    payload_bytes: 1000,
                    rate_mbps: 12.0,
                })
                .unwrap();
            }
            net.run_window(700 * MS);
            let w = net.run_window(700 * MS);
            (
                w.flows.iter().map(|f| f.report).collect::<Vec<_>>(),
                w.links.iter().map(|l| l.report).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn duplicate_flow_names_and_unknown_flows_error() {
        let (topo, mut alloc, mut net) = lab_net();
        let route = route_for(&topo, &mut alloc, &["MIA", "SAO", "AMS"]);
        let spec = TrafficSpec {
            name: "f1".into(),
            route: route.clone(),
            payload_bytes: 100,
            rate_mbps: 1.0,
        };
        net.add_flow(spec.clone()).unwrap();
        assert!(net.add_flow(spec).is_err());
        assert!(net.set_route("ghost", route).is_err());
        assert!(net.flow_report("ghost").is_none());
    }
}
