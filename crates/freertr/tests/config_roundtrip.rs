//! Property tests: the Fig 10 config dialect round-trips arbitrary
//! well-formed configurations, and classification behaves set-like.

use freertr::config::{parse_config, AclRule, PbrEntry, RouterConfig, TunnelCfg, TunnelMode};
use freertr::packet::PacketMeta;
use freertr::prefix::Ipv4Prefix;
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(addr, len))
}

fn arb_acl(i: usize) -> impl Strategy<Value = AclRule> {
    (
        arb_prefix(),
        arb_prefix(),
        prop::option::of(any::<u8>()),
        prop::option::of(any::<u8>()),
    )
        .prop_map(move |(src, dst, proto, tos)| AclRule {
            name: format!("acl{i}"),
            proto,
            src,
            dst,
            tos,
        })
}

fn arb_tunnel(i: usize) -> impl Strategy<Value = TunnelCfg> {
    (
        prop::collection::vec("[A-Z]{2,4}", 2..6),
        prop::bool::ANY,
        prop::option::of(any::<u32>()),
    )
        .prop_map(move |(path, polka, dest)| TunnelCfg {
            id: format!("tunnel{i}"),
            destination: dest.map(|d| Ipv4Prefix::new(d, 32).to_string().replace("/32", "")),
            domain_path: path,
            mode: if polka {
                TunnelMode::Polka
            } else {
                TunnelMode::SegmentList
            },
        })
}

fn arb_config() -> impl Strategy<Value = RouterConfig> {
    (1usize..4, 1usize..4).prop_flat_map(|(n_acl, n_tun)| {
        let acls: Vec<_> = (0..n_acl).map(arb_acl).collect();
        let tunnels: Vec<_> = (0..n_tun).map(arb_tunnel).collect();
        (acls, tunnels, "[a-z]{1,8}").prop_map(move |(acls, tunnels, host)| {
            let pbr = acls
                .iter()
                .zip(tunnels.iter().cycle())
                .map(|(a, t)| PbrEntry {
                    acl: a.name.clone(),
                    tunnel: t.id.clone(),
                    nexthop: None,
                })
                .collect();
            RouterConfig {
                hostname: host,
                acls,
                tunnels,
                pbr,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emit_parse_roundtrip(cfg in arb_config()) {
        let text = cfg.emit();
        let back = parse_config(&text).unwrap();
        prop_assert_eq!(back, cfg);
    }

    #[test]
    fn classification_matches_manual_scan(cfg in arb_config(), src in any::<u32>(), dst in any::<u32>(), proto in any::<u8>(), tos in any::<u8>()) {
        let p = PacketMeta { src, dst, proto, tos, sport: 1, dport: 2 };
        let expected = cfg.acls.iter().find_map(|a| {
            if a.matches(&p) {
                cfg.pbr.iter().find(|e| e.acl == a.name).map(|e| e.tunnel.as_str())
            } else {
                None
            }
        });
        prop_assert_eq!(cfg.classify(&p), expected);
    }

    #[test]
    fn any_prefix_matches_everything(addr in any::<u32>()) {
        prop_assert!(Ipv4Prefix::any().contains(addr));
    }

    #[test]
    fn prefix_display_parse_roundtrip(addr in any::<u32>(), len in 0u8..=32) {
        let p = Ipv4Prefix::new(addr, len);
        let back = Ipv4Prefix::parse(&p.to_string()).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn packet_codec_roundtrip(src in any::<u32>(), dst in any::<u32>(), proto in any::<u8>(), tos in any::<u8>(), sport in any::<u16>(), dport in any::<u16>()) {
        let p = PacketMeta { src, dst, proto, tos, sport, dport };
        let mut wire = p.encode();
        prop_assert_eq!(PacketMeta::decode(&mut wire), Some(p));
    }
}
