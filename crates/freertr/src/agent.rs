//! Router agents on a message queue.
//!
//! The paper: "we manage FreeRtr configurations by sending messages
//! through a Message Queue to reconfigure the router. A service receives
//! these messages, applies the necessary commands to reconfigure FreeRtr,
//! and then ensures the router operates with the updated configuration."
//!
//! Each [`RouterAgent`] runs on its own thread, consumes typed
//! [`ConfigMsg`]s from a crossbeam channel, applies them to its
//! [`RouterConfig`] behind a `parking_lot::RwLock`, and acknowledges.
//! [`MessageQueue`] is the broker: it owns the per-router senders and
//! joins the agents on shutdown.

use crate::config::{parse_config, RouterConfig};
use crate::FreertrError;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Messages understood by a router agent.
#[derive(Debug)]
pub enum ConfigMsg {
    /// Replace the whole configuration from config text.
    ApplyText(String, Sender<Result<(), FreertrError>>),
    /// Rebind an ACL to a tunnel (the migration primitive).
    SetPbr {
        /// Access-list name.
        acl: String,
        /// Target tunnel.
        tunnel: String,
        /// Acknowledgment channel.
        ack: Sender<Result<(), FreertrError>>,
    },
    /// Install an access list if no rule with that name exists yet
    /// (the controller uses this when admitting a brand-new flow).
    EnsureAcl(crate::config::AclRule, Sender<Result<(), FreertrError>>),
    /// Install a tunnel interface if none with that name exists yet
    /// (the controller uses this after automatic tunnel discovery).
    EnsureTunnel(crate::config::TunnelCfg, Sender<Result<(), FreertrError>>),
    /// Stop the agent thread.
    Shutdown,
}

/// A handle for sending configuration to one router.
#[derive(Clone)]
pub struct RouterHandle {
    name: String,
    tx: Sender<ConfigMsg>,
    config: Arc<RwLock<RouterConfig>>,
}

impl RouterHandle {
    /// The router's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies config text and waits for the acknowledgment.
    pub fn apply_text(&self, text: &str) -> Result<(), FreertrError> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(ConfigMsg::ApplyText(text.to_string(), ack_tx))
            .map_err(|_| FreertrError::ChannelClosed)?;
        ack_rx.recv().map_err(|_| FreertrError::ChannelClosed)?
    }

    /// Installs an access list if absent, waiting for the acknowledgment.
    pub fn ensure_acl(&self, rule: crate::config::AclRule) -> Result<(), FreertrError> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(ConfigMsg::EnsureAcl(rule, ack_tx))
            .map_err(|_| FreertrError::ChannelClosed)?;
        ack_rx.recv().map_err(|_| FreertrError::ChannelClosed)?
    }

    /// Installs a tunnel interface if absent, waiting for the
    /// acknowledgment.
    pub fn ensure_tunnel(&self, tunnel: crate::config::TunnelCfg) -> Result<(), FreertrError> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(ConfigMsg::EnsureTunnel(tunnel, ack_tx))
            .map_err(|_| FreertrError::ChannelClosed)?;
        ack_rx.recv().map_err(|_| FreertrError::ChannelClosed)?
    }

    /// Rewrites one PBR entry and waits for the acknowledgment.
    pub fn set_pbr(&self, acl: &str, tunnel: &str) -> Result<(), FreertrError> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(ConfigMsg::SetPbr {
                acl: acl.to_string(),
                tunnel: tunnel.to_string(),
                ack: ack_tx,
            })
            .map_err(|_| FreertrError::ChannelClosed)?;
        ack_rx.recv().map_err(|_| FreertrError::ChannelClosed)?
    }

    /// A snapshot of the current running configuration.
    pub fn running_config(&self) -> RouterConfig {
        self.config.read().clone()
    }
}

/// The agent thread body.
fn agent_loop(rx: Receiver<ConfigMsg>, config: Arc<RwLock<RouterConfig>>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ConfigMsg::ApplyText(text, ack) => {
                let result = parse_config(&text).map(|cfg| {
                    *config.write() = cfg;
                });
                let _ = ack.send(result);
            }
            ConfigMsg::SetPbr { acl, tunnel, ack } => {
                let result = config.write().set_pbr(&acl, &tunnel);
                let _ = ack.send(result);
            }
            ConfigMsg::EnsureAcl(rule, ack) => {
                let mut cfg = config.write();
                if !cfg.acls.iter().any(|a| a.name == rule.name) {
                    cfg.acls.push(rule);
                }
                let _ = ack.send(Ok(()));
            }
            ConfigMsg::EnsureTunnel(tunnel, ack) => {
                let mut cfg = config.write();
                if cfg.tunnel(&tunnel.id).is_none() {
                    cfg.tunnels.push(tunnel);
                }
                let _ = ack.send(Ok(()));
            }
            ConfigMsg::Shutdown => break,
        }
    }
}

/// One emulated router: an agent thread plus its running config.
pub struct RouterAgent {
    handle: RouterHandle,
    join: Option<JoinHandle<()>>,
    tx: Sender<ConfigMsg>,
}

impl RouterAgent {
    /// Spawns an agent for a named router with an empty config.
    pub fn spawn(name: &str) -> Self {
        let (tx, rx) = unbounded();
        let config = Arc::new(RwLock::new(RouterConfig::new(name)));
        let thread_config = Arc::clone(&config);
        let join = std::thread::Builder::new()
            .name(format!("freertr-{name}"))
            .spawn(move || agent_loop(rx, thread_config))
            .expect("spawn router agent");
        RouterAgent {
            handle: RouterHandle {
                name: name.to_string(),
                tx: tx.clone(),
                config,
            },
            join: Some(join),
            tx,
        }
    }

    /// The sending handle.
    pub fn handle(&self) -> RouterHandle {
        self.handle.clone()
    }
}

impl Drop for RouterAgent {
    fn drop(&mut self) {
        let _ = self.tx.send(ConfigMsg::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// The broker: named router agents behind one façade.
#[derive(Default)]
pub struct MessageQueue {
    agents: HashMap<String, RouterAgent>,
}

impl MessageQueue {
    /// An empty broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns (or returns the existing) agent for a router.
    pub fn router(&mut self, name: &str) -> RouterHandle {
        self.agents
            .entry(name.to_string())
            .or_insert_with(|| RouterAgent::spawn(name))
            .handle()
    }

    /// Existing router names.
    pub fn routers(&self) -> Vec<&str> {
        self.agents.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::fig10_mia_config;
    use crate::packet::PacketMeta;
    use crate::prefix::Ipv4Prefix;

    #[test]
    fn apply_text_reconfigures_router() {
        let mut mq = MessageQueue::new();
        let mia = mq.router("MIA");
        mia.apply_text(&fig10_mia_config().emit()).unwrap();
        let cfg = mia.running_config();
        assert_eq!(cfg.tunnels.len(), 3);
        assert_eq!(cfg.hostname, "MIA");
    }

    #[test]
    fn bad_config_text_is_rejected_with_ack() {
        let mut mq = MessageQueue::new();
        let r = mq.router("X");
        let err = r.apply_text("garbage line\n").unwrap_err();
        assert!(matches!(err, FreertrError::Parse { .. }));
        // config unchanged
        assert_eq!(r.running_config().hostname, "X");
    }

    #[test]
    fn set_pbr_round_trips_through_the_queue() {
        let mut mq = MessageQueue::new();
        let mia = mq.router("MIA");
        mia.apply_text(&fig10_mia_config().emit()).unwrap();
        mia.set_pbr("flow3", "tunnel3").unwrap();
        let cfg = mia.running_config();
        let p = PacketMeta::tcp(
            Ipv4Prefix::parse_addr("40.40.1.10").unwrap(),
            Ipv4Prefix::parse_addr("40.40.2.2").unwrap(),
            1000,
            5001,
            96,
        );
        assert_eq!(cfg.classify(&p), Some("tunnel3"));
    }

    #[test]
    fn set_pbr_on_missing_tunnel_errors() {
        let mut mq = MessageQueue::new();
        let mia = mq.router("MIA");
        mia.apply_text(&fig10_mia_config().emit()).unwrap();
        assert!(mia.set_pbr("flow3", "tunnel99").is_err());
    }

    #[test]
    fn multiple_routers_are_independent() {
        let mut mq = MessageQueue::new();
        let a = mq.router("A");
        let b = mq.router("B");
        a.apply_text("hostname A2\n").unwrap();
        assert_eq!(a.running_config().hostname, "A2");
        assert_eq!(b.running_config().hostname, "B");
        assert_eq!(mq.routers().len(), 2);
    }

    #[test]
    fn concurrent_updates_serialize() {
        let mut mq = MessageQueue::new();
        let mia = mq.router("MIA");
        mia.apply_text(&fig10_mia_config().emit()).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let h = mia.clone();
                std::thread::spawn(move || {
                    let tunnel = if i % 2 == 0 { "tunnel2" } else { "tunnel3" };
                    h.set_pbr("flow3", tunnel).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let cfg = mia.running_config();
        let t = &cfg.pbr.iter().find(|e| e.acl == "flow3").unwrap().tunnel;
        assert!(t == "tunnel2" || t == "tunnel3");
    }
}
