//! Flow metadata (the 5-tuple + ToS the paper's access lists match on)
//! and a compact wire codec used when carrying packets through the
//! emulated data plane.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// TCP protocol number, as used in the paper's `access-list … permit 6`.
pub const PROTO_TCP: u8 = 6;
/// UDP protocol number.
pub const PROTO_UDP: u8 = 17;
/// ICMP protocol number (ping).
pub const PROTO_ICMP: u8 = 1;

/// Classification metadata for one packet/flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketMeta {
    /// Source IPv4 (host order).
    pub src: u32,
    /// Destination IPv4 (host order).
    pub dst: u32,
    /// IP protocol number.
    pub proto: u8,
    /// Type of Service byte (the paper differentiates flows by ToS).
    pub tos: u8,
    /// Source port (0 for ICMP).
    pub sport: u16,
    /// Destination port (0 for ICMP).
    pub dport: u16,
}

impl PacketMeta {
    /// A TCP packet between two addresses with a ToS marking.
    pub fn tcp(src: u32, dst: u32, sport: u16, dport: u16, tos: u8) -> Self {
        PacketMeta {
            src,
            dst,
            proto: PROTO_TCP,
            tos,
            sport,
            dport,
        }
    }

    /// An ICMP echo packet.
    pub fn icmp(src: u32, dst: u32) -> Self {
        PacketMeta {
            src,
            dst,
            proto: PROTO_ICMP,
            tos: 0,
            sport: 0,
            dport: 0,
        }
    }

    /// Serialized length in bytes.
    pub const WIRE_LEN: usize = 14;

    /// Encodes to a fixed 14-byte layout.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_LEN);
        b.put_u32(self.src);
        b.put_u32(self.dst);
        b.put_u8(self.proto);
        b.put_u8(self.tos);
        b.put_u16(self.sport);
        b.put_u16(self.dport);
        b.freeze()
    }

    /// Decodes from the wire; returns `None` on truncation.
    pub fn decode(buf: &mut Bytes) -> Option<Self> {
        if buf.remaining() < Self::WIRE_LEN {
            return None;
        }
        Some(PacketMeta {
            src: buf.get_u32(),
            dst: buf.get_u32(),
            proto: buf.get_u8(),
            tos: buf.get_u8(),
            sport: buf.get_u16(),
            dport: buf.get_u16(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::Ipv4Prefix;

    #[test]
    fn roundtrip() {
        let p = PacketMeta::tcp(
            Ipv4Prefix::parse_addr("40.40.1.10").unwrap(),
            Ipv4Prefix::parse_addr("40.40.2.2").unwrap(),
            43211,
            5001,
            96,
        );
        let mut wire = p.encode();
        assert_eq!(wire.len(), PacketMeta::WIRE_LEN);
        assert_eq!(PacketMeta::decode(&mut wire), Some(p));
    }

    #[test]
    fn truncated_decode_fails() {
        let p = PacketMeta::icmp(1, 2);
        let wire = p.encode();
        let mut short = wire.slice(..10);
        assert_eq!(PacketMeta::decode(&mut short), None);
    }

    #[test]
    fn icmp_has_no_ports() {
        let p = PacketMeta::icmp(1, 2);
        assert_eq!(p.proto, PROTO_ICMP);
        assert_eq!((p.sport, p.dport), (0, 0));
    }
}
