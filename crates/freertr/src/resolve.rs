//! Tunnel → PolKA routeID compilation and data-plane validation.
//!
//! This is the integration the paper highlights in Fig 10: "tunnel
//! domain-name provides the list of routers that are part of the explicit
//! path, which will be internally converted by freeRtr into a PolKA
//! routeID to be encapsulated in the packets passing through the tunnel."
//!
//! [`compile_tunnel`] performs that conversion against the emulated
//! topology, assigning each router an irreducible node polynomial and
//! each hop its physical output port; [`walk_route`] then *executes* the
//! data plane: starting after the ingress edge, each node computes
//! `routeID mod nodeID` and the packet follows that port through the
//! topology — proving the single label steers the packet end to end.

use crate::config::TunnelCfg;
use crate::FreertrError;
use netsim::{NodeIdx, Topology};
use polka::{NodeIdAllocator, PortId, RouteId, RouteSpec};

/// A tunnel compiled against the topology.
#[derive(Debug, Clone)]
pub struct CompiledTunnel {
    /// Tunnel name (`tunnel3`).
    pub id: String,
    /// Node indices of the domain path.
    pub node_path: Vec<NodeIdx>,
    /// The controller-side route spec (node, port) pairs.
    pub spec: RouteSpec,
    /// The compiled polynomial route identifier.
    pub route: RouteId,
}

impl CompiledTunnel {
    /// Header size of the PolKA label in bits.
    pub fn label_bits(&self) -> usize {
        self.route.label_bits()
    }
}

/// Compiles a tunnel's domain path into a PolKA routeID.
///
/// Hops encoded: every router after the ingress edge. Intermediate nodes
/// get the port facing the next router; the egress edge gets port 0
/// ("deliver locally" / decapsulate).
pub fn compile_tunnel(
    tunnel: &TunnelCfg,
    topo: &Topology,
    alloc: &mut NodeIdAllocator,
) -> Result<CompiledTunnel, FreertrError> {
    if tunnel.domain_path.len() < 2 {
        return Err(FreertrError::Route(format!(
            "tunnel {} needs at least 2 routers in domain-name",
            tunnel.id
        )));
    }
    let names: Vec<&str> = tunnel.domain_path.iter().map(|s| s.as_str()).collect();
    let node_path = topo
        .path_by_names(&names)
        .map_err(|e| FreertrError::Route(e.to_string()))?;
    let mut hops = Vec::with_capacity(node_path.len() - 1);
    for k in 1..node_path.len() {
        let node = node_path[k];
        let node_id = alloc
            .assign(topo.node_name(node))
            .map_err(|e| FreertrError::Route(e.to_string()))?;
        let port = if k + 1 < node_path.len() {
            let next = node_path[k + 1];
            let p = topo.neighbor_port(node, next).ok_or_else(|| {
                FreertrError::Route(format!(
                    "{} has no port towards {}",
                    topo.node_name(node),
                    topo.node_name(next)
                ))
            })?;
            PortId(p)
        } else {
            PortId(0) // egress edge: decapsulate
        };
        hops.push((node_id, port));
    }
    let spec = RouteSpec::new(hops);
    let route = spec
        .compile()
        .map_err(|e| FreertrError::Route(e.to_string()))?;
    Ok(CompiledTunnel {
        id: tunnel.id.clone(),
        node_path,
        spec,
        route,
    })
}

/// Executes the PolKA data plane for a compiled tunnel: starting at the
/// first router after the ingress edge, each node computes
/// `routeID mod nodeID` and the packet moves out that physical port.
/// Returns the sequence of nodes visited (including ingress), or an
/// error if the label steers into a non-existent port.
pub fn walk_route(
    compiled: &CompiledTunnel,
    topo: &Topology,
    alloc: &NodeIdAllocator,
) -> Result<Vec<NodeIdx>, FreertrError> {
    let mut visited = vec![compiled.node_path[0]];
    let mut current = *compiled
        .node_path
        .get(1)
        .ok_or_else(|| FreertrError::Route("path too short".into()))?;
    for _hop in 0..topo.node_count() {
        visited.push(current);
        let node_id = alloc.get(topo.node_name(current)).ok_or_else(|| {
            FreertrError::Route(format!("{} has no nodeID", topo.node_name(current)))
        })?;
        let mut core = polka::CoreNode::new(node_id.clone());
        let port = core
            .forward(&compiled.route)
            .ok_or_else(|| FreertrError::Route("remainder is not a port".into()))?;
        if port == PortId(0) {
            return Ok(visited); // delivered at egress
        }
        current = topo.neighbor_by_port(current, port.0).ok_or_else(|| {
            FreertrError::Route(format!(
                "{} has no physical port {}",
                topo.node_name(current),
                port.0
            ))
        })?;
    }
    Err(FreertrError::Route("routing loop detected".into()))
}

/// Convenience: an allocator sized for the topology (its max port fits
/// under the polynomial degree and every router can get a distinct ID).
pub fn allocator_for(topo: &Topology) -> NodeIdAllocator {
    NodeIdAllocator::for_network(topo.node_count(), topo.max_port().max(1))
}

/// Compiles a tunnel in the **port-switching baseline** mode: the same
/// domain path expressed as an ordered segment list (one popped label per
/// hop). Used for the header-size and per-hop-work comparisons against
/// the PolKA label.
pub fn compile_segment_list(
    tunnel: &TunnelCfg,
    topo: &Topology,
) -> Result<polka::SegmentListRoute, FreertrError> {
    if tunnel.domain_path.len() < 2 {
        return Err(FreertrError::Route(format!(
            "tunnel {} needs at least 2 routers in domain-name",
            tunnel.id
        )));
    }
    let names: Vec<&str> = tunnel.domain_path.iter().map(|s| s.as_str()).collect();
    let node_path = topo
        .path_by_names(&names)
        .map_err(|e| FreertrError::Route(e.to_string()))?;
    let mut segments = Vec::with_capacity(node_path.len() - 1);
    for k in 1..node_path.len() {
        let node = node_path[k];
        let port = if k + 1 < node_path.len() {
            let next = node_path[k + 1];
            PortId(topo.neighbor_port(node, next).ok_or_else(|| {
                FreertrError::Route(format!(
                    "{} has no port towards {}",
                    topo.node_name(node),
                    topo.node_name(next)
                ))
            })?)
        } else {
            PortId(0)
        };
        segments.push(port);
    }
    Ok(polka::SegmentListRoute::new(segments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::fig10_mia_config;
    use netsim::topo::global_p4_lab;

    #[test]
    fn all_three_tunnels_compile_and_walk() {
        let topo = global_p4_lab();
        let mut alloc = allocator_for(&topo);
        let cfg = fig10_mia_config();
        for tid in ["tunnel1", "tunnel2", "tunnel3"] {
            let tunnel = cfg.tunnel(tid).unwrap();
            let compiled = compile_tunnel(tunnel, &topo, &mut alloc).unwrap();
            let visited = walk_route(&compiled, &topo, &alloc).unwrap();
            assert_eq!(
                visited, compiled.node_path,
                "{tid}: data-plane walk must follow the domain path"
            );
        }
    }

    #[test]
    fn route_label_is_compact() {
        let topo = global_p4_lab();
        let mut alloc = allocator_for(&topo);
        let cfg = fig10_mia_config();
        let compiled = compile_tunnel(cfg.tunnel("tunnel3").unwrap(), &topo, &mut alloc).unwrap();
        // 3 encoded hops (CAL, CHI, AMS) * degree of the node polynomials.
        let max_bits = 3 * alloc.degree();
        assert!(
            compiled.label_bits() <= max_bits,
            "{} > {max_bits}",
            compiled.label_bits()
        );
    }

    #[test]
    fn distinct_tunnels_get_distinct_routes() {
        let topo = global_p4_lab();
        let mut alloc = allocator_for(&topo);
        let cfg = fig10_mia_config();
        let r1 = compile_tunnel(cfg.tunnel("tunnel1").unwrap(), &topo, &mut alloc).unwrap();
        let r2 = compile_tunnel(cfg.tunnel("tunnel2").unwrap(), &topo, &mut alloc).unwrap();
        assert_ne!(r1.route, r2.route);
    }

    #[test]
    fn same_tunnel_compiles_identically() {
        // The allocator memoizes node IDs, so recompiling yields the same
        // label — migrations swap labels, they don't recompute state.
        let topo = global_p4_lab();
        let mut alloc = allocator_for(&topo);
        let cfg = fig10_mia_config();
        let a = compile_tunnel(cfg.tunnel("tunnel1").unwrap(), &topo, &mut alloc).unwrap();
        let b = compile_tunnel(cfg.tunnel("tunnel1").unwrap(), &topo, &mut alloc).unwrap();
        assert_eq!(a.route, b.route);
    }

    #[test]
    fn bad_domain_path_rejected() {
        let topo = global_p4_lab();
        let mut alloc = allocator_for(&topo);
        let tunnel = TunnelCfg {
            id: "bad".into(),
            domain_path: vec!["MIA".into(), "AMS".into()], // not adjacent
            ..Default::default()
        };
        assert!(compile_tunnel(&tunnel, &topo, &mut alloc).is_err());
        let short = TunnelCfg {
            id: "short".into(),
            domain_path: vec!["MIA".into()],
            ..Default::default()
        };
        assert!(compile_tunnel(&short, &topo, &mut alloc).is_err());
    }

    #[test]
    fn segment_list_baseline_matches_polka_ports() {
        // Both encodings of the same tunnel must drive the same ports.
        let topo = global_p4_lab();
        let mut alloc = allocator_for(&topo);
        let cfg = fig10_mia_config();
        let tunnel = cfg.tunnel("tunnel3").unwrap();
        let polka_route = compile_tunnel(tunnel, &topo, &mut alloc).unwrap();
        let seglist = compile_segment_list(tunnel, &topo).unwrap();
        let polka_ports: Vec<_> = polka_route.spec.hops().iter().map(|(_, p)| *p).collect();
        assert_eq!(seglist.walk(), polka_ports);
    }

    #[test]
    fn segment_list_rejects_bad_paths() {
        let topo = global_p4_lab();
        let tunnel = TunnelCfg {
            id: "bad".into(),
            domain_path: vec!["MIA".into(), "AMS".into()],
            ..Default::default()
        };
        assert!(compile_segment_list(&tunnel, &topo).is_err());
    }

    #[test]
    fn walk_detects_corrupted_label() {
        let topo = global_p4_lab();
        let mut alloc = allocator_for(&topo);
        let cfg = fig10_mia_config();
        let mut compiled =
            compile_tunnel(cfg.tunnel("tunnel1").unwrap(), &topo, &mut alloc).unwrap();
        // Corrupt the label: flip low bits. The walk must fail or
        // deliver somewhere other than the intended path — never panic.
        let poly = compiled.route.poly().clone();
        let corrupted = &poly + &gf2poly::Poly::from_bits(0b1111);
        compiled.route = RouteId::from_poly(corrupted);
        // Either the walk errors (corruption detected) or it wanders off
        // the intended path — both acceptable, panicking is not.
        if let Ok(v) = walk_route(&compiled, &topo, &alloc) {
            assert_ne!(v, compiled.node_path);
        }
    }
}
