//! The router configuration model and the Fig 10 text dialect.
//!
//! Supported statements (a faithful subset of the paper's freeRtr
//! configuration in Fig 10):
//!
//! ```text
//! hostname MIA
//! access-list flow3 permit 6 40.40.1.0/24 40.40.2.2/32 tos 96
//! interface tunnel3
//!  tunnel destination 20.20.0.7
//!  tunnel domain-name MIA SAO AMS
//!  tunnel mode polka
//!  exit
//! pbr flow3 tunnel3 nexthop 30.30.3.2
//! ```
//!
//! `access-list` matches protocol, source and destination prefixes and an
//! optional ToS; `tunnel domain-name` lists the explicit router path
//! "which will be internally converted by freeRtr into a PolKA routeID to
//! be encapsulated in the packets passing through the tunnel" (the
//! conversion lives in [`crate::resolve`]); `pbr` binds an access list to
//! a tunnel.

use crate::packet::PacketMeta;
use crate::prefix::Ipv4Prefix;
use crate::FreertrError;

/// One access-list rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AclRule {
    /// List name (`flow3`).
    pub name: String,
    /// IP protocol to match; `None` = any.
    pub proto: Option<u8>,
    /// Source prefix.
    pub src: Ipv4Prefix,
    /// Destination prefix.
    pub dst: Ipv4Prefix,
    /// ToS byte to match; `None` = any.
    pub tos: Option<u8>,
}

impl AclRule {
    /// Does this rule match the packet?
    pub fn matches(&self, p: &PacketMeta) -> bool {
        self.proto.is_none_or(|proto| proto == p.proto)
            && self.src.contains(p.src)
            && self.dst.contains(p.dst)
            && self.tos.is_none_or(|tos| tos == p.tos)
    }
}

/// Tunnel encapsulation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TunnelMode {
    /// PolKA routeID encapsulation (the paper's mode).
    #[default]
    Polka,
    /// Classic segment-list source routing (the baseline).
    SegmentList,
}

/// A tunnel interface.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TunnelCfg {
    /// Interface name (`tunnel3`).
    pub id: String,
    /// Remote tunnel endpoint address (informational, as in Fig 10).
    pub destination: Option<String>,
    /// Explicit router path (`MIA SAO AMS`).
    pub domain_path: Vec<String>,
    /// Encapsulation.
    pub mode: TunnelMode,
}

/// A policy-based-routing entry binding an ACL to a tunnel.
#[derive(Debug, Clone, PartialEq)]
pub struct PbrEntry {
    /// Access-list name.
    pub acl: String,
    /// Tunnel interface name.
    pub tunnel: String,
    /// Next-hop address on the far side (informational).
    pub nexthop: Option<String>,
}

/// A router's full configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RouterConfig {
    /// Router hostname.
    pub hostname: String,
    /// Access lists, in match order.
    pub acls: Vec<AclRule>,
    /// Tunnel interfaces.
    pub tunnels: Vec<TunnelCfg>,
    /// PBR bindings, in match order.
    pub pbr: Vec<PbrEntry>,
}

impl RouterConfig {
    /// An empty configuration for a named router.
    pub fn new(hostname: &str) -> Self {
        RouterConfig {
            hostname: hostname.to_string(),
            ..Default::default()
        }
    }

    /// Finds a tunnel by name.
    pub fn tunnel(&self, id: &str) -> Option<&TunnelCfg> {
        self.tunnels.iter().find(|t| t.id == id)
    }

    /// Classifies a packet: first matching ACL that has a PBR binding
    /// wins; returns the tunnel name.
    pub fn classify(&self, p: &PacketMeta) -> Option<&str> {
        for rule in &self.acls {
            if rule.matches(p) {
                if let Some(entry) = self.pbr.iter().find(|e| e.acl == rule.name) {
                    return Some(entry.tunnel.as_str());
                }
            }
        }
        None
    }

    /// Rebinds an ACL to a different tunnel — the single PBR rewrite that
    /// performs a PolKA path migration ("each path migration is triggered
    /// by a single modification of a PBR entry in the ingress edge node").
    pub fn set_pbr(&mut self, acl: &str, tunnel: &str) -> Result<(), FreertrError> {
        if !self.acls.iter().any(|a| a.name == acl) {
            return Err(FreertrError::Unknown(format!("access-list {acl}")));
        }
        if self.tunnel(tunnel).is_none() {
            return Err(FreertrError::Unknown(format!("interface {tunnel}")));
        }
        if let Some(e) = self.pbr.iter_mut().find(|e| e.acl == acl) {
            e.tunnel = tunnel.to_string();
        } else {
            self.pbr.push(PbrEntry {
                acl: acl.to_string(),
                tunnel: tunnel.to_string(),
                nexthop: None,
            });
        }
        Ok(())
    }

    /// Emits the config in the text dialect (round-trips through
    /// [`parse_config`]).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("hostname {}\n", self.hostname));
        for a in &self.acls {
            out.push_str(&format!(
                "access-list {} permit {} {} {}",
                a.name,
                a.proto.map_or("all".to_string(), |p| p.to_string()),
                a.src,
                a.dst
            ));
            if let Some(tos) = a.tos {
                out.push_str(&format!(" tos {tos}"));
            }
            out.push('\n');
        }
        for t in &self.tunnels {
            out.push_str(&format!("interface {}\n", t.id));
            if let Some(d) = &t.destination {
                out.push_str(&format!(" tunnel destination {d}\n"));
            }
            if !t.domain_path.is_empty() {
                out.push_str(&format!(
                    " tunnel domain-name {}\n",
                    t.domain_path.join(" ")
                ));
            }
            out.push_str(&format!(
                " tunnel mode {}\n",
                match t.mode {
                    TunnelMode::Polka => "polka",
                    TunnelMode::SegmentList => "segment-list",
                }
            ));
            out.push_str(" exit\n");
        }
        for e in &self.pbr {
            out.push_str(&format!("pbr {} {}", e.acl, e.tunnel));
            if let Some(nh) = &e.nexthop {
                out.push_str(&format!(" nexthop {nh}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Parses the text dialect into a [`RouterConfig`].
pub fn parse_config(text: &str) -> Result<RouterConfig, FreertrError> {
    let mut cfg = RouterConfig::default();
    let mut current_tunnel: Option<TunnelCfg> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('!') || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let err = |m: String| FreertrError::Parse {
            line: lineno,
            message: m,
        };
        // Inside an interface block, lines start with `tunnel …` or `exit`.
        if let Some(t) = current_tunnel.as_mut() {
            match toks.as_slice() {
                ["exit"] => {
                    cfg.tunnels.push(current_tunnel.take().expect("in block"));
                    continue;
                }
                ["tunnel", "destination", d] => {
                    t.destination = Some(d.to_string());
                    continue;
                }
                ["tunnel", "domain-name", rest @ ..] if !rest.is_empty() => {
                    t.domain_path = rest.iter().map(|s| s.to_string()).collect();
                    continue;
                }
                ["tunnel", "mode", "polka"] => {
                    t.mode = TunnelMode::Polka;
                    continue;
                }
                ["tunnel", "mode", "segment-list"] => {
                    t.mode = TunnelMode::SegmentList;
                    continue;
                }
                ["interface", _] => {
                    // implicit exit before a new block
                    cfg.tunnels.push(current_tunnel.take().expect("in block"));
                    // fall through to top-level handling below
                }
                _ => return Err(err(format!("unknown tunnel statement {line:?}"))),
            }
        }
        match toks.as_slice() {
            ["hostname", h] => cfg.hostname = h.to_string(),
            ["access-list", name, "permit", proto, src, dst, rest @ ..] => {
                let proto = if *proto == "all" {
                    None
                } else {
                    Some(
                        proto
                            .parse::<u8>()
                            .map_err(|_| err(format!("bad protocol {proto:?}")))?,
                    )
                };
                let tos = match rest {
                    [] => None,
                    ["tos", t] => Some(t.parse::<u8>().map_err(|_| err(format!("bad tos {t:?}")))?),
                    _ => return Err(err(format!("trailing tokens {rest:?}"))),
                };
                cfg.acls.push(AclRule {
                    name: name.to_string(),
                    proto,
                    src: Ipv4Prefix::parse(src).map_err(|e| err(format!("source prefix: {e}")))?,
                    dst: Ipv4Prefix::parse(dst)
                        .map_err(|e| err(format!("destination prefix: {e}")))?,
                    tos,
                });
            }
            ["interface", id] => {
                current_tunnel = Some(TunnelCfg {
                    id: id.to_string(),
                    ..Default::default()
                });
            }
            ["pbr", acl, tunnel, rest @ ..] => {
                let nexthop = match rest {
                    [] => None,
                    ["nexthop", nh] => Some(nh.to_string()),
                    _ => return Err(err(format!("trailing tokens {rest:?}"))),
                };
                cfg.pbr.push(PbrEntry {
                    acl: acl.to_string(),
                    tunnel: tunnel.to_string(),
                    nexthop,
                });
            }
            _ => return Err(err(format!("unknown statement {line:?}"))),
        }
    }
    if let Some(t) = current_tunnel.take() {
        cfg.tunnels.push(t); // unterminated block: accept, like freeRtr
    }
    Ok(cfg)
}

/// The paper's Fig 10 edge configuration for the MIA router, with all
/// three experiment tunnels installed.
pub fn fig10_mia_config() -> RouterConfig {
    parse_config(
        "hostname MIA\n\
         access-list flow1 permit 6 40.40.1.0/24 40.40.2.2/32 tos 32\n\
         access-list flow2 permit 6 40.40.1.0/24 40.40.2.2/32 tos 64\n\
         access-list flow3 permit 6 40.40.1.0/24 40.40.2.2/32 tos 96\n\
         access-list icmp permit 1 40.40.1.0/24 40.40.2.2/32\n\
         interface tunnel1\n\
         \x20tunnel destination 20.20.0.7\n\
         \x20tunnel domain-name MIA SAO AMS\n\
         \x20tunnel mode polka\n\
         \x20exit\n\
         interface tunnel2\n\
         \x20tunnel destination 20.20.0.7\n\
         \x20tunnel domain-name MIA CHI AMS\n\
         \x20tunnel mode polka\n\
         \x20exit\n\
         interface tunnel3\n\
         \x20tunnel destination 20.20.0.7\n\
         \x20tunnel domain-name MIA CAL CHI AMS\n\
         \x20tunnel mode polka\n\
         \x20exit\n\
         pbr flow1 tunnel1 nexthop 30.30.1.2\n\
         pbr flow2 tunnel1 nexthop 30.30.1.2\n\
         pbr flow3 tunnel1 nexthop 30.30.3.2\n\
         pbr icmp tunnel1\n",
    )
    .expect("fig10 config is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PROTO_TCP;

    fn addr(s: &str) -> u32 {
        Ipv4Prefix::parse_addr(s).unwrap()
    }

    #[test]
    fn fig10_snippet_parses() {
        // The exact shape described in the paper's Fig 10 text.
        let cfg = parse_config(
            "access-list flow3 permit 6 40.40.1.0/24 40.40.2.2/32 tos 96\n\
             interface tunnel3\n\
             \x20tunnel destination 20.20.0.7\n\
             \x20tunnel domain-name MIA SAO AMS\n\
             \x20tunnel mode polka\n\
             \x20exit\n\
             pbr flow3 tunnel3 nexthop 30.30.3.2\n",
        )
        .unwrap();
        assert_eq!(cfg.acls.len(), 1);
        assert_eq!(cfg.acls[0].proto, Some(PROTO_TCP));
        assert_eq!(cfg.acls[0].tos, Some(96));
        let t = cfg.tunnel("tunnel3").unwrap();
        assert_eq!(t.domain_path, vec!["MIA", "SAO", "AMS"]);
        assert_eq!(t.destination.as_deref(), Some("20.20.0.7"));
        assert_eq!(cfg.pbr[0].nexthop.as_deref(), Some("30.30.3.2"));
    }

    #[test]
    fn emit_parse_roundtrip() {
        let cfg = fig10_mia_config();
        let text = cfg.emit();
        let back = parse_config(&text).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn classify_by_tos() {
        let cfg = fig10_mia_config();
        let p96 = PacketMeta::tcp(addr("40.40.1.10"), addr("40.40.2.2"), 1000, 5001, 96);
        let p32 = PacketMeta::tcp(addr("40.40.1.10"), addr("40.40.2.2"), 1000, 5001, 32);
        assert_eq!(cfg.classify(&p96), Some("tunnel1")); // flow3 -> tunnel1 initially
        assert_eq!(cfg.classify(&p32), Some("tunnel1"));
    }

    #[test]
    fn classify_rejects_wrong_subnet_and_proto() {
        let cfg = fig10_mia_config();
        let wrong_net = PacketMeta::tcp(addr("10.0.0.1"), addr("40.40.2.2"), 1, 2, 96);
        assert_eq!(cfg.classify(&wrong_net), None);
        let wrong_proto = PacketMeta {
            proto: 17,
            ..PacketMeta::tcp(addr("40.40.1.1"), addr("40.40.2.2"), 1, 2, 96)
        };
        assert_eq!(cfg.classify(&wrong_proto), None);
    }

    #[test]
    fn pbr_rewrite_is_the_migration_primitive() {
        let mut cfg = fig10_mia_config();
        let p = PacketMeta::tcp(addr("40.40.1.10"), addr("40.40.2.2"), 1000, 5001, 96);
        assert_eq!(cfg.classify(&p), Some("tunnel1"));
        cfg.set_pbr("flow3", "tunnel3").unwrap();
        assert_eq!(cfg.classify(&p), Some("tunnel3"));
        // Other flows untouched.
        let p32 = PacketMeta::tcp(addr("40.40.1.10"), addr("40.40.2.2"), 1000, 5001, 32);
        assert_eq!(cfg.classify(&p32), Some("tunnel1"));
    }

    #[test]
    fn set_pbr_validates_references() {
        let mut cfg = fig10_mia_config();
        assert!(cfg.set_pbr("nope", "tunnel1").is_err());
        assert!(cfg.set_pbr("flow3", "tunnel9").is_err());
    }

    #[test]
    fn acl_without_tos_matches_any_tos() {
        let cfg = fig10_mia_config();
        let ping = PacketMeta::icmp(addr("40.40.1.10"), addr("40.40.2.2"));
        assert_eq!(cfg.classify(&ping), Some("tunnel1"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let cfg = parse_config("! comment\n\n# another\nhostname X\n").unwrap();
        assert_eq!(cfg.hostname, "X");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_config("hostname A\nbogus statement here\n").unwrap_err();
        match e {
            FreertrError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_interface_block_accepted() {
        let cfg = parse_config("interface tunnel1\n tunnel mode polka\n").unwrap();
        assert_eq!(cfg.tunnels.len(), 1);
    }

    #[test]
    fn implicit_exit_between_interfaces() {
        let cfg = parse_config("interface tunnel1\n tunnel mode polka\ninterface tunnel2\n exit\n")
            .unwrap();
        assert_eq!(cfg.tunnels.len(), 2);
    }
}
