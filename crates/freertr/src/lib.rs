//! Emulation of the RARE/freeRtr control plane used by the paper's
//! testbed: PolKA tunnels, access lists, policy-based routing, and a
//! message-queue-driven router agent.
//!
//! The paper configures its edge routers with freeRtr commands (Fig 10):
//! an `access-list` matching a flow 5-tuple + ToS, a `tunnel` interface
//! whose `domain-name` lists the explicit router path (internally
//! converted to a PolKA routeID), and a PBR rule binding the access list
//! to the tunnel. "The framework uses a message queue system … a service
//! receives these messages, applies the necessary commands to reconfigure
//! FreeRtr."
//!
//! This crate reproduces that stack in software:
//!
//! * [`prefix`] — IPv4 prefixes for ACL matching;
//! * [`packet`] — flow 5-tuple + ToS metadata and a wire codec;
//! * [`config`] — the configuration model: ACLs, tunnels, PBR
//!   ([`config::RouterConfig`]), plus the Fig 10 text dialect parser
//!   ([`config::parse_config`]) and emitter;
//! * [`resolve`] — packet classification and tunnel → PolKA routeID
//!   compilation against a node-ID allocator and the netsim topology;
//! * [`agent`] — router agents consuming typed config messages over
//!   crossbeam channels, with acknowledgments, emulating the testbed's
//!   message-queue reconfiguration path.

pub mod agent;
pub mod config;
pub mod packet;
pub mod prefix;
pub mod resolve;

pub use config::{AclRule, PbrEntry, RouterConfig, TunnelCfg};
pub use packet::PacketMeta;
pub use prefix::Ipv4Prefix;

/// Errors from the control-plane emulation.
#[derive(Debug, Clone, PartialEq)]
pub enum FreertrError {
    /// Config text could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// Referenced entity (ACL, tunnel) does not exist.
    Unknown(String),
    /// Tunnel path could not be compiled to a route.
    Route(String),
    /// The agent channel is closed.
    ChannelClosed,
}

impl std::fmt::Display for FreertrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreertrError::Parse { line, message } => {
                write!(f, "config parse error at line {line}: {message}")
            }
            FreertrError::Unknown(what) => write!(f, "unknown entity: {what}"),
            FreertrError::Route(m) => write!(f, "route compilation failed: {m}"),
            FreertrError::ChannelClosed => write!(f, "router agent channel closed"),
        }
    }
}

impl std::error::Error for FreertrError {}
