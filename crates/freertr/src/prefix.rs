//! IPv4 prefixes for access-list matching.

use crate::FreertrError;

/// An IPv4 CIDR prefix, e.g. `40.40.1.0/24`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Builds from a host-order address and prefix length.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range");
        Ipv4Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// The all-matching prefix `0.0.0.0/0`.
    pub fn any() -> Self {
        Ipv4Prefix { addr: 0, len: 0 }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Parses `a.b.c.d/len` or a bare host address (`/32` implied).
    pub fn parse(s: &str) -> Result<Self, FreertrError> {
        let err = |m: &str| FreertrError::Parse {
            line: 0,
            message: format!("bad prefix {s:?}: {m}"),
        };
        let (addr_str, len) = match s.split_once('/') {
            Some((a, l)) => (a, l.parse::<u8>().map_err(|_| err("invalid length"))?),
            None => (s, 32),
        };
        if len > 32 {
            return Err(err("length > 32"));
        }
        let octets: Vec<&str> = addr_str.split('.').collect();
        if octets.len() != 4 {
            return Err(err("need four octets"));
        }
        let mut addr: u32 = 0;
        for o in octets {
            let v = o.parse::<u8>().map_err(|_| err("invalid octet"))?;
            addr = (addr << 8) | v as u32;
        }
        Ok(Ipv4Prefix::new(addr, len))
    }

    /// Parses a bare dotted-quad into a host-order `u32`.
    pub fn parse_addr(s: &str) -> Result<u32, FreertrError> {
        Ok(Self::parse(s)?.addr)
    }

    /// True when `addr` (host order) falls inside the prefix.
    pub fn contains(&self, addr: u32) -> bool {
        (addr & Self::mask(self.len)) == self.addr
    }

    /// Prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length (match-all) prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}/{}",
            (self.addr >> 24) & 0xFF,
            (self.addr >> 16) & 0xFF,
            (self.addr >> 8) & 0xFF,
            self.addr & 0xFF,
            self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["40.40.1.0/24", "10.0.0.0/8", "192.168.1.7/32", "0.0.0.0/0"] {
            let p = Ipv4Prefix::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn bare_address_is_host_prefix() {
        let p = Ipv4Prefix::parse("40.40.2.2").unwrap();
        assert_eq!(p.len(), 32);
        assert!(p.contains(Ipv4Prefix::parse_addr("40.40.2.2").unwrap()));
        assert!(!p.contains(Ipv4Prefix::parse_addr("40.40.2.3").unwrap()));
    }

    #[test]
    fn containment_respects_mask() {
        let p = Ipv4Prefix::parse("40.40.1.0/24").unwrap();
        assert!(p.contains(Ipv4Prefix::parse_addr("40.40.1.1").unwrap()));
        assert!(p.contains(Ipv4Prefix::parse_addr("40.40.1.255").unwrap()));
        assert!(!p.contains(Ipv4Prefix::parse_addr("40.40.2.1").unwrap()));
    }

    #[test]
    fn non_canonical_bits_are_masked() {
        let p = Ipv4Prefix::parse("40.40.1.77/24").unwrap();
        assert_eq!(p.to_string(), "40.40.1.0/24");
    }

    #[test]
    fn any_matches_everything() {
        let p = Ipv4Prefix::any();
        assert!(p.contains(0));
        assert!(p.contains(u32::MAX));
    }

    #[test]
    fn malformed_rejected() {
        for s in ["1.2.3", "1.2.3.4.5", "300.1.1.1", "1.2.3.4/33", "a.b.c.d"] {
            assert!(Ipv4Prefix::parse(s).is_err(), "{s} should fail");
        }
    }
}
