//! detlint — the workspace determinism & robustness lint engine.
//!
//! The simulator's headline guarantee is *bit-replayability*: the same
//! scenario seed must produce byte-identical scorecards on every run,
//! every machine, every thread count. That guarantee has been broken
//! exactly once — by a floating-point fold over `HashMap` iteration
//! order, whose per-process randomization produced ULP-level drift that
//! flipped a routing decision. The type system cannot express "this
//! collection's iteration order is unspecified", so this crate enforces
//! it at the source level instead.
//!
//! Five rules (see [`RULES`]):
//!
//! | rule | catches | where |
//! |------|---------|-------|
//! | `unordered-iter` | iterating a `HashMap`/`HashSet` | determinism-critical crates |
//! | `wall-clock` | `Instant::now` / `SystemTime::now` | everywhere but bench + examples |
//! | `unseeded-rng` | `thread_rng` / `from_entropy` / `OsRng` | non-test code |
//! | `float-unordered-fold` | `.sum::<f64>()` / `.fold(..)` over a hash collection | determinism-critical crates |
//! | `bare-panic` | `.unwrap()` / `.expect()` / `panic!` | hot-path modules |
//!
//! A finding is suppressed by an inline annotation **with a
//! justification** — the justification is not optional:
//!
//! ```text
//! // detlint: allow(wall-clock) — fit_time is a reported measurement,
//! // never fed back into a decision.
//! ```
//!
//! A malformed annotation (unknown rule, missing justification) is
//! itself a finding under the pseudo-rule `bad-allow`, so the escape
//! hatch cannot silently rot.
//!
//! The analysis is lexical + local (a hand-rolled tokenizer, a per-file
//! symbol table of hash-typed names, and backward receiver-chain
//! resolution). It is deliberately dependency-free: a lint that gates
//! CI must never be the thing that fails to build offline.

pub mod tokenize;

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use tokenize::{lex, Comment, TokKind, Token};

/// All rules, in severity-then-name order. `bad-allow` is the
/// pseudo-rule for malformed suppression annotations.
pub const RULES: &[&str] = &[
    "unordered-iter",
    "wall-clock",
    "unseeded-rng",
    "float-unordered-fold",
    "bare-panic",
    "bad-allow",
];

/// Unordered hash collections. `IndexMap` is *not* here: its iteration
/// order is insertion order, which is deterministic.
const HASH_TYPES: &[&str] = &[
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
];

/// Crates whose output feeds bit-replayed scorecards. `unordered-iter`
/// and `float-unordered-fold` apply here, tests included — a test that
/// asserts on unordered iteration is a flaky test.
const CRITICAL_CRATES: &[&str] = &[
    "crates/netsim/",
    "crates/scenarios/",
    "crates/framework/",
    "crates/dataplane/",
    "crates/hecate-ml/",
    "crates/obsv/",
    "crates/obsv-analyze/",
    "crates/polka/",
];

/// Hot-path modules where `bare-panic` applies: a panic here tears down
/// a simulation or a forwarding worker mid-scenario.
const BARE_PANIC_FILES: &[&str] = &[
    "crates/netsim/src/sim.rs",
    "crates/framework/src/controller.rs",
    "crates/framework/src/waterfill.rs",
    "crates/dataplane/src/plane.rs",
    "crates/dataplane/src/shard.rs",
    "crates/dataplane/src/netem.rs",
];

/// Method names that begin unordered iteration when called on a hash
/// collection.
const ITER_TRIGGERS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Adapters that forward the receiver unchanged for *collection*
/// resolution: `map.lock().unwrap().iter()` is still iteration over
/// `map` (`unwrap`/`expect` forward a guard's success value).
const TRANSPARENT: &[&str] = &[
    "read",
    "write",
    "lock",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "clone",
    "to_owned",
    "unwrap",
    "expect",
];

/// For `float-unordered-fold` the chain additionally passes through
/// iterator adapters: `map.values().map(|x| x.cost).sum::<f64>()` is
/// still an unordered reduction.
const ITER_ADAPTERS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "map",
    "filter",
    "filter_map",
    "copied",
    "cloned",
    "flatten",
    "flat_map",
    "enumerate",
    "rev",
    "skip",
    "take",
    "step_by",
    "zip",
    "chain",
    "inspect",
    "by_ref",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Display path (real file on disk).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// A parsed `allow` suppression annotation.
#[derive(Debug)]
struct Allow {
    rules: Vec<String>,
    /// Lines this annotation suppresses findings on.
    lines: BTreeSet<u32>,
    /// Set when the annotation is malformed; becomes a `bad-allow`.
    problem: Option<String>,
    /// Line the annotation itself sits on (for `bad-allow` reports).
    at_line: u32,
}

/// Per-file symbol table: names whose type mentions a hash collection.
#[derive(Debug, Default)]
struct Symbols {
    /// Variables, fields and parameters.
    vars: BTreeSet<String>,
    /// Functions whose return type mentions a hash collection.
    fns: BTreeSet<String>,
    /// Fn parameters with *non*-hash types that shadow a hash-typed
    /// name elsewhere in the file: (name, body token range). Inside the
    /// range a bare use of the name resolves to the parameter.
    shadows: Vec<(String, usize, usize)>,
}

impl Symbols {
    /// True if a bare use of `name` at token `at` is shadowed by a
    /// non-hash fn parameter.
    fn shadowed(&self, name: &str, at: usize) -> bool {
        self.shadows
            .iter()
            .any(|(n, lo, hi)| n == name && (*lo..=*hi).contains(&at))
    }
}

fn is_hash_type(name: &str) -> bool {
    HASH_TYPES.contains(&name)
}

fn is_critical(vpath: &str) -> bool {
    CRITICAL_CRATES.iter().any(|c| vpath.starts_with(c))
}

fn wall_clock_exempt(vpath: &str) -> bool {
    vpath.starts_with("crates/bench/")
        || vpath.starts_with("examples/")
        || vpath.contains("/examples/")
}

fn bare_panic_target(vpath: &str) -> bool {
    BARE_PANIC_FILES.contains(&vpath)
}

fn is_test_path(vpath: &str) -> bool {
    vpath.starts_with("tests/")
        || vpath.contains("/tests/")
        || vpath.contains("/benches/")
        || vpath.ends_with("/tests.rs")
}

/// Scan one file's source. `vpath` is the workspace-relative path used
/// for rule scoping (fixtures override it via a
/// `// detlint-fixture-path: <path>` directive on the first lines);
/// `display_path` is what diagnostics print.
pub fn scan_source(display_path: &str, vpath: &str, src: &str) -> Vec<Finding> {
    let (toks, comments) = lex(src);
    let vpath = fixture_path_override(&comments).unwrap_or_else(|| vpath.to_string());
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    let in_test = test_regions(&toks);
    let syms = collect_symbols(&toks);
    let allows = parse_allows(&comments, &toks);

    let mut found: Vec<Finding> = Vec::new();
    let mut emit = |rule: &'static str, tok: &Token, message: String| {
        found.push(Finding {
            rule,
            path: display_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: snippet(tok.line),
        });
    };

    let critical = is_critical(&vpath);
    let panics_here = bare_panic_target(&vpath);
    let testy_path = is_test_path(&vpath);

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = toks.get(i + 1);
        let prev = i.checked_sub(1).map(|j| &toks[j]);

        // --- wall-clock ---------------------------------------------
        if matches!(
            t.text.as_str(),
            "Instant" | "SystemTime" | "Utc" | "Local" | "Date"
        ) && next.is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
            && !wall_clock_exempt(&vpath)
        {
            emit(
                "wall-clock",
                t,
                format!(
                    "`{}::now()` reads the wall clock; simulated time must come \
                     from the event clock so runs are bit-replayable",
                    t.text
                ),
            );
        }

        // --- unseeded-rng -------------------------------------------
        if !in_test[i] && !testy_path {
            let rng_hit = match t.text.as_str() {
                "thread_rng" if next.is_some_and(|n| n.is_punct("(")) => true,
                "from_entropy" | "from_os_rng" | "from_rng_os"
                    if prev.is_some_and(|p| p.is_punct("::") || p.is_punct(".")) =>
                {
                    true
                }
                "OsRng" => true,
                "random"
                    if prev.is_some_and(|p| p.is_punct("::"))
                        && i >= 2
                        && toks[i - 2].is_ident("rand") =>
                {
                    true
                }
                _ => false,
            };
            if rng_hit {
                emit(
                    "unseeded-rng",
                    t,
                    format!(
                        "`{}` draws ambient entropy; all randomness must flow \
                         from an explicit u64 scenario seed",
                        t.text
                    ),
                );
            }
        }

        // --- bare-panic ---------------------------------------------
        if panics_here && !in_test[i] {
            let hit = match t.text.as_str() {
                "unwrap" | "expect" => {
                    prev.is_some_and(|p| p.is_punct(".")) && next.is_some_and(|n| n.is_punct("("))
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    next.is_some_and(|n| n.is_punct("!"))
                }
                _ => false,
            };
            if hit {
                emit(
                    "bare-panic",
                    t,
                    format!(
                        "`{}` can tear down a simulation or forwarding worker \
                         mid-scenario; return an error instead",
                        t.text
                    ),
                );
            }
        }

        if !critical {
            continue;
        }

        // --- unordered-iter -----------------------------------------
        if ITER_TRIGGERS.contains(&t.text.as_str())
            && prev.is_some_and(|p| p.is_punct("."))
            && next.is_some_and(|n| n.is_punct("("))
        {
            if let Some(recv) = hash_receiver(&toks, i - 1, &syms, TRANSPARENT) {
                emit(
                    "unordered-iter",
                    t,
                    format!(
                        "`.{}()` on `{}` iterates a hash collection in \
                         unspecified order; use BTreeMap/BTreeSet or collect \
                         and sort first",
                        t.text, recv
                    ),
                );
            }
        }

        // `for x in map` / `for x in &self.flows` — iteration without a
        // method call. Chains containing `(` are left to the method
        // triggers above.
        if t.is_ident("for") {
            if let Some((name, at)) = for_loop_hash_expr(&toks, i, &syms) {
                emit(
                    "unordered-iter",
                    &toks[at],
                    format!(
                        "`for` loop over hash collection `{name}` iterates in \
                         unspecified order; use BTreeMap/BTreeSet or sort first"
                    ),
                );
            }
        }

        // --- float-unordered-fold -----------------------------------
        let float_hit = match t.text.as_str() {
            "sum" | "product" => {
                prev.is_some_and(|p| p.is_punct("."))
                    && next.is_some_and(|n| n.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct("<"))
                    && toks
                        .get(i + 3)
                        .is_some_and(|n| n.is_ident("f32") || n.is_ident("f64"))
            }
            "fold" => {
                prev.is_some_and(|p| p.is_punct(".")) && next.is_some_and(|n| n.is_punct("("))
            }
            _ => false,
        };
        if float_hit {
            let mut through: Vec<&str> =
                Vec::with_capacity(TRANSPARENT.len() + ITER_ADAPTERS.len());
            through.extend_from_slice(TRANSPARENT);
            through.extend_from_slice(ITER_ADAPTERS);
            if let Some(recv) = hash_receiver(&toks, i - 1, &syms, &through) {
                emit(
                    "float-unordered-fold",
                    t,
                    format!(
                        "floating-point reduction over hash collection `{recv}`: \
                         iteration order changes the rounding, which has flipped \
                         routing decisions before; sort the terms first"
                    ),
                );
            }
        }
    }

    // Apply suppressions, then append bad-allow findings.
    let mut out: Vec<Finding> = found
        .into_iter()
        .filter(|f| {
            !allows.iter().any(|a| {
                a.problem.is_none()
                    && a.rules.iter().any(|r| r == f.rule)
                    && a.lines.contains(&f.line)
            })
        })
        .collect();
    for a in &allows {
        if let Some(problem) = &a.problem {
            out.push(Finding {
                rule: "bad-allow",
                path: display_path.to_string(),
                line: a.at_line,
                col: 1,
                message: format!(
                    "malformed detlint allow: {problem} — write \
                     `// detlint: allow(<rule>) — <why it is sound>`"
                ),
                snippet: snippet(a.at_line),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// `// detlint-fixture-path: crates/netsim/src/lib.rs` in the first
/// lines of a fixture makes the engine scope rules as if the snippet
/// lived at that path.
fn fixture_path_override(comments: &[Comment]) -> Option<String> {
    comments
        .iter()
        .filter(|c| c.line <= 5)
        .find_map(|c| {
            c.text
                .split_once("detlint-fixture-path:")
                .map(|(_, rest)| rest.trim().to_string())
        })
        .filter(|p| !p.is_empty())
}

/// Per-token "inside a test region" flags, computed by tracking
/// `#[test]` / `#[cfg(test)]` attributes and brace depth.
fn test_regions(toks: &[Token]) -> Vec<bool> {
    let mut out = vec![false; toks.len()];
    let mut depth = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("#") && toks.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            // scan the attribute group; #[cfg(not(test))] must not arm
            let mut j = i + 2;
            let mut d = 1u32;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() && d > 0 {
                let tj = &toks[j];
                if tj.is_punct("[") {
                    d += 1;
                } else if tj.is_punct("]") {
                    d -= 1;
                } else if tj.is_ident("test") || tj.is_ident("proptest") {
                    has_test = true;
                } else if tj.is_ident("not") {
                    has_not = true;
                }
                j += 1;
            }
            if has_test && !has_not {
                pending = true;
            }
            let inside = !stack.is_empty();
            for flag in out.iter_mut().take(j).skip(i) {
                *flag = inside;
            }
            i = j;
            continue;
        }
        if t.is_punct("{") {
            depth += 1;
            if pending {
                stack.push(depth);
                pending = false;
            }
        } else if t.is_punct("}") {
            if stack.last() == Some(&depth) {
                stack.pop();
            }
            depth = depth.saturating_sub(1);
        } else if t.is_punct(";") && pending && stack.is_empty() {
            // attribute landed on a body-less item (`mod tests;`)
            pending = false;
        }
        out[i] = !stack.is_empty();
        i += 1;
    }
    out
}

/// Collect names whose declared type or initializer mentions a hash
/// collection: struct fields, `let` bindings (annotated or inferred),
/// fn params, and functions returning hash collections.
fn collect_symbols(toks: &[Token]) -> Symbols {
    let mut syms = Symbols::default();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name: <type containing a hash collection>` — fields, params,
        // annotated lets, struct-literal inits.
        if toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            if type_mentions_hash(toks, i + 2) {
                syms.vars.insert(t.text.clone());
            }
            continue;
        }
        // `let [mut] name = <expr containing a hash constructor>;`
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            if toks.get(j + 1).is_some_and(|n| n.is_punct("=")) && expr_mentions_hash(toks, j + 2) {
                syms.vars.insert(name.text.clone());
            }
            continue;
        }
        // `fn name(..) -> <type containing a hash collection>`
        if t.is_ident("fn") {
            let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            if fn_returns_hash(toks, i + 2) {
                syms.fns.insert(name.text.clone());
            }
            let _ = collect_param_shadows(toks, i + 2, &mut syms.shadows);
        }
    }
    syms
}

/// Record the non-hash-typed parameters of the fn whose name ends at
/// `start - 1`, scoped to the fn's body. A parameter like
/// `names: &[&str]` must shadow a hash-typed field `names` for the rest
/// of the fn, or every use of the slice would be flagged.
fn collect_param_shadows(
    toks: &[Token],
    start: usize,
    shadows: &mut Vec<(String, usize, usize)>,
) -> Option<()> {
    // skip generics to the parameter list's `(`
    let mut i = start;
    let mut angle = 0i32;
    let open = loop {
        let t = toks.get(i)?;
        match t.text.as_str() {
            "<" if t.kind == TokKind::Punct => angle += 1,
            ">" if t.kind == TokKind::Punct => angle -= 1,
            "(" if t.kind == TokKind::Punct && angle == 0 => break i,
            ";" | "{" if t.kind == TokKind::Punct => return None,
            _ => {}
        }
        i += 1;
        if i > start + 64 {
            return None;
        }
    };
    // parameters sit at paren depth 1
    let mut depth = 0i32;
    let mut names: Vec<String> = Vec::new();
    let mut i = open;
    let close = loop {
        let t = toks.get(i)?;
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break i;
                    }
                }
                _ => {}
            }
        }
        if depth == 1
            && t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct(":"))
            && !type_mentions_hash(toks, i + 2)
        {
            names.push(t.text.clone());
        }
        i += 1;
    };
    if names.is_empty() {
        return None;
    }
    // the body is the `{ .. }` after the signature (trait fns end in `;`)
    let mut i = close + 1;
    let body_open = loop {
        let t = toks.get(i)?;
        if t.is_punct(";") {
            return None;
        }
        if t.is_punct("{") {
            break i;
        }
        i += 1;
        if i > close + 96 {
            return None;
        }
    };
    let mut depth = 0i32;
    let mut i = body_open;
    let body_close = loop {
        let t = toks.get(i)?;
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                break i;
            }
        }
        i += 1;
    };
    for n in names {
        shadows.push((n, body_open, body_close));
    }
    Some(())
}

/// Scan a type position starting at `start` until a depth-0 terminator;
/// true if a hash-collection ident appears.
fn type_mentions_hash(toks: &[Token], start: usize) -> bool {
    let mut depth = 0i32;
    for t in toks.iter().skip(start).take(64) {
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" if depth > 0 => depth -= 1,
                ">" | ")" | "]" | "," | ";" | "{" | "}" | "=" if depth == 0 => return false,
                _ => {}
            },
            TokKind::Ident if is_hash_type(&t.text) => return true,
            _ => {}
        }
    }
    false
}

/// Scan an initializer expression until `;` at paren depth 0; true if a
/// hash-collection ident appears (e.g. `HashMap::new()`, `HashSet::from`).
fn expr_mentions_hash(toks: &[Token], start: usize) -> bool {
    let mut depth = 0i32;
    for t in toks.iter().skip(start).take(96) {
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => return false,
                _ => {}
            },
            TokKind::Ident if is_hash_type(&t.text) => return true,
            _ => {}
        }
    }
    false
}

/// From just past a fn name: skip to a depth-0 `->` (if any, before the
/// body `{` or `;`) and check the return type.
fn fn_returns_hash(toks: &[Token], start: usize) -> bool {
    let mut depth = 0i32;
    let mut i = start;
    let end = toks.len().min(start + 160);
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" if depth == 0 => return false,
                "-" if depth == 0 && toks.get(i + 1).is_some_and(|n| n.is_punct(">")) => {
                    return type_mentions_hash(toks, i + 2);
                }
                _ => {}
            }
        }
        i += 1;
    }
    false
}

/// Walk backward from the `.` at `dot` through the receiver chain.
/// Returns the hash-typed name the chain bottoms out in, if any.
/// `through` lists method names treated as forwarding the receiver.
fn hash_receiver(
    toks: &[Token],
    mut dot: usize,
    syms: &Symbols,
    through: &[&str],
) -> Option<String> {
    loop {
        let j = dot.checked_sub(1)?;
        let t = &toks[j];
        if t.is_punct(")") {
            let open = back_match(toks, j, "(", ")")?;
            let k = open.checked_sub(1)?;
            let kt = &toks[k];
            if kt.kind == TokKind::Ident {
                let name = kt.text.as_str();
                if k >= 1 && toks[k - 1].is_punct(".") {
                    // method call `.name(..)`
                    if through.contains(&name) {
                        dot = k - 1;
                        continue;
                    }
                    if syms.fns.contains(name) {
                        return Some(kt.text.clone());
                    }
                    return None;
                }
                if k >= 2 && toks[k - 1].is_punct("::") {
                    // path call `Seg::..::name(..)`: flag if a segment
                    // is a hash type (`HashMap::new().keys()`).
                    let mut p = k - 1;
                    while let Some(seg) = p.checked_sub(1).map(|q| &toks[q]) {
                        if seg.kind != TokKind::Ident {
                            break;
                        }
                        if is_hash_type(&seg.text) {
                            return Some(seg.text.clone());
                        }
                        if p >= 2 && toks[p - 2].is_punct("::") {
                            p -= 2;
                        } else {
                            break;
                        }
                    }
                    if syms.fns.contains(name) {
                        return Some(kt.text.clone());
                    }
                    return None;
                }
                // free call `name(..)`
                if syms.fns.contains(name) {
                    return Some(kt.text.clone());
                }
                return None;
            }
            // grouped receiver `(&map).iter()` — look inside the group
            for inner in &toks[open + 1..j] {
                if inner.kind == TokKind::Ident
                    && (is_hash_type(&inner.text) || syms.vars.contains(&inner.text))
                {
                    return Some(inner.text.clone());
                }
            }
            return None;
        }
        if t.is_punct("]") {
            // indexing: resolve the chain before the `[`
            dot = back_match(toks, j, "[", "]")?;
            continue;
        }
        if t.is_punct("?") {
            dot = j;
            continue;
        }
        if t.kind == TokKind::Ident {
            let is_field = j >= 1 && toks[j - 1].is_punct(".");
            // A bare local use may be shadowed by a non-hash parameter
            // of the enclosing fn; a field access (`self.x`) is not.
            let shadowed = !is_field && syms.shadowed(&t.text, j);
            if !shadowed && (syms.vars.contains(&t.text) || is_hash_type(&t.text)) {
                return Some(t.text.clone());
            }
            // dotted field path: keep checking outer segments
            // (`self.inner.iter()` checks `inner`, then `self`).
            if is_field {
                dot = j - 1;
                continue;
            }
            return None;
        }
        return None;
    }
}

/// Index of the `open` punct matching the `close` punct at `close_idx`,
/// walking backward.
fn back_match(toks: &[Token], close_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut d = 0i32;
    let mut i = close_idx;
    loop {
        let t = &toks[i];
        if t.is_punct(close) {
            d += 1;
        } else if t.is_punct(open) {
            d -= 1;
            if d == 0 {
                return Some(i);
            }
        }
        i = i.checked_sub(1)?;
    }
}

/// `for <pat> in <expr> {` where `<expr>` is a call-free path whose
/// segments include a hash-typed name. Returns (name, token index of
/// the offending ident).
fn for_loop_hash_expr(toks: &[Token], for_idx: usize, syms: &Symbols) -> Option<(String, usize)> {
    // `for<'a>` HRTB and `impl .. for Type` have no depth-0 `in`.
    if toks.get(for_idx + 1).is_some_and(|n| n.is_punct("<")) {
        return None;
    }
    let mut depth = 0i32;
    let mut in_idx = None;
    for (off, t) in toks.iter().enumerate().skip(for_idx + 1).take(96) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return None, // `impl Trait for T {`
                _ => {}
            }
        } else if depth == 0 && t.is_ident("in") {
            in_idx = Some(off);
            break;
        }
    }
    let in_idx = in_idx?;
    // The expr runs to the loop body `{` at depth 0. If it contains a
    // call anywhere, the method triggers own it — so find the extent
    // first, then look for a bare hash-typed path.
    let mut depth = 0i32;
    let mut end = None;
    for (off, t) in toks.iter().enumerate().skip(in_idx + 1).take(32) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => return None, // calls are the method triggers' job
                "[" => depth += 1,
                "]" => depth -= 1,
                "{" if depth == 0 => {
                    end = Some(off);
                    break;
                }
                _ => {}
            }
        }
    }
    let end = end?;
    for (off, t) in toks.iter().enumerate().take(end).skip(in_idx + 1) {
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_field = off >= 1 && toks[off - 1].is_punct(".");
        if !is_field && syms.shadowed(&t.text, off) {
            continue;
        }
        if is_hash_type(&t.text) || syms.vars.contains(&t.text) {
            return Some((t.text.clone(), off));
        }
    }
    None
}

/// Parse every `detlint:` comment into an [`Allow`], computing the
/// lines it suppresses: its own line plus the next code line (skipping
/// further comments and `#[..]` attribute lines).
fn parse_allows(comments: &[Comment], toks: &[Token]) -> Vec<Allow> {
    // first token index per line, for target-line resolution
    let mut line_first_tok: Vec<(u32, usize)> = Vec::new();
    let mut last_line = 0u32;
    for (i, t) in toks.iter().enumerate() {
        if t.line != last_line {
            line_first_tok.push((t.line, i));
            last_line = t.line;
        }
    }
    let target_line = |after: u32| -> Option<u32> {
        let mut idx = line_first_tok.partition_point(|&(l, _)| l <= after);
        while let Some(&(line, first)) = line_first_tok.get(idx) {
            let first_tok = &toks[first];
            if first_tok.is_punct("#") {
                idx += 1; // attribute line between the allow and the code
                continue;
            }
            return Some(line);
        }
        None
    };

    let mut out = Vec::new();
    for c in comments {
        let Some((_, rest)) = c.text.split_once("detlint:") else {
            continue;
        };
        if !rest.trim_start().starts_with("allow") {
            continue;
        }
        let mut allow = Allow {
            rules: Vec::new(),
            lines: BTreeSet::new(),
            problem: None,
            at_line: c.line,
        };
        let body = rest.trim_start();
        let parsed = body
            .strip_prefix("allow")
            .and_then(|b| b.trim_start().strip_prefix('('))
            .and_then(|b| b.split_once(')'));
        match parsed {
            None => allow.problem = Some("expected `allow(<rule>, ..)`".to_string()),
            Some((rules_str, justification)) => {
                for r in rules_str.split(',') {
                    let r = r.trim();
                    if r.is_empty() {
                        continue;
                    }
                    if RULES.contains(&r) && r != "bad-allow" {
                        allow.rules.push(r.to_string());
                    } else {
                        allow.problem = Some(format!("unknown rule `{r}`"));
                    }
                }
                if allow.rules.is_empty() && allow.problem.is_none() {
                    allow.problem = Some("no rule named".to_string());
                }
                let just = justification
                    .trim_start_matches(|ch: char| {
                        ch.is_whitespace() || matches!(ch, '—' | '–' | '-' | ':' | ',' | '.')
                    })
                    .trim();
                if just.is_empty() && allow.problem.is_none() {
                    allow.problem = Some("missing justification after the rule list".to_string());
                }
            }
        }
        allow.lines.insert(c.line);
        allow.lines.insert(c.end_line);
        if let Some(t) = target_line(c.end_line) {
            allow.lines.insert(t);
        }
        out.push(allow);
    }
    out
}

// ---------------------------------------------------------------------
// Workspace walking & reporting
// ---------------------------------------------------------------------

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    "fixtures",
    "node_modules",
    ".cargo",
];

/// All `.rs` files under `root`, sorted, excluding vendored code, build
/// output and lint fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scan `files` (as found on disk), scoping rules by each file's path
/// relative to `root`. `rule_filter` of `None` runs every rule.
pub fn scan_files(
    root: &Path,
    files: &[PathBuf],
    rule_filter: Option<&[String]>,
) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let display = f.to_string_lossy().replace('\\', "/");
        let mut file_findings = scan_source(&display, &rel, &src);
        if let Some(filter) = rule_filter {
            file_findings.retain(|f| filter.iter().any(|r| r == f.rule));
        }
        findings.extend(file_findings);
    }
    Ok(findings)
}

/// Render findings rustc-style.
pub fn render_text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "error[{}]: {}", f.rule, f.message);
        let _ = writeln!(out, "  --> {}:{}:{}", f.path, f.line, f.col);
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "   | {}", f.snippet);
        }
        let _ = writeln!(
            out,
            "   = help: fix it, or annotate `// detlint: allow({}) — <why it is sound>`",
            f.rule
        );
        out.push('\n');
    }
    if findings.is_empty() {
        let _ = writeln!(
            out,
            "detlint: clean — {} files scanned, {} rules",
            files_scanned,
            RULES.len()
        );
    } else {
        let _ = writeln!(
            out,
            "detlint: {} finding(s) in {} files scanned",
            findings.len(),
            files_scanned
        );
    }
    out
}

/// Render findings as the stable `detlint/v1` JSON envelope.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"schema\":\"detlint/v1\",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message),
            json_escape(&f.snippet)
        );
    }
    let _ = write!(out, "],\"count\":{}}}", findings.len());
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_at(vpath: &str, src: &str) -> Vec<Finding> {
        scan_source(vpath, vpath, src)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_hash_iteration_in_critical_crate_only() {
        let src = "fn f(m: &HashMap<u32, f64>) { for (k, v) in m.iter() { use_it(k, v); } }";
        let hits = scan_at("crates/netsim/src/x.rs", src);
        assert_eq!(rules_of(&hits), ["unordered-iter"]);
        assert!(scan_at("crates/freertr/src/x.rs", src).is_empty());
    }

    #[test]
    fn for_loop_over_bare_hash_path_flagged() {
        let src = "struct S { flows: HashMap<u64, Flow> }\n\
                   impl S { fn g(&self) { for f in &self.flows { h(f); } } }";
        let hits = scan_at("crates/framework/src/x.rs", src);
        assert_eq!(rules_of(&hits), ["unordered-iter"]);
    }

    #[test]
    fn non_hash_param_shadows_hash_field() {
        // `names` the slice parameter must not resolve to `names` the
        // HashMap field — but a field access still must.
        let src = "struct T { names: HashMap<String, u32> }\n\
                   impl T {\n\
                   fn by_names(&self, names: &[&str]) -> Vec<u32> {\n\
                       names.iter().map(|n| self.node(n)).collect()\n\
                   }\n\
                   fn all(&self) -> Vec<u32> { self.names.values().copied().collect() }\n\
                   }";
        let hits = scan_at("crates/netsim/src/x.rs", src);
        assert_eq!(rules_of(&hits), ["unordered-iter"], "{hits:?}");
        assert_eq!(hits[0].line, 6, "only the field access is unordered");
    }

    #[test]
    fn btree_iteration_is_clean() {
        let src = "fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum::<f64>() }";
        assert!(scan_at("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn lock_adapter_is_transparent() {
        let src = "struct T { inner: RwLock<HashMap<K, V>> }\n\
                   fn f(t: &T) { for k in t.inner.read().keys() { g(k); } }";
        let hits = scan_at("crates/framework/src/x.rs", src);
        assert_eq!(rules_of(&hits), ["unordered-iter"]);
    }

    #[test]
    fn fn_return_type_resolves_receiver() {
        let src = "fn usage() -> HashMap<u32, f64> { todo_impl() }\n\
                   fn f() { for (k, v) in usage().into_iter() { g(k, v); } }";
        let hits = scan_at("crates/netsim/src/x.rs", src);
        assert_eq!(rules_of(&hits), ["unordered-iter"]);
    }

    #[test]
    fn float_fold_through_adapters_flagged() {
        let src = "fn f(m: &HashMap<u32, f64>) -> f64 { m.values().map(|x| x * 2.0).sum::<f64>() }";
        let hits = scan_at("crates/netsim/src/x.rs", src);
        // .values() itself is unordered-iter; the sum is the fold rule
        assert!(rules_of(&hits).contains(&"float-unordered-fold"));
    }

    #[test]
    fn vec_sum_is_clean() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        assert!(scan_at("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_everywhere_but_bench_and_examples() {
        let src = "fn f() -> u128 { Instant::now().elapsed().as_nanos() }";
        assert_eq!(
            rules_of(&scan_at("crates/netsim/src/x.rs", src)),
            ["wall-clock"]
        );
        assert!(scan_at("crates/bench/src/x.rs", src).is_empty());
        assert!(scan_at("examples/demo.rs", src).is_empty());
    }

    #[test]
    fn unseeded_rng_skips_tests() {
        let src = "fn f() { let mut rng = thread_rng(); }";
        assert_eq!(
            rules_of(&scan_at("crates/netsim/src/x.rs", src)),
            ["unseeded-rng"]
        );
        let test_src = "#[cfg(test)]\nmod tests { fn f() { let mut rng = thread_rng(); } }";
        assert!(scan_at("crates/netsim/src/x.rs", test_src).is_empty());
        assert!(scan_at("crates/netsim/tests/x.rs", src).is_empty());
    }

    #[test]
    fn bare_panic_only_in_hot_path_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(
            rules_of(&scan_at("crates/netsim/src/sim.rs", src)),
            ["bare-panic"]
        );
        assert!(scan_at("crates/netsim/src/topo.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert!(scan_at("crates/netsim/src/sim.rs", test_src).is_empty());
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "fn f() -> u128 {\n\
                   // detlint: allow(wall-clock) — measured quantity, reported only.\n\
                   Instant::now().elapsed().as_nanos()\n\
                   }";
        assert!(scan_at("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_skips_attribute_lines() {
        let src = "fn f() -> u128 {\n\
                   // detlint: allow(wall-clock) — measured, reported only.\n\
                   #[allow(clippy::disallowed_methods)]\n\
                   let t = Instant::now();\n\
                   t.elapsed().as_nanos()\n\
                   }";
        assert!(scan_at("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_bad_allow() {
        let src = "// detlint: allow(wall-clock)\n\
                   fn f() -> u128 { Instant::now().elapsed().as_nanos() }";
        let hits = scan_at("crates/netsim/src/x.rs", src);
        // the allow is void: the wall-clock finding stands AND bad-allow fires
        let rules = rules_of(&hits);
        assert!(rules.contains(&"bad-allow"), "{hits:?}");
        assert!(rules.contains(&"wall-clock"), "{hits:?}");
    }

    #[test]
    fn allow_with_unknown_rule_is_bad_allow() {
        let src = "// detlint: allow(wall-time) — close but wrong name\nfn f() {}";
        let hits = scan_at("crates/netsim/src/x.rs", src);
        assert_eq!(rules_of(&hits), ["bad-allow"]);
    }

    #[test]
    fn multi_rule_allow() {
        let src = "fn f(m: &HashMap<u32, f64>) -> f64 {\n\
                   // detlint: allow(unordered-iter, float-unordered-fold) — summed into a\n\
                   // display-only counter; order cannot matter for an integer count.\n\
                   m.values().sum::<f64>()\n\
                   }";
        assert!(scan_at("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn fixture_path_directive_rescopes() {
        let src = "// detlint-fixture-path: crates/netsim/src/x.rs\n\
                   fn f(m: &HashMap<u32, u32>) { for k in m.keys() { g(k); } }";
        let hits = scan_source(
            "tests/fixtures/whatever.rs",
            "tests/fixtures/whatever.rs",
            src,
        );
        assert_eq!(rules_of(&hits), ["unordered-iter"]);
    }

    #[test]
    fn json_envelope_shape() {
        let f = Finding {
            rule: "wall-clock",
            path: "a/b.rs".into(),
            line: 3,
            col: 7,
            message: "msg with \"quotes\"".into(),
            snippet: "let t = x;".into(),
        };
        let j = render_json(&[f]);
        assert!(j.starts_with("{\"schema\":\"detlint/v1\""));
        for key in [
            "\"rule\":",
            "\"path\":",
            "\"line\":",
            "\"col\":",
            "\"message\":",
            "\"snippet\":",
            "\"count\":1",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
