//! detlint CLI.
//!
//! ```text
//! cargo run -p detlint --release -- --workspace
//! cargo run -p detlint --release -- --workspace --rule bad-allow
//! cargo run -p detlint --release -- --format json crates/netsim/src/sim.rs
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
detlint — workspace determinism & robustness lints

USAGE:
    detlint [OPTIONS] [--workspace | PATH...]

OPTIONS:
    --workspace        scan every .rs file under the root (skips vendor/,
                       target/, fixtures/)
    --root <DIR>       workspace root for rule scoping [default: .]
    --rule <NAME>      run only this rule (repeatable)
    --format <FMT>     text | json [default: text]
    --list-rules       print rule names and exit
    -h, --help         print this help
";

struct Opts {
    workspace: bool,
    root: PathBuf,
    rules: Vec<String>,
    json: bool,
    list: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        workspace: false,
        root: PathBuf::from("."),
        rules: Vec::new(),
        json: false,
        list: false,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => opts.workspace = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--rule" => {
                let r = args.next().ok_or("--rule needs a rule name")?;
                if !detlint::RULES.contains(&r.as_str()) {
                    return Err(format!("unknown rule `{r}` (see --list-rules)"));
                }
                opts.rules.push(r);
            }
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format must be `text` or `json`, got {other:?}")),
            },
            "--list-rules" => opts.list = true,
            "-h" | "--help" => return Err(String::new()),
            p if !p.starts_with('-') => opts.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if !opts.list && !opts.workspace && opts.paths.is_empty() {
        return Err("nothing to scan: pass --workspace or at least one path".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        for r in detlint::RULES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }

    let files = if opts.workspace {
        match detlint::workspace_files(&opts.root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: walking {}: {e}", opts.root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        opts.paths.clone()
    };

    let filter = if opts.rules.is_empty() {
        None
    } else {
        Some(opts.rules.as_slice())
    };
    let findings = match detlint::scan_files(&opts.root, &files, filter) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", detlint::render_json(&findings));
    } else {
        print!("{}", detlint::render_text(&findings, files.len()));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
