//! A minimal hand-rolled Rust lexer.
//!
//! detlint deliberately does not depend on `syn` (the container builds
//! offline); the rules it enforces are lexical-and-local enough that a
//! faithful token stream plus a little context is sufficient. The lexer
//! must get the *hard* parts of Rust's surface syntax right, because a
//! mis-lexed string or comment shifts every downstream judgement:
//!
//! * nested block comments (`/* a /* b */ c */`),
//! * raw strings with arbitrary hash fences (`r#"…"#`, `br##"…"##`),
//! * the `'a` lifetime vs `'a'` char-literal ambiguity,
//! * `::` as a single path-separator token (so `Instant::now` is three
//!   tokens, not four).
//!
//! Comments are not tokens; they are collected separately so the rule
//! engine can parse suppression annotations out of them.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `iter`).
    Ident,
    /// Punctuation; `::` is one token, everything else one char.
    Punct,
    /// String or byte/raw-string literal (contents not preserved
    /// verbatim — rules never look inside strings).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal, including suffix (`1.0f64`, `0x1F`).
    Num,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One lexed token with its source position (1-based line/col).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment (line or block) with the line it *ends* on — allow
/// annotations attach to the code that follows, so the end line is the
/// anchor. `text` is the comment body without the delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (same as `line` for `//` comments).
    pub end_line: u32,
}

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    toks: Vec<Token>,
    comments: Vec<Comment>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            toks: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(line),
                b'"' => self.string_literal(line, col),
                b'\'' => self.quote(line, col),
                b'0'..=b'9' => self.number(line, col),
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    self.ident_or_prefixed_literal(line, col)
                }
                b':' if self.peek_at(1) == Some(b':') => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "::", line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, &(c as char).to_string(), line, col);
                }
            }
        }
        (self.toks, self.comments)
    }

    fn push(&mut self, kind: TokKind, text: &str, line: u32, col: u32) {
        self.toks.push(Token {
            kind,
            text: text.to_string(),
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.comments.push(Comment {
            text,
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated; tolerate
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let end_line = self.line;
        // consume the closing */
        self.bump();
        self.bump();
        self.comments.push(Comment {
            text,
            line,
            end_line,
        });
    }

    /// Ordinary `"…"` string with escapes.
    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, "\"…\"", line, col);
    }

    /// Raw string after a prefix ident (`r`, `br`, `cr`): `#`* then `"`,
    /// terminated by `"` followed by the same number of `#`.
    fn raw_string(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some(b'#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
                None => break, // unterminated; tolerate
            }
        }
        self.push(TokKind::Str, "r\"…\"", line, col);
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        match self.peek() {
            Some(b'\\') => {
                // escaped char literal: '\n', '\u{1F600}', '\''
                self.bump();
                while let Some(c) = self.bump() {
                    if c == b'\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, "'…'", line, col);
            }
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 => {
                // Run of ident chars. 'x' (run of 1 then quote) is a
                // char; anything else ('static, 'a followed by non-')
                // is a lifetime.
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let run = self.pos - start;
                if self.peek() == Some(b'\'') && (1..=4).contains(&run) {
                    // could still be a lifetime followed by a char
                    // literal in pathological code; chars are 1 scalar,
                    // so accept runs that are one UTF-8 scalar long.
                    let text = &self.src[start..self.pos];
                    let scalars = String::from_utf8_lossy(text).chars().count();
                    if scalars == 1 {
                        self.bump(); // closing quote
                        self.push(TokKind::Char, "'…'", line, col);
                        return;
                    }
                }
                let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push(TokKind::Lifetime, &format!("'{name}"), line, col);
            }
            _ => {
                // stray quote ('', or ' at EOF) — treat as punct
                self.push(TokKind::Punct, "'", line, col);
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else if c == b'.' {
                // `1..10` is two tokens after the digits; `1.5` is one.
                match self.peek_at(1) {
                    Some(d) if d.is_ascii_digit() => {
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Num, &text, line, col);
    }

    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // String/char-literal prefixes: r"", r#""#, b"", br"", c"", b''
        let next = self.peek();
        match (text.as_str(), next) {
            ("r" | "br" | "cr", Some(b'"') | Some(b'#')) => {
                self.raw_string(line, col);
                return;
            }
            ("b" | "c", Some(b'"')) => {
                self.string_literal(line, col);
                return;
            }
            ("b", Some(b'\'')) => {
                self.quote(line, col);
                return;
            }
            _ => {}
        }
        self.push(TokKind::Ident, &text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn path_sep_is_one_token() {
        let (toks, _) = lex("Instant::now()");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["Instant", "::", "now", "(", ")"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let u = '_'; }");
        let lifes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifes, ["'a", "'a"]);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn static_lifetime_and_loop_label() {
        let (toks, _) = lex("'outer: for x in 0..3 { break 'outer; } &'static str");
        let lifes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifes, ["'outer", "'outer", "'static"]);
    }

    #[test]
    fn nested_block_comments_and_strings_hide_idents() {
        let src = r##"
            /* HashMap /* SystemTime::now() */ still comment */
            let s = "Instant::now() in a string";
            let r = r#"thread_rng() in a raw string"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
    }

    #[test]
    fn comments_collected_with_lines() {
        let src = "let a = 1; // detlint: allow(wall-clock) — reason\nlet b = 2;";
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 1);
        assert!(comments[0].text.contains("detlint: allow"));
    }

    #[test]
    fn numbers_and_ranges() {
        let (toks, _) = lex("for i in 0..n { x += 1.5f64; y = 0x1F; }");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "1.5f64", "0x1F"]);
    }
}
