//! End-to-end CLI tests: exit codes and the JSON envelope, run against
//! the real binary (the same artifact CI gates on).

use std::path::{Path, PathBuf};
use std::process::Command;

fn detlint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(args)
        .output()
        .expect("spawn detlint")
}

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn exit_one_on_every_flagged_fixture_and_zero_on_clean() {
    let mut dirs: Vec<_> = std::fs::read_dir(fixtures())
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    dirs.sort();
    assert!(!dirs.is_empty());
    for dir in dirs {
        for f in std::fs::read_dir(&dir).unwrap() {
            let f = f.unwrap().path();
            let name = f.file_name().unwrap().to_string_lossy().into_owned();
            let out = detlint(&[f.to_str().unwrap()]);
            let code = out.status.code();
            if name.starts_with("flagged") {
                assert_eq!(code, Some(1), "{name}: {out:?}");
            } else {
                assert_eq!(code, Some(0), "{name}: {out:?}");
            }
        }
    }
}

#[test]
fn rule_filter_isolates_one_rule() {
    let flagged = fixtures().join("bad-allow/flagged.rs");
    // wall-clock findings exist in that fixture, but filtering to
    // bad-allow must still exit 1 (bad allows present) ...
    let out = detlint(&["--rule", "bad-allow", flagged.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    // ... while filtering a clean rule exits 0.
    let out = detlint(&["--rule", "unseeded-rng", flagged.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn json_envelope_is_schema_stable() {
    let flagged = fixtures().join("bare-panic/flagged.rs");
    let out = detlint(&["--format", "json", flagged.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let body = String::from_utf8(out.stdout).unwrap();
    let body = body.trim();
    // Envelope shape consumers may rely on:
    assert!(
        body.starts_with("{\"schema\":\"detlint/v1\",\"findings\":["),
        "{body}"
    );
    assert!(body.ends_with('}'), "{body}");
    for key in [
        "\"rule\":\"bare-panic\"",
        "\"path\":",
        "\"line\":",
        "\"col\":",
        "\"message\":",
        "\"snippet\":",
        "\"count\":",
    ] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
    // Every quote inside string values must be escaped — a cheap
    // well-formedness proxy without a JSON parser: the envelope must
    // not contain a bare `"` preceded by an unescaped backslash run of
    // odd length followed by a non-structural char. Instead of that
    // fragile check, assert balanced braces/brackets.
    let opens = body.matches('{').count();
    let closes = body.matches('}').count();
    assert_eq!(opens, closes, "{body}");
}

#[test]
fn list_rules_matches_library() {
    let out = detlint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let body = String::from_utf8(out.stdout).unwrap();
    let listed: Vec<&str> = body.lines().collect();
    assert_eq!(listed, detlint::RULES);
}

#[test]
fn unknown_rule_is_a_usage_error() {
    let out = detlint(&["--rule", "no-such-rule", "--workspace"]);
    assert_eq!(out.status.code(), Some(2));
}
