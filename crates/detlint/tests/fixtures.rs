//! The fixture corpus: every rule has at least one `flagged*.rs` file
//! that must produce a finding of that rule, and at least one
//! `clean*.rs` file that must produce no findings at all. Fixtures
//! carry a `detlint-fixture-path:` directive so rule scoping behaves
//! as if the snippet lived in the real tree; they are never compiled.

use std::collections::BTreeMap;
use std::path::Path;

fn scan_fixture(path: &Path) -> Vec<detlint::Finding> {
    let src = std::fs::read_to_string(path).unwrap();
    let p = path.to_string_lossy().replace('\\', "/");
    detlint::scan_source(&p, &p, &src)
}

#[test]
fn every_rule_has_a_flagged_and_a_clean_fixture() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut flagged_per_rule: BTreeMap<String, usize> = BTreeMap::new();
    let mut clean_per_rule: BTreeMap<String, usize> = BTreeMap::new();

    let mut dirs: Vec<_> = std::fs::read_dir(&root)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    dirs.sort();
    for dir in dirs {
        let rule = dir.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            detlint::RULES.contains(&rule.as_str()),
            "fixture dir `{rule}` does not name a rule"
        );
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        for f in files {
            let name = f.file_name().unwrap().to_string_lossy().into_owned();
            let findings = scan_fixture(&f);
            if name.starts_with("flagged") {
                let hits = findings.iter().filter(|x| x.rule == rule).count();
                assert!(
                    hits >= 1,
                    "{rule}/{name}: expected at least one `{rule}` finding, got {findings:#?}"
                );
                *flagged_per_rule.entry(rule.clone()).or_default() += 1;
            } else if name.starts_with("clean") {
                assert!(
                    findings.is_empty(),
                    "{rule}/{name}: expected a clean scan, got {findings:#?}"
                );
                *clean_per_rule.entry(rule.clone()).or_default() += 1;
            } else {
                panic!("{rule}/{name}: fixture names must start with `flagged` or `clean`");
            }
        }
    }

    for rule in detlint::RULES {
        assert!(
            flagged_per_rule.get(*rule).copied().unwrap_or(0) >= 1,
            "rule `{rule}` has no flagged fixture"
        );
        assert!(
            clean_per_rule.get(*rule).copied().unwrap_or(0) >= 1,
            "rule `{rule}` has no clean fixture"
        );
    }
}

#[test]
fn reintroducing_the_hashmap_order_fold_bug_is_caught() {
    // The regression that motivated this crate: summing per-link usage
    // straight out of a HashMap. Both the iteration and the fold rule
    // must fire on it.
    let src = "use std::collections::HashMap;\n\
               fn rfr_score(usage: &HashMap<(u32, u32), f64>) -> f64 {\n\
                   usage.values().sum::<f64>()\n\
               }\n";
    let findings = detlint::scan_source(
        "crates/framework/src/sdn.rs",
        "crates/framework/src/sdn.rs",
        src,
    );
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"unordered-iter"), "{findings:#?}");
    assert!(rules.contains(&"float-unordered-fold"), "{findings:#?}");
}
