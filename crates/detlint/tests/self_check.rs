//! The lint must hold on the workspace that ships it: scanning the
//! real tree from the repo root produces zero findings. This is the
//! same invariant CI gates on, kept here so `cargo test` alone catches
//! a regression before the CI step does.

use std::path::Path;

#[test]
fn workspace_scan_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = detlint::workspace_files(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "suspiciously few files ({}) — walker broke?",
        files.len()
    );
    // The walker must have skipped vendored code and fixtures.
    for f in &files {
        let p = f.to_string_lossy().replace('\\', "/");
        assert!(!p.contains("/vendor/"), "{p}");
        assert!(!p.contains("/fixtures/"), "{p}");
        assert!(!p.contains("/target/"), "{p}");
    }
    let findings = detlint::scan_files(&root, &files, None).expect("scan");
    assert!(
        findings.is_empty(),
        "the workspace must be detlint-clean:\n{}",
        detlint::render_text(&findings, files.len())
    );
}
