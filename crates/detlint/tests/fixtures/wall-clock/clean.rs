// detlint-fixture-path: crates/framework/src/fixture.rs
// Negative corpus: simulated time from the event clock, plus a
// justified measurement-only read.

fn event_clock(sim: &netsim::Sim) -> u64 {
    sim.now_ms()
}

fn elapsed_sim_time(start_ms: u64, now_ms: u64) -> u64 {
    now_ms.saturating_sub(start_ms)
}

fn reported_fit_time() -> u128 {
    // detlint: allow(wall-clock) — fit-time is a reported measurement
    // printed in the run summary, never fed back into a decision.
    std::time::Instant::now().elapsed().as_nanos()
}
