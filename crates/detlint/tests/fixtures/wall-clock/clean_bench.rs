// detlint-fixture-path: crates/bench/src/fixture.rs
// Negative corpus: crates/bench is the one place wall-clock timing is
// the whole point — exempt without annotation.
use std::time::Instant;

fn bench_once(f: impl FnOnce()) -> u128 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos()
}
