// detlint-fixture-path: crates/framework/src/fixture.rs
// Positive corpus: wall-clock reads outside bench/examples.
use std::time::{Instant, SystemTime};

fn measure() -> u128 {
    Instant::now().elapsed().as_nanos()
}

fn stamp() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn chrono_style() -> i64 {
    Utc::now().timestamp_millis()
}
