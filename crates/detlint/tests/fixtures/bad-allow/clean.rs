// detlint-fixture-path: crates/netsim/src/fixture.rs
// Negative corpus: well-formed suppressions — named rule(s) plus a
// substantive justification.
use std::collections::HashMap;

fn single_rule(m: &HashMap<u32, u32>) -> usize {
    // detlint: allow(unordered-iter) — counting elements; an integer
    // count is order-independent by construction.
    m.keys().count()
}

fn multi_rule(m: &HashMap<u32, f64>) -> f64 {
    // detlint: allow(unordered-iter, float-unordered-fold) — the sum
    // feeds a log line rounded to whole Mbps; sub-ULP order effects
    // cannot survive the rounding.
    m.values().sum::<f64>()
}
