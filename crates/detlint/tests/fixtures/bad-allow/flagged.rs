// detlint-fixture-path: crates/netsim/src/fixture.rs
// Positive corpus: suppressions that must be rejected — the escape
// hatch requires a justification and a real rule name.

fn missing_justification() -> u128 {
    // detlint: allow(wall-clock)
    std::time::Instant::now().elapsed().as_nanos()
}

fn unknown_rule_name(x: Option<u32>) -> u32 {
    // detlint: allow(wall-time) — close, but not a rule name
    x.unwrap_or(0)
}

fn empty_rule_list() -> u64 {
    // detlint: allow() — no rule named at all
    0
}

fn dashes_are_not_a_justification() -> u64 {
    // detlint: allow(unordered-iter) — ——
    0
}
