// detlint-fixture-path: crates/netsim/src/fixture.rs
// Negative corpus: ordered collections, lookup-only hash maps, and a
// justified suppression — none of this may be flagged.
use std::collections::{BTreeMap, BTreeSet, HashMap};

fn btree_iteration(m: &BTreeMap<u32, f64>) -> usize {
    m.iter().count()
}

fn btreeset_for_loop(s: &BTreeSet<u32>) {
    for x in s {
        emit_one(x);
    }
}

fn lookup_only(m: &HashMap<String, u32>, key: &str) -> Option<u32> {
    m.get(key).copied()
}

fn vec_iteration(v: &[u32]) -> usize {
    v.iter().filter(|x| **x > 0).count()
}

fn slice_param_shadows_field(names: &[&str]) -> usize {
    // `names` here is a slice even if a hash field elsewhere shares
    // the name; parameter shadowing must win.
    names.iter().count()
}

fn justified(m: &HashMap<u32, u32>) -> usize {
    // detlint: allow(unordered-iter) — counting elements; an integer
    // count is order-independent by construction.
    m.keys().count()
}
