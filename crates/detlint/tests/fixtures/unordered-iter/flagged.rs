// detlint-fixture-path: crates/netsim/src/fixture.rs
// Positive corpus: every function below iterates an unordered hash
// collection in a determinism-critical crate and must be flagged.
// Fixtures are never compiled; they only need to lex like real code.
use std::collections::{HashMap, HashSet};
use std::sync::RwLock;

struct Telemetry {
    series: HashMap<String, Vec<f64>>,
}

fn direct_iter(m: &HashMap<u32, f64>) {
    for (k, v) in m.iter() {
        emit(k, v);
    }
}

fn bare_for_over_set(set: &HashSet<u32>) {
    for x in set {
        emit_one(x);
    }
}

fn keys_through_lock(guarded: &RwLock<HashMap<String, u32>>) {
    for key in guarded.read().unwrap().keys() {
        emit_key(key);
    }
}

fn inferred_let_binding() {
    let mut scratch = HashMap::new();
    scratch.insert(1u32, 2u32);
    for (a, b) in scratch.drain() {
        emit(a, b);
    }
}

impl Telemetry {
    fn field_values(&self) -> usize {
        self.series.values().count()
    }
}

fn from_return_type() {
    for (k, v) in snapshot().into_iter() {
        emit(k, v);
    }
}

fn snapshot() -> HashMap<u32, f64> {
    unrelated()
}
