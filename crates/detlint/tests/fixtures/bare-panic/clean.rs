// detlint-fixture-path: crates/netsim/src/sim.rs
// Negative corpus: errors propagate; the one justified panic carries
// its invariant; tests may assert freely.

fn pop_due_event(sim: &mut Sim) -> Result<Event, NetsimError> {
    sim.events.pop().ok_or(NetsimError::NoEventsDue)
}

fn lookup_link(sim: &Sim, id: LinkId) -> Result<&Link, NetsimError> {
    sim.topo.link_checked(id).ok_or(NetsimError::UnknownLink(id))
}

fn schedule_validated(sim: &mut Sim, ev: Event) {
    // detlint: allow(bare-panic) — schedule() validated the event's
    // adjacency above; a panic here means schedule() broke its own
    // contract, which must be loud.
    sim.queue.push_validated(ev).expect("validated event");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
