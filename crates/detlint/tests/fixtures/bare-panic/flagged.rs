// detlint-fixture-path: crates/netsim/src/sim.rs
// Positive corpus: panics on the simulator hot path. A panic here
// tears down a scenario run mid-flight instead of surfacing an error
// the scorecard can record.

fn pop_due_event(sim: &mut Sim) -> Event {
    sim.events.pop().unwrap()
}

fn lookup_link(sim: &Sim, id: LinkId) -> &Link {
    sim.topo.link_checked(id).expect("link must exist")
}

fn reject(kind: u8) {
    match kind {
        0 => panic!("bad kind"),
        1 => unreachable!(),
        2 => todo!("later"),
        _ => unimplemented!(),
    }
}
