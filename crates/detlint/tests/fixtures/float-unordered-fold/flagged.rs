// detlint-fixture-path: crates/framework/src/fixture.rs
// Positive corpus: the exact bug shape that once broke bit-replay —
// a floating-point reduction whose term order depends on HashMap
// iteration order. ULP-level drift in the sum flipped an RFR routing
// decision between two runs of the same scenario. The unordered-iter
// allows isolate the fold rule; that iteration has its own corpus.
use std::collections::HashMap;

fn total_usage(link_usage: &HashMap<(u32, u32), f64>) -> f64 {
    // detlint: allow(unordered-iter) — fixture isolates the fold rule.
    link_usage.values().sum::<f64>()
}

fn weighted_cost(m: &HashMap<u32, f64>) -> f64 {
    // detlint: allow(unordered-iter) — fixture isolates the fold rule.
    m.values().map(|c| c * 0.5).fold(0.0, |acc, c| acc + c)
}
