// detlint-fixture-path: crates/framework/src/fixture.rs
// Negative corpus: reductions over ordered sequences are fine — the
// term order, and therefore the rounding, is reproducible.
use std::collections::BTreeMap;

fn ordered_total(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>()
}

fn btree_total(m: &BTreeMap<u32, f64>) -> f64 {
    m.values().sum::<f64>()
}

fn vec_fold(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |acc, x| acc + x)
}

fn integer_sum_is_order_free(counts: &[u64]) -> u64 {
    counts.iter().sum::<u64>()
}
