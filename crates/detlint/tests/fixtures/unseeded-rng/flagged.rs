// detlint-fixture-path: crates/scenarios/src/fixture.rs
// Positive corpus: ambient entropy in non-test code.

fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}

fn seed_from_os() -> StdRng {
    StdRng::from_entropy()
}

fn os_rng_direct() -> u64 {
    let mut r = OsRng;
    r.next_u64()
}

fn ambient_random() -> u8 {
    rand::random()
}
