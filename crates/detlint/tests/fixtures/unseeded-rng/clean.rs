// detlint-fixture-path: crates/scenarios/src/fixture.rs
// Negative corpus: all randomness flows from an explicit u64 seed;
// tests may use ambient entropy for exploration.
use rand::rngs::StdRng;
use rand::SeedableRng;

fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn derived(scenario_seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(scenario_seed ^ stream.rotate_left(17))
}

#[cfg(test)]
mod tests {
    #[test]
    fn exploration_may_use_ambient_entropy() {
        let mut rng = rand::thread_rng();
        let _ = rng.gen_range(0..10);
    }
}
