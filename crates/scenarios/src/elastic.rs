//! Elastic background *flows*: unlike [`crate::traffic`], which folds
//! background load into per-link capacity series, this module compiles
//! a population of real simulator flows — long-lived greedy elephants
//! plus a steady churn of short demand-limited mice — that compete in
//! the max-min water-fill alongside the managed flows. This is the
//! workload that exercises the event-driven core at scale: the
//! `scale-1k` catalog scenario schedules ~100k such flows on a
//! 1000-node Waxman WAN.
//!
//! Everything is compiled up front into plain `netsim::Event`s from the
//! scenario seed, so a run replays bit-identically: same seed, same
//! arrival instants, same paths, same departures.

use netsim::{Event, FlowId, FlowSpec, NodeIdx, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Elastic flow ids start here so they can never collide with the
/// framework's managed-flow ids (small integers).
pub const ELASTIC_ID_BASE: u64 = 1 << 40;

/// A population of background flows, compiled per scenario seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticSpec {
    /// Long-lived greedy flows (demand `None`), started inside the
    /// first two epochs and never stopped.
    pub elephants: usize,
    /// Short demand-limited flows arriving per epoch, spread uniformly
    /// over the epoch's milliseconds.
    pub mice_per_epoch: usize,
    /// Each mouse's declared demand (Mbps).
    pub mouse_mbps: f64,
    /// Mouse lifetime in epochs (departure is scheduled at compile
    /// time).
    pub mouse_lifetime_epochs: u64,
    /// Distinct (src, dst) routes precomputed at compile time that the
    /// flow population draws from. More routes spread the load (and the
    /// saturated-link components the incremental water-fill re-solves)
    /// across the graph; shortest paths are computed once per route, so
    /// this also bounds compile cost for 100k flows.
    pub routes: usize,
    /// Optional mid-life demand ramp: when set, one mouse in four
    /// re-declares its demand as `mouse_mbps * ramp` halfway through
    /// its lifetime — a scripted [`Event::SetFlowDemand`] compiled up
    /// front like every other event, exercising the time-varying-demand
    /// path of the incremental water-fill. `None` keeps the schedule
    /// byte-identical to the pre-ramp compiler.
    pub mouse_ramp: Option<f64>,
}

/// Compiles the spec into a deterministic event schedule over
/// `horizon_epochs` (1 epoch = 1000 ms). Returns start/stop events in
/// schedule order; flow ids count up from [`ELASTIC_ID_BASE`].
///
/// Paths are shortest-by-delay at compile time (the topology is
/// healthy at epoch 0; later scripted failures kill crossing flows in
/// the simulator, which is the point). Endpoint pairs with no path or
/// identical src/dst are skipped deterministically.
pub fn compile_elastic(
    topo: &Topology,
    spec: &ElasticSpec,
    horizon_epochs: u64,
    seed: u64,
) -> Vec<(u64, Event)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xe1a5_71c0_f10b_a5e5);
    let n = topo.node_count();
    // Precompute the route table: `routes` distinct (src, dst) shortest
    // paths drawn uniformly over the node set (duplicate or pathless
    // draws are skipped deterministically, bounded attempts).
    let mut seen: BTreeMap<(NodeIdx, NodeIdx), ()> = BTreeMap::new();
    let mut routes: Vec<(NodeIdx, NodeIdx, Vec<NodeIdx>)> = Vec::new();
    let max_attempts = spec.routes.max(1) * 8;
    for _ in 0..max_attempts {
        if routes.len() >= spec.routes.max(1) {
            break;
        }
        let src = NodeIdx(rng.gen_range(0..n) as u32);
        let dst = NodeIdx(rng.gen_range(0..n) as u32);
        if src == dst || seen.contains_key(&(src, dst)) {
            continue;
        }
        seen.insert((src, dst), ());
        if let Some(path) = topo.shortest_path_by_delay(src, dst) {
            routes.push((src, dst, path));
        }
    }
    let mut next_id = ELASTIC_ID_BASE;
    let mut events = Vec::new();
    if routes.is_empty() {
        return events;
    }

    for _ in 0..spec.elephants {
        let at = rng.gen_range(0..2_000.min(horizon_epochs.max(1) * 1000));
        let (src, dst, path) = routes[rng.gen_range(0..routes.len())].clone();
        next_id += 1;
        events.push((
            at,
            Event::StartFlow {
                id: FlowId(next_id),
                spec: FlowSpec {
                    src,
                    dst,
                    demand_mbps: None,
                    tos: 0,
                    label: String::new(),
                },
                path,
            },
        ));
    }

    for epoch in 0..horizon_epochs {
        for _ in 0..spec.mice_per_epoch {
            let at = epoch * 1000 + rng.gen_range(0..1000u64);
            let (src, dst, path) = routes[rng.gen_range(0..routes.len())].clone();
            next_id += 1;
            let id = FlowId(next_id);
            events.push((
                at,
                Event::StartFlow {
                    id,
                    spec: FlowSpec {
                        src,
                        dst,
                        demand_mbps: Some(spec.mouse_mbps),
                        tos: 0,
                        label: String::new(),
                    },
                    path,
                },
            ));
            let lifetime_ms = spec.mouse_lifetime_epochs.max(1) * 1000;
            events.push((at + lifetime_ms, Event::StopFlow(id)));
            // Mid-life ramp: drawn only when the spec asks for it, so a
            // `None` spec compiles the exact pre-ramp schedule.
            if let Some(ramp) = spec.mouse_ramp {
                if rng.gen_range(0..4u32) == 0 {
                    events.push((
                        at + lifetime_ms / 2,
                        Event::SetFlowDemand(id, Some(spec.mouse_mbps * ramp)),
                    ));
                }
            }
        }
    }
    events.sort_by_key(|(at, _)| *at);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::TopologySpec;

    fn spec() -> ElasticSpec {
        ElasticSpec {
            elephants: 5,
            mice_per_epoch: 20,
            mouse_mbps: 0.5,
            mouse_lifetime_epochs: 2,
            routes: 12,
            mouse_ramp: None,
        }
    }

    #[test]
    fn compile_is_deterministic_and_sized() {
        let topo = TopologySpec::Waxman {
            n: 30,
            alpha: 0.9,
            beta: 0.4,
        }
        .build(7);
        let a = compile_elastic(&topo, &spec(), 10, 42);
        let b = compile_elastic(&topo, &spec(), 10, 42);
        assert_eq!(a, b, "same seed must compile identically");
        // Every mouse has a matched stop; elephants never stop.
        let starts = a
            .iter()
            .filter(|(_, e)| matches!(e, Event::StartFlow { .. }))
            .count();
        let stops = a
            .iter()
            .filter(|(_, e)| matches!(e, Event::StopFlow(_)))
            .count();
        assert!(starts > stops, "elephants outlive the horizon");
        assert!(stops > 0, "mice depart");
        // Schedule is sorted and ids are in the elastic range.
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        for (_, e) in &a {
            if let Event::StartFlow { id, .. } = e {
                assert!(id.0 > ELASTIC_ID_BASE);
            }
        }
    }

    #[test]
    fn mouse_ramps_compile_deterministically_and_mid_life() {
        let topo = TopologySpec::Waxman {
            n: 30,
            alpha: 0.9,
            beta: 0.4,
        }
        .build(7);
        let ramped = ElasticSpec {
            mouse_ramp: Some(3.0),
            ..spec()
        };
        let a = compile_elastic(&topo, &ramped, 10, 42);
        let b = compile_elastic(&topo, &ramped, 10, 42);
        assert_eq!(a, b, "ramped schedules replay bit-identically");
        // Ramps exist, target the declared demand, and land strictly
        // between each mouse's start and stop.
        let starts: BTreeMap<FlowId, u64> = a
            .iter()
            .filter_map(|(at, e)| match e {
                Event::StartFlow { id, .. } => Some((*id, *at)),
                _ => None,
            })
            .collect();
        let stops: BTreeMap<FlowId, u64> = a
            .iter()
            .filter_map(|(at, e)| match e {
                Event::StopFlow(id) => Some((*id, *at)),
                _ => None,
            })
            .collect();
        let ramps: Vec<(FlowId, u64, Option<f64>)> = a
            .iter()
            .filter_map(|(at, e)| match e {
                Event::SetFlowDemand(id, d) => Some((*id, *at, *d)),
                _ => None,
            })
            .collect();
        assert!(!ramps.is_empty(), "one mouse in four ramps");
        assert!(ramps.len() < stops.len(), "not every mouse ramps");
        for (id, at, demand) in &ramps {
            assert_eq!(*demand, Some(0.5 * 3.0));
            assert!(starts[id] < *at && *at < stops[id], "ramp is mid-life");
        }
        // The ramp-free spec stays byte-identical to the old compiler:
        // no SetFlowDemand events at all.
        let plain = compile_elastic(&topo, &spec(), 10, 42);
        assert!(plain
            .iter()
            .all(|(_, e)| !matches!(e, Event::SetFlowDemand(_, _))));
    }

    #[test]
    fn different_seeds_compile_different_schedules() {
        let topo = TopologySpec::Waxman {
            n: 30,
            alpha: 0.9,
            beta: 0.4,
        }
        .build(7);
        let a = compile_elastic(&topo, &spec(), 10, 1);
        let b = compile_elastic(&topo, &spec(), 10, 2);
        assert_ne!(a, b);
    }
}
