//! The canned scenario catalog: nine fixed-seed
//! `(topology × traffic × events)` combinations covering every traffic
//! model, every event type, single- and multi-pair traffic matrices,
//! and every topology family except Erdős–Rényi (exercised by the
//! determinism proptests instead) — the suite `repro scenarios` runs
//! and the determinism tests replay.
//!
//! Managed flows always start while the network is healthy (scripted
//! failures fire later); every scenario keeps at least one tunnel
//! alive at all times.

use crate::elastic::ElasticSpec;
use crate::events::{EventKind, EventSpec, LinkPick};
use crate::runner::{FlowPlan, PlaneMode, Scenario};
use crate::traffic::TrafficSpec;
use crate::zoo::TopologySpec;

fn flows3() -> Vec<FlowPlan> {
    vec![
        FlowPlan {
            label: "flow1".into(),
            demand_mbps: None,
            start_epoch: 0,
            pair: 0,
        },
        FlowPlan {
            label: "flow2".into(),
            demand_mbps: Some(6.0),
            start_epoch: 2,
            pair: 0,
        },
        FlowPlan {
            label: "flow3".into(),
            demand_mbps: None,
            start_epoch: 4,
            pair: 0,
        },
    ]
}

fn base(name: &str, topology: TopologySpec, traffic: TrafficSpec, seed: u64) -> Scenario {
    Scenario {
        name: name.into(),
        topology,
        traffic,
        events: Vec::new(),
        flows: flows3(),
        pairs: 1,
        horizon_epochs: 60,
        decision_every: 10,
        k_tunnels: 3,
        // Below the fluid plane's 0.86 protocol efficiency: a healthy
        // demand-declared flow meets its SLO, a squeezed one does not.
        slo_fraction: 0.8,
        optimizer: Default::default(),
        plane: PlaneMode::Fluid,
        elastic: None,
        seed,
    }
}

/// The full suite: 9 scenarios × (3 policies when run as a matrix),
/// including two multi-pair traffic matrices (fluid WAN with 4 pairs,
/// packet fat-tree with 3 pairs).
pub fn catalog() -> Vec<Scenario> {
    let mut out = Vec::new();

    // 1. Datacenter fabric, heavy-tailed traffic, mid-run failure of
    // the primary's aggregation uplink (restored after 15 epochs).
    let mut s = base(
        "fat-tree-elephants",
        TopologySpec::FatTree { k: 4 },
        TrafficSpec::ElephantMice {
            elephants: 2,
            mice: 10,
            elephant_mbps: 4.0,
            mouse_mbps: 1.0,
            mouse_epochs: 6,
        },
        101,
    );
    s.events = vec![EventSpec {
        at_epoch: 30,
        kind: EventKind::LinkDown {
            link: LinkPick::PrimaryHop(1),
            restore_after: Some(15),
        },
    }];
    out.push(s);

    // 2. US research backbone under diurnal load with a flap storm on
    // the primary's first backbone hop.
    let mut s = base(
        "esnet-diurnal-flaps",
        TopologySpec::EsnetLike,
        TrafficSpec::DiurnalGravity {
            pairs: 12,
            total_mbps: 400.0,
            amplitude: 0.6,
            period_epochs: 40.0,
        },
        102,
    );
    s.events = vec![EventSpec {
        at_epoch: 26,
        kind: EventKind::FlapStorm {
            link: LinkPick::PrimaryHop(1),
            flaps: 3,
            period_epochs: 6,
        },
    }];
    out.push(s);

    // 3. European backbone, gravity demands, a maintenance drain that
    // quarters the primary's capacity for 20 epochs.
    let mut s = base(
        "geant-gravity-drain",
        TopologySpec::GeantLike,
        TrafficSpec::Gravity {
            pairs: 14,
            total_mbps: 350.0,
        },
        103,
    );
    s.events = vec![EventSpec {
        at_epoch: 24,
        kind: EventKind::Drain {
            link: LinkPick::PrimaryHop(1),
            factor: 0.25,
            restore_after: Some(20),
        },
    }];
    out.push(s);

    // 4. Metro ring with express chords, bursty on/off cross-traffic,
    // and a *permanent* failure. Half the path capacity is genuinely
    // gone, so full 80% recovery may honestly read "never" — the
    // policies differentiate on how much goodput they salvage.
    let mut s = base(
        "ring-onoff-blackout",
        TopologySpec::RingChords {
            n: 24,
            chord_every: 4,
        },
        TrafficSpec::OnOff {
            sources: 10,
            rate_mbps: 5.0,
            p_on: 0.25,
            p_off: 0.35,
        },
        104,
    );
    s.events = vec![EventSpec {
        at_epoch: 28,
        kind: EventKind::LinkDown {
            link: LinkPick::PrimaryHop(2),
            restore_after: None,
        },
    }];
    out.push(s);

    // 5. Random Waxman WAN under gravity load with a cascading double
    // impairment: first hop 1 fails, then hop 2 drains while 1 is
    // still down.
    let mut s = base(
        "waxman-cascade",
        TopologySpec::Waxman {
            n: 24,
            alpha: 0.9,
            beta: 0.4,
        },
        TrafficSpec::Gravity {
            pairs: 16,
            total_mbps: 120.0,
        },
        105,
    );
    s.events = vec![
        EventSpec {
            at_epoch: 24,
            kind: EventKind::LinkDown {
                link: LinkPick::PrimaryHop(1),
                restore_after: Some(16),
            },
        },
        EventSpec {
            at_epoch: 30,
            kind: EventKind::Drain {
                link: LinkPick::PrimaryHop(2),
                factor: 0.3,
                restore_after: Some(12),
            },
        },
    ];
    out.push(s);

    // 6. Two-tier WAN flooded with mice while the primary's core hop
    // flap-storms.
    let mut s = base(
        "twotier-mice-storm",
        TopologySpec::TwoTierWan {
            cores: 6,
            edges_per_core: 2,
        },
        TrafficSpec::ElephantMice {
            elephants: 1,
            mice: 18,
            elephant_mbps: 6.0,
            mouse_mbps: 1.5,
            mouse_epochs: 5,
        },
        106,
    );
    s.events = vec![EventSpec {
        at_epoch: 22,
        kind: EventKind::FlapStorm {
            link: LinkPick::PrimaryHop(1),
            flaps: 4,
            period_epochs: 5,
        },
    }];
    out.push(s);

    // 7. The packet-plane scenario: real PolKA forwarding with queues
    // and routeID swaps on the fat-tree, light gravity background, a
    // transient failure. Shorter horizon — packets cost more than
    // fluid.
    let mut s = base(
        "fat-tree-packet",
        TopologySpec::FatTree { k: 4 },
        TrafficSpec::Gravity {
            pairs: 6,
            total_mbps: 18.0,
        },
        107,
    );
    s.plane = PlaneMode::Packet;
    s.horizon_epochs = 36;
    // Modest demands: the fat-tree edge has two 10 Mbps uplinks, and
    // packet queues shave anything greedy — declared demands keep the
    // SLO column meaningful.
    s.flows = vec![
        FlowPlan {
            label: "flow1".into(),
            demand_mbps: Some(2.5),
            start_epoch: 0,
            pair: 0,
        },
        FlowPlan {
            label: "flow2".into(),
            demand_mbps: Some(2.5),
            start_epoch: 2,
            pair: 0,
        },
        FlowPlan {
            label: "flow3".into(),
            demand_mbps: None,
            start_epoch: 4,
            pair: 0,
        },
    ];
    s.events = vec![EventSpec {
        at_epoch: 18,
        kind: EventKind::LinkDown {
            link: LinkPick::PrimaryHop(1),
            restore_after: Some(8),
        },
    }];
    out.push(s);

    // 8. The multi-pair WAN: a true traffic matrix of four managed
    // ingress/egress pairs over the US backbone (gravity-spread
    // endpoints from the zoo's farthest-pair generalization), whose
    // candidate tunnels overlap on shared trunks. Mid-run the primary
    // pair's first backbone hop fails, so the shared-link-aware
    // optimizer has to re-pack all four pairs without oversubscribing
    // the surviving trunks.
    let mut s = base(
        "wan-multipair",
        TopologySpec::EsnetLike,
        TrafficSpec::Gravity {
            pairs: 10,
            total_mbps: 300.0,
        },
        108,
    );
    s.pairs = 4;
    s.k_tunnels = 2;
    s.flows = vec![
        FlowPlan {
            label: "m0".into(),
            demand_mbps: None,
            start_epoch: 0,
            pair: 0,
        },
        FlowPlan {
            label: "m1".into(),
            demand_mbps: Some(12.0),
            start_epoch: 1,
            pair: 1,
        },
        FlowPlan {
            label: "m2".into(),
            demand_mbps: None,
            start_epoch: 2,
            pair: 2,
        },
        FlowPlan {
            label: "m3".into(),
            demand_mbps: Some(8.0),
            start_epoch: 3,
            pair: 3,
        },
        FlowPlan {
            label: "m0b".into(),
            demand_mbps: Some(10.0),
            start_epoch: 4,
            pair: 0,
        },
    ];
    s.events = vec![EventSpec {
        at_epoch: 26,
        kind: EventKind::LinkDown {
            link: LinkPick::PrimaryHop(1),
            restore_after: None,
        },
    }];
    out.push(s);

    // 9. The multi-pair packet-plane scenario: three managed pairs on
    // the fat-tree forwarding real PolKA packets (per-pair probes +
    // sources), with a transient failure on pair 0's primary uplink.
    let mut s = base(
        "fat-tree-packet-multipair",
        TopologySpec::FatTree { k: 4 },
        TrafficSpec::Gravity {
            pairs: 4,
            total_mbps: 12.0,
        },
        109,
    );
    s.pairs = 3;
    s.k_tunnels = 2;
    s.plane = PlaneMode::Packet;
    s.horizon_epochs = 30;
    s.flows = vec![
        FlowPlan {
            label: "q0".into(),
            demand_mbps: Some(2.0),
            start_epoch: 0,
            pair: 0,
        },
        FlowPlan {
            label: "q1".into(),
            demand_mbps: Some(2.0),
            start_epoch: 1,
            pair: 1,
        },
        FlowPlan {
            label: "q2".into(),
            demand_mbps: None,
            start_epoch: 2,
            pair: 2,
        },
    ];
    s.events = vec![EventSpec {
        at_epoch: 14,
        kind: EventKind::LinkDown {
            link: LinkPick::PrimaryHop(1),
            restore_after: Some(8),
        },
    }];
    out.push(s);

    out
}

/// The event-core scale-out scenario: a 1000-node Waxman WAN carrying
/// ~100k elastic background flows (400 long-lived greedy elephants +
/// 1,660 mice/epoch churning with 3-epoch lifetimes) alongside two
/// managed pairs, with a transient mid-run failure on the primary's
/// first hop. Not part of [`catalog`] — the tick-priced debug suites
/// iterate that; this one is sized for the release-mode
/// `repro sim` / `repro scenarios` runs and the throughput benchmark,
/// and must replay bit-identically like everything else.
pub fn scale_1k() -> Scenario {
    let mut s = base(
        "scale-1k",
        TopologySpec::Waxman {
            n: 1000,
            alpha: 0.15,
            beta: 0.15,
        },
        // Background load is carried by real elastic flows below, not
        // by the capacity-folding traffic models.
        TrafficSpec::Gravity {
            pairs: 0,
            total_mbps: 0.0,
        },
        110,
    );
    s.pairs = 2;
    s.k_tunnels = 2;
    s.flows = vec![
        FlowPlan {
            label: "m0".into(),
            demand_mbps: None,
            start_epoch: 0,
            pair: 0,
        },
        FlowPlan {
            label: "m1".into(),
            demand_mbps: Some(4.0),
            start_epoch: 2,
            pair: 1,
        },
    ];
    s.events = vec![EventSpec {
        at_epoch: 30,
        kind: EventKind::LinkDown {
            link: LinkPick::PrimaryHop(1),
            restore_after: Some(15),
        },
    }];
    s.elastic = Some(ElasticSpec {
        elephants: 400,
        mice_per_epoch: 1660,
        mouse_mbps: 0.75,
        mouse_lifetime_epochs: 3,
        routes: 800,
        // A quarter of the mice double their demand mid-life: scripted
        // SetFlowDemand churn for the incremental water-fill.
        mouse_ramp: Some(2.0),
    });
    s
}

/// The CI-sized cut of [`scale_1k`]: same 1000-node graph and flow
/// churn *rate*, 40% horizon (the flow population scales along because
/// mice are per-epoch).
pub fn scale_1k_smoke() -> Scenario {
    scale_1k().scaled(0.4)
}

/// The CI smoke subset: the same seven scenarios at 40% horizon —
/// small topologies are unchanged (they are already small), event
/// epochs scale along.
pub fn catalog_smoke() -> Vec<Scenario> {
    catalog().into_iter().map(|s| s.scaled(0.4)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_axes() {
        let cat = catalog();
        assert!(cat.len() >= 6, "acceptance: >= 6 distinct scenarios");
        // Distinct names, distinct seeds.
        let mut names: Vec<&str> = cat.iter().map(|s| s.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), cat.len());
        // Every event kind appears somewhere.
        let kinds: Vec<&EventSpec> = cat.iter().flat_map(|s| &s.events).collect();
        assert!(kinds
            .iter()
            .any(|e| matches!(e.kind, EventKind::LinkDown { .. })));
        assert!(kinds
            .iter()
            .any(|e| matches!(e.kind, EventKind::FlapStorm { .. })));
        assert!(kinds
            .iter()
            .any(|e| matches!(e.kind, EventKind::Drain { .. })));
        // At least one packet-plane scenario.
        assert!(cat.iter().any(|s| s.plane == PlaneMode::Packet));
        // The multi-pair axis: a fluid WAN matrix with 4 pairs and a
        // packet fat-tree matrix with 3 pairs, flows on every pair.
        for (name, pairs, plane) in [
            ("wan-multipair", 4, PlaneMode::Fluid),
            ("fat-tree-packet-multipair", 3, PlaneMode::Packet),
        ] {
            let s = cat.iter().find(|s| s.name == name).expect(name);
            assert_eq!(s.pairs, pairs);
            assert_eq!(s.plane, plane);
            for p in 0..pairs {
                assert!(
                    s.flows.iter().any(|f| f.pair == p),
                    "{name}: pair {p} has no managed flow"
                );
            }
            assert!(s.flows.iter().all(|f| f.pair < pairs));
        }
        // Flows start before the first impairment everywhere.
        for s in &cat {
            let first_event = s
                .events
                .iter()
                .map(|e| e.at_epoch)
                .min()
                .unwrap_or(u64::MAX);
            for f in &s.flows {
                assert!(
                    f.start_epoch + 2 < first_event,
                    "{}: flow starts too late",
                    s.name
                );
            }
        }
    }

    #[test]
    fn scale_1k_is_shaped_for_the_event_core() {
        let s = scale_1k();
        assert_eq!(s.name, "scale-1k");
        assert!(s.elastic.is_some());
        assert_eq!(s.plane, PlaneMode::Fluid);
        // Deliberately not in the tick-priced debug suites.
        assert!(catalog().iter().all(|c| c.name != s.name));
        let smoke = scale_1k_smoke();
        assert!(smoke.horizon_epochs < s.horizon_epochs / 2 + 1);
        assert_eq!(smoke.elastic, s.elastic, "churn rate survives scaling");
    }

    #[test]
    fn elastic_background_replays_bit_identically() {
        use crate::elastic::ElasticSpec;
        use crate::runner::Policy;
        // A debug-sized cut of scale-1k: same mechanism, small numbers.
        let mut s = scale_1k();
        s.topology = TopologySpec::Waxman {
            n: 40,
            alpha: 0.9,
            beta: 0.4,
        };
        s.horizon_epochs = 12;
        s.decision_every = 4;
        s.events = vec![EventSpec {
            at_epoch: 6,
            kind: EventKind::LinkDown {
                link: LinkPick::PrimaryHop(1),
                restore_after: Some(4),
            },
        }];
        s.elastic = Some(ElasticSpec {
            elephants: 6,
            mice_per_epoch: 30,
            mouse_mbps: 0.5,
            mouse_lifetime_epochs: 2,
            routes: 40,
            mouse_ramp: Some(2.0),
        });
        let a = s.run(Policy::Hecate).unwrap();
        let b = s.run(Policy::Hecate).unwrap();
        assert_eq!(a, b, "elastic background must not break determinism");
        assert!(a.mean_aggregate_mbps > 0.0);
    }

    #[test]
    fn elastic_background_is_fluid_only() {
        use crate::elastic::ElasticSpec;
        use crate::runner::Policy;
        let mut s = catalog()
            .into_iter()
            .find(|s| s.plane == PlaneMode::Packet)
            .expect("catalog has a packet scenario");
        s.elastic = Some(ElasticSpec {
            elephants: 1,
            mice_per_epoch: 1,
            mouse_mbps: 0.5,
            mouse_lifetime_epochs: 1,
            routes: 4,
            mouse_ramp: None,
        });
        assert!(s.run(Policy::Hecate).is_err());
    }

    #[test]
    fn smoke_subset_is_short() {
        for (full, smoke) in catalog().iter().zip(catalog_smoke()) {
            assert!(smoke.horizon_epochs <= full.horizon_epochs / 2);
            assert_eq!(smoke.name, full.name);
        }
    }
}
