//! The scenario runner: executes one `(topology × traffic × events)`
//! description end-to-end through `framework::SelfDrivingNetwork` under
//! a routing policy, and scores the outcome.
//!
//! One epoch is one simulated second (the paper's telemetry cadence).
//! Each epoch the runner (1) applies due scripted link events,
//! (2) folds background traffic and drains into effective link
//! capacities on both planes, (3) admits managed flows that are due,
//! (4) advances the fluid plane — or forwards a packet window when the
//! scenario runs the packet plane — and (5) lets the policy re-decide
//! at its decision interval. Everything downstream of the scenario's
//! `u64` seed is deterministic.

use crate::events::{compile_events, EventSpec, LinkAction};
use crate::observe::{ObsvArtifacts, ObsvOptions};
use crate::scorecard::{percentile, MetricsSection, PairScore, Recovery, Scorecard};
use crate::traffic::{headroom_scale, link_load, TrafficSpec};
use crate::zoo::{endpoint_pairs, endpoints, TopologySpec};
use crate::ScenarioError;
use framework::dataloop::DataplaneConfig;
use framework::optimizer::assign_flows;
use framework::scheduler::FlowRequest;
use framework::telemetry::{Metric, SeriesKey};
use framework::{Objective, OptimizerConfig, PairId, SelfDrivingNetwork};
use std::collections::BTreeMap;

/// How flows are (re-)steered at each decision interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The framework's mode: Hecate capacity forecasts + the assignment
    /// search, one consultation per decision interval.
    Hecate,
    /// Reactive baseline: assign on the tunnels' *last observed*
    /// capacity samples (no forecasting).
    LastSample,
    /// Static shortest-path: stay on `tunnel1` forever.
    StaticShortest,
}

impl Policy {
    /// All policies, in scorecard order.
    pub fn all() -> [Policy; 3] {
        [Policy::Hecate, Policy::LastSample, Policy::StaticShortest]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Hecate => "hecate",
            Policy::LastSample => "last-sample",
            Policy::StaticShortest => "static-shortest",
        }
    }
}

/// Which plane carries the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneMode {
    /// Fluid-flow emulation (max-min fair shares) — fast, scales to
    /// long horizons.
    Fluid,
    /// Packet-level PolKA forwarding via `attach_dataplane`: real
    /// queues, real routeID swaps, measured counters.
    Packet,
}

/// One managed flow the scenario admits.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowPlan {
    /// Flow label (ACL name on the edge).
    pub label: String,
    /// Offered load; `None` = greedy.
    pub demand_mbps: Option<f64>,
    /// Epoch the flow starts.
    pub start_epoch: u64,
    /// Which managed pair carries the flow (index below the scenario's
    /// `pairs`; `0` on single-pair scenarios).
    pub pair: usize,
}

/// A complete scenario description: plain data, cloneable, replayable.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (scorecard key).
    pub name: String,
    /// Which graph.
    pub topology: TopologySpec,
    /// Which background demands.
    pub traffic: TrafficSpec,
    /// Which impairments, when.
    pub events: Vec<EventSpec>,
    /// Managed flows the policies steer.
    pub flows: Vec<FlowPlan>,
    /// Managed ingress/egress pairs (`1` = the classic single-pair
    /// scenario). Endpoints come from the zoo's farthest-pair
    /// generalization ([`endpoint_pairs`]); each pair gets its own
    /// candidate tunnel set, and the policies steer the whole traffic
    /// matrix with shared-link-aware assignments.
    pub pairs: usize,
    /// Total epochs (1 epoch = 1 simulated second).
    pub horizon_epochs: u64,
    /// Policy consultation interval (epochs); the paper commits
    /// decisions per 10-step interval.
    pub decision_every: u64,
    /// Candidate tunnels to discover between the endpoints.
    pub k_tunnels: usize,
    /// A demand-declared flow meets its SLO when it delivers at least
    /// this fraction of its demand.
    pub slo_fraction: f64,
    /// Optional elastic background: real simulator flows (greedy
    /// elephants + churning mice) compiled from the seed and scheduled
    /// directly on the fluid plane's event queue, competing in the
    /// max-min water-fill with the managed flows. `None` on the classic
    /// scenarios; the scale-out scenarios use it to load the event core
    /// with ~100k flows. Fluid plane only.
    pub elastic: Option<crate::elastic::ElasticSpec>,
    /// Controller solver knobs (exhaustive-vs-greedy cutoff, incremental
    /// vs full-recompute water-fill, decision shard count). The default
    /// is the framework's default; both solve modes and every shard
    /// count produce bit-identical decisions, so this only moves *how*
    /// the same answer is computed.
    pub optimizer: OptimizerConfig,
    /// Fluid or packet plane.
    pub plane: PlaneMode,
    /// Master seed: topology randomness, traffic matrix, emulator
    /// jitter all derive from it.
    pub seed: u64,
}

impl Scenario {
    /// A one-line description, e.g.
    /// `fat-tree(4) x eleph/mice(2/10) x 2 events`.
    pub fn describe(&self) -> String {
        let pairs = if self.pairs > 1 {
            format!(", {} pairs", self.pairs)
        } else {
            String::new()
        };
        format!(
            "{} x {} x {} event(s), {} epochs, {:?}{}",
            self.topology.label(),
            self.traffic.label(),
            self.events.len(),
            self.horizon_epochs,
            self.plane,
            pairs
        )
    }

    /// Shrinks the scenario for smoke runs: horizon, decision interval
    /// and every event epoch scale by `factor` (floored at 1 epoch), so
    /// the decisions-per-horizon shape survives. Determinism is
    /// preserved — a scaled scenario is just a different scenario.
    pub fn scaled(mut self, factor: f64) -> Self {
        let scale = |e: u64| ((e as f64 * factor).round() as u64).max(1);
        self.horizon_epochs = scale(self.horizon_epochs);
        self.decision_every = scale(self.decision_every);
        for ev in &mut self.events {
            ev.at_epoch = scale(ev.at_epoch);
            match &mut ev.kind {
                crate::events::EventKind::LinkDown { restore_after, .. }
                | crate::events::EventKind::Drain { restore_after, .. } => {
                    *restore_after = restore_after.map(scale);
                }
                crate::events::EventKind::FlapStorm { period_epochs, .. } => {
                    *period_epochs = scale(*period_epochs);
                }
            }
        }
        for f in &mut self.flows {
            f.start_epoch = ((f.start_epoch as f64 * factor).round()) as u64;
        }
        self
    }

    /// Runs the scenario under one policy. See the module docs for the
    /// per-epoch sequence. Observability stays fully off: the tracer
    /// is a no-op and the scorecard carries no metrics section.
    pub fn run(&self, policy: Policy) -> Result<Scorecard, ScenarioError> {
        self.run_observed(policy, &ObsvOptions::off())
            .map(|(card, _)| card)
    }

    /// Runs the scenario under one policy with observability attached
    /// per `opts`: sim-time trace records (exportable as JSONL or a
    /// Chrome trace), per-epoch metric snapshots folded into the
    /// scorecard, and flight-recorder dumps captured on SLO-violation
    /// epochs. Observation never perturbs the run: every measured
    /// field matches the un-observed scorecard bit-for-bit — the
    /// metrics section is the only addition.
    pub fn run_observed(
        &self,
        policy: Policy,
        opts: &ObsvOptions,
    ) -> Result<(Scorecard, ObsvArtifacts), ScenarioError> {
        if self.horizon_epochs == 0 || self.flows.is_empty() {
            return Err(ScenarioError::Config(
                "scenario needs a horizon and at least one managed flow".into(),
            ));
        }
        let npairs = self.pairs.max(1);
        if let Some(f) = self.flows.iter().find(|f| f.pair >= npairs) {
            return Err(ScenarioError::Config(format!(
                "flow {} rides pair {} but the scenario declares {npairs} pair(s)",
                f.label, f.pair
            )));
        }
        // Build the graph, pick the managed endpoint pairs (pair 0 is
        // the classic farthest pair), compile background + events.
        let topo = self.topology.build(self.seed);
        let pair_nodes = endpoint_pairs(&topo, npairs);
        debug_assert_eq!(pair_nodes[0], endpoints(&topo));
        let pair_names: Vec<(String, String)> = pair_nodes
            .iter()
            .map(|&(s, d)| (topo.node_name(s).to_string(), topo.node_name(d).to_string()))
            .collect();
        let bg = self.traffic.background(
            &topo,
            self.horizon_epochs,
            self.seed.wrapping_mul(0x9e3779b97f4a7c15),
        );
        let loads = link_load(&topo, &bg, self.horizon_epochs);
        let scale = headroom_scale(&topo, &loads);
        let raw_caps: Vec<f64> = topo.links().iter().map(|l| l.capacity_mbps).collect();
        let link_names: Vec<(String, String)> = topo
            .links()
            .iter()
            .map(|l| {
                (
                    topo.node_name(l.a).to_string(),
                    topo.node_name(l.b).to_string(),
                )
            })
            .collect();

        let endpoint_refs: Vec<(&str, &str)> = pair_names
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let mut sdn = SelfDrivingNetwork::over_topology_pairs(
            topo,
            &endpoint_refs,
            self.k_tunnels,
            self.seed,
        )?;
        sdn.set_optimizer_config(self.optimizer);
        // Events target pair 0's primary tunnel (the shortest path of
        // the classic farthest pair) — `tunnel1` on single-pair
        // scenarios, `p0/tunnel1` otherwise.
        let primary_name = sdn.pair_tunnel_names(PairId(0)).expect("pair 0 exists")[0].clone();
        let primary = sdn
            .tunnel(&primary_name)
            .expect("primary tunnel exists")
            .node_path
            .clone();
        let actions = compile_events(&self.events, &sdn.sim.topo, &primary)?;
        // Elastic background rides the raw event queue: schedule every
        // compiled arrival/departure up front and mark the flows
        // background so per-flow telemetry stays managed-flows-only.
        if let Some(spec) = &self.elastic {
            if self.plane != PlaneMode::Fluid {
                return Err(ScenarioError::Config(
                    "elastic background flows require the fluid plane".into(),
                ));
            }
            let compiled = crate::elastic::compile_elastic(
                &sdn.sim.topo,
                spec,
                self.horizon_epochs,
                self.seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
            );
            for (at_ms, ev) in compiled {
                if let netsim::Event::StartFlow { id, .. } = &ev {
                    sdn.sim.mark_background(*id);
                }
                sdn.sim.schedule(at_ms, ev)?;
            }
        }
        if self.plane == PlaneMode::Packet {
            sdn.attach_dataplane(DataplaneConfig {
                epoch_ms: 1000,
                probe_rate_mbps: 0.2,
                probe_bytes: 250,
                default_flow_mbps: 8.0,
                flow_bytes: 1250,
            })?;
        }

        // Observability: build the sink stack and hand the bundle to
        // every layer. With nothing to observe the tracer stays off and
        // the run is exactly the un-observed one.
        let recording = opts.trace.then(obsv::RecordingSink::shared);
        let flight =
            (opts.flight_capacity > 0).then(|| obsv::FlightRecorder::new(opts.flight_capacity));
        let mut sinks: Vec<std::sync::Arc<dyn obsv::TraceSink>> = Vec::new();
        if let Some(r) = &recording {
            sinks.push(r.clone());
        }
        if let Some(fr) = &flight {
            sinks.push(fr.clone());
        }
        if let Some(x) = &opts.extra_sink {
            sinks.push(x.clone());
        }
        let tracer = match sinks.len() {
            0 => obsv::Tracer::off(),
            1 => obsv::Tracer::to(sinks.pop().expect("one sink")),
            _ => obsv::Tracer::to(std::sync::Arc::new(obsv::Fanout(sinks))),
        };
        let bundle = obsv::Obsv {
            tracer,
            metrics: obsv::Registry::default(),
        };
        sdn.set_obsv(bundle.clone());
        // Per-epoch snapshot base: taken after registration so the
        // first epoch's delta covers exactly that epoch's increments.
        let mut last_snap = opts.snapshots.then(|| bundle.metrics.snapshot());
        let mut per_epoch: Vec<Vec<(String, u64)>> = Vec::new();
        let mut slo_dumps: Vec<(u64, String)> = Vec::new();
        // Blame bookkeeping: the registry is always live (plain runs
        // get a fresh one through `set_obsv` too), so attribution is
        // computed identically whether or not tracing is on — blames
        // are scorecard data and must honor the bit-replay contract.
        let mut blames: Vec<obsv_analyze::Blame> = Vec::new();
        let mut blame_prev = bundle.metrics.snapshot();
        let mut down_since: BTreeMap<usize, u64> = BTreeMap::new();

        // Per-link capacity state, applied only on change.
        let mut drain: BTreeMap<usize, f64> = BTreeMap::new();
        let mut applied: BTreeMap<usize, f64> = BTreeMap::new();
        let labels: Vec<String> = self.flows.iter().map(|f| f.label.clone()).collect();
        let mut started: Vec<bool> = vec![false; self.flows.len()];
        let mut migrations: u64 = 0;
        let mut failures: Vec<u64> = Vec::new();
        let mut aggregate = Vec::with_capacity(self.horizon_epochs as usize);
        let mut flow_samples: Vec<f64> = Vec::new();
        let mut slo_violations: u64 = 0;
        let mut cursor = 0usize;
        // Per-pair attribution (tracked alongside, never feeding back
        // into the aggregate accumulators).
        let mut pair_series: Vec<Vec<f64>> = vec![Vec::new(); npairs];
        let mut pair_samples: Vec<Vec<f64>> = vec![Vec::new(); npairs];
        let mut pair_migrations: Vec<u64> = vec![0; npairs];

        for e in 0..self.horizon_epochs {
            let epoch_span = bundle
                .tracer
                .span("scenario", "scenario.epoch", sdn.sim.now_ns());
            // (1) scripted link events due this epoch.
            while cursor < actions.len() && actions[cursor].epoch <= e {
                let act = &actions[cursor];
                cursor += 1;
                match act.action {
                    LinkAction::SetUp(up) => {
                        sdn.set_link_state(&act.a, &act.b, up)?;
                        let lid = link_index(&link_names, &act.a, &act.b)?;
                        if up {
                            down_since.remove(&lid);
                        } else {
                            down_since.entry(lid).or_insert(e);
                        }
                        if act.starts_failure {
                            failures.push(e);
                        }
                    }
                    LinkAction::SetScale(f) => {
                        let lid = link_index(&link_names, &act.a, &act.b)?;
                        if (f - 1.0).abs() < 1e-12 {
                            drain.remove(&lid);
                        } else {
                            drain.insert(lid, f);
                        }
                    }
                }
            }
            // (2) effective capacities: raw - background, times drain.
            for (i, raw) in raw_caps.iter().enumerate() {
                let bg_now = loads
                    .get(&netsim::LinkId(i as u32))
                    .map(|s| s[e as usize] * scale)
                    .unwrap_or(0.0);
                let factor = drain.get(&i).copied().unwrap_or(1.0);
                let cap = ((raw - bg_now).max(raw * 0.05)) * factor;
                let last = applied.get(&i).copied().unwrap_or(*raw);
                if (cap - last).abs() > 1e-9 {
                    let (a, b) = &link_names[i];
                    sdn.set_link_capacity(a, b, cap)?;
                    applied.insert(i, cap);
                }
            }
            // (3) admit managed flows due this epoch (batched, like the
            // scheduler tick would).
            let due_idx: Vec<usize> = (0..self.flows.len())
                .filter(|&i| !started[i] && self.flows[i].start_epoch <= e)
                .collect();
            let due: Vec<FlowRequest> = due_idx
                .iter()
                .map(|&i| {
                    started[i] = true;
                    FlowRequest {
                        label: self.flows[i].label.clone(),
                        tos: 32u8.wrapping_mul(i as u8 + 1),
                        demand_mbps: self.flows[i].demand_mbps,
                        start_ms: e * 1000,
                        pair: PairId(self.flows[i].pair),
                    }
                })
                .collect();
            if !due.is_empty() {
                sdn.admit_flows(&due, Objective::MaxBandwidth)?;
                if policy == Policy::StaticShortest {
                    for req in &due {
                        let shortest = sdn
                            .pair_tunnel_names(req.pair)
                            .expect("flow pairs validated")[0]
                            .clone();
                        if sdn.flow_tunnel(&req.label) != Some(shortest.as_str()) {
                            sdn.migrate_flow(&req.label, &shortest)?;
                        }
                    }
                }
            }
            // (4) advance one epoch.
            let mut packet_goodput: BTreeMap<String, f64> = BTreeMap::new();
            match self.plane {
                PlaneMode::Fluid => sdn.advance((e + 1) * 1000)?,
                PlaneMode::Packet => {
                    let report = sdn.packet_epoch()?;
                    packet_goodput = report.flow_goodput.into_iter().collect();
                }
            }
            // (5) record per-flow rates + SLO, attributed per pair.
            let mut total = 0.0;
            let mut pair_total = vec![0.0f64; npairs];
            let mut violated_flows: Vec<usize> = Vec::new();
            for (i, plan) in self.flows.iter().enumerate() {
                if !started[i] {
                    continue;
                }
                let rate = match self.plane {
                    PlaneMode::Fluid => sdn.flow_rate(&plan.label).unwrap_or(0.0),
                    PlaneMode::Packet => packet_goodput.get(&plan.label).copied().unwrap_or(0.0),
                };
                total += rate;
                flow_samples.push(rate);
                pair_total[plan.pair] += rate;
                pair_samples[plan.pair].push(rate);
                if let Some(demand) = plan.demand_mbps {
                    // Two epochs of TCP-ramp grace after start.
                    if e >= plan.start_epoch + 2 && rate < self.slo_fraction * demand {
                        violated_flows.push(i);
                    }
                }
            }
            aggregate.push(total);
            for (p, t) in pair_total.into_iter().enumerate() {
                pair_series[p].push(t);
            }
            if !violated_flows.is_empty() {
                slo_violations += 1;
                // Root-cause attribution: join the scripted timeline
                // (links down / drained), the metric deltas since the
                // last epoch boundary, and the violated flows' current
                // tunnel capacities into one classified blame line.
                let window = bundle.metrics.snapshot().delta(&blame_prev);
                let link_name = |lid: usize| {
                    let (a, b) = &link_names[lid];
                    format!("{a}-{b}")
                };
                let mut squeezed: Vec<(String, String, f64)> = Vec::new();
                for &i in &violated_flows {
                    let plan = &self.flows[i];
                    let (Some(demand), Some(tname)) = (
                        plan.demand_mbps,
                        sdn.flow_tunnel(&plan.label).map(str::to_string),
                    ) else {
                        continue;
                    };
                    let Some(tunnel) = sdn.tunnel(&tname) else {
                        continue;
                    };
                    // Tightest hop on the flow's current tunnel.
                    let worst = tunnel
                        .node_path
                        .windows(2)
                        .filter_map(|hop| {
                            let a = sdn.sim.topo.node_name(hop[0]);
                            let b = sdn.sim.topo.node_name(hop[1]);
                            link_index(&link_names, a, b).ok()
                        })
                        .map(|lid| (lid, applied.get(&lid).copied().unwrap_or(raw_caps[lid])))
                        .min_by(|(_, x), (_, y)| x.total_cmp(y));
                    if let Some((lid, cap)) = worst {
                        if cap < self.slo_fraction * demand {
                            squeezed.push((plan.label.clone(), link_name(lid), cap));
                        }
                    }
                }
                let evidence = obsv_analyze::EpochEvidence {
                    epoch: e,
                    violated_flows: violated_flows
                        .iter()
                        .map(|&i| self.flows[i].label.clone())
                        .collect(),
                    down_links: down_since
                        .iter()
                        .map(|(&lid, &since)| (link_name(lid), e.saturating_sub(since)))
                        .collect(),
                    drained_links: drain.iter().map(|(&lid, &f)| (link_name(lid), f)).collect(),
                    packet_drops: window.counter("dataplane.packet.drops"),
                    pot_rejects: window.counter("dataplane.packet.pot_rejects"),
                    waterfill_solves: window.counter("netsim.waterfill.incremental_solves")
                        + window.counter("netsim.waterfill.full_solves"),
                    cache_refits: window.counter("hecate.cache.refits"),
                    squeezed,
                };
                blames.push(obsv_analyze::attribute(&evidence));
                // Post-mortem material: mark the epoch in the trace and
                // capture the flight-recorder tail (bounded — a
                // persistently-violating run keeps only the first few).
                bundle.tracer.instant(
                    "scenario",
                    "scenario.slo_violation",
                    sdn.sim.now_ns(),
                    || vec![("epoch", obsv::Value::U64(e))],
                );
                if let Some(fr) = &flight {
                    if slo_dumps.len() < opts.max_slo_dumps {
                        slo_dumps.push((e, fr.dump_jsonl()));
                    }
                }
            }
            // (6) policy consultation at the decision interval.
            let decision_due = self.decision_every > 0
                && (e + 1) % self.decision_every == 0
                && e + 1 < self.horizon_epochs;
            if decision_due {
                let consult_span =
                    bundle
                        .tracer
                        .span("scenario", "scenario.consult", sdn.sim.now_ns());
                let per_pair = self.consult(policy, &mut sdn, &labels, npairs);
                let mut moved = 0u64;
                for (p, m) in per_pair.into_iter().enumerate() {
                    migrations += m;
                    pair_migrations[p] += m;
                    moved += m;
                }
                consult_span.end(sdn.sim.now_ns(), || {
                    vec![("migrations", obsv::Value::U64(moved))]
                });
            }
            epoch_span.end(sdn.sim.now_ns(), || vec![("epoch", obsv::Value::U64(e))]);
            // Next epoch's blame window starts here — after the
            // consult, so refit/solve activity from the freshest
            // decision lands in the epoch it affects.
            blame_prev = bundle.metrics.snapshot();
            if let Some(prev) = &mut last_snap {
                let now = bundle.metrics.snapshot();
                let delta = now.delta(prev);
                per_epoch.push(
                    delta
                        .entries
                        .iter()
                        .filter_map(|(n, v)| {
                            v.as_counter().filter(|&c| c > 0).map(|c| (n.clone(), c))
                        })
                        .collect(),
                );
                *prev = now;
            }
        }

        // Score recoveries on the aggregate series.
        let recoveries = failures
            .iter()
            .map(|&f| {
                let lo = f.saturating_sub(3) as usize;
                let pre: Vec<f64> = aggregate[lo..f as usize].to_vec();
                let pre_mean = pre.iter().sum::<f64>() / pre.len().max(1) as f64;
                let recovered_after_epochs = if pre_mean <= 1e-9 {
                    Some(0) // nothing was flowing; nothing to recover
                } else {
                    (f..self.horizon_epochs)
                        .find(|&r| aggregate[r as usize] >= 0.8 * pre_mean)
                        .map(|r| r - f)
                };
                Recovery {
                    failed_at_epoch: f,
                    recovered_after_epochs,
                }
            })
            .collect();
        let active: Vec<f64> = aggregate
            .iter()
            .copied()
            .skip(self.flows.iter().map(|f| f.start_epoch).min().unwrap_or(0) as usize)
            .collect();
        let per_pair: Vec<PairScore> = (0..npairs)
            .map(|p| {
                let first_start = self
                    .flows
                    .iter()
                    .filter(|f| f.pair == p)
                    .map(|f| f.start_epoch)
                    .min()
                    .unwrap_or(0);
                let active: Vec<f64> = pair_series[p]
                    .iter()
                    .copied()
                    .skip(first_start as usize)
                    .collect();
                PairScore {
                    pair: format!("p{p}"),
                    route: format!("{}-{}", pair_names[p].0, pair_names[p].1),
                    mean_goodput_mbps: active.iter().sum::<f64>() / active.len().max(1) as f64,
                    p50_flow_mbps: percentile(&pair_samples[p], 0.50),
                    p99_flow_mbps: percentile(&pair_samples[p], 0.99),
                    migrations: pair_migrations[p],
                }
            })
            .collect();
        let final_snap = opts.snapshots.then(|| bundle.metrics.snapshot());
        let metrics = final_snap.as_ref().map(|snap| MetricsSection {
            totals: snap
                .entries
                .iter()
                .filter_map(|(n, v)| v.as_counter().map(|c| (n.clone(), c)))
                .collect(),
            per_epoch,
        });
        let artifacts = ObsvArtifacts {
            records: recording.map(|r| r.take()).unwrap_or_default(),
            metrics: final_snap,
            slo_dumps,
        };
        Ok((
            Scorecard {
                scenario: self.name.clone(),
                policy: policy.name().to_string(),
                seed: self.seed,
                epochs: self.horizon_epochs,
                mean_aggregate_mbps: active.iter().sum::<f64>() / active.len().max(1) as f64,
                p50_flow_mbps: percentile(&flow_samples, 0.50),
                p99_flow_mbps: percentile(&flow_samples, 0.99),
                slo_violation_epochs: slo_violations,
                blames,
                migrations,
                sim_events: sdn.sim.events_processed(),
                recoveries,
                aggregate_series: aggregate,
                per_pair,
                metrics,
            },
            artifacts,
        ))
    }

    /// Runs the scenario under every policy, in [`Policy::all`] order.
    pub fn run_matrix(&self) -> Result<Vec<Scorecard>, ScenarioError> {
        Policy::all().iter().map(|p| self.run(*p)).collect()
    }

    /// One policy consultation; returns migrations performed, one
    /// count per managed pair (so regressions stay attributable).
    fn consult(
        &self,
        policy: Policy,
        sdn: &mut SelfDrivingNetwork,
        labels: &[String],
        npairs: usize,
    ) -> Vec<u64> {
        let pair_of = |label: &str| -> usize {
            self.flows
                .iter()
                .find(|f| f.label == label)
                .map(|f| f.pair)
                .unwrap_or(0)
        };
        let before: Vec<Option<String>> = labels
            .iter()
            .map(|l| sdn.flow_tunnel(l).map(str::to_string))
            .collect();
        let mut moves = vec![0u64; npairs];
        match policy {
            Policy::StaticShortest => {}
            Policy::Hecate => {
                // May fail during warm-up (insufficient telemetry) —
                // the policy just skips that round, like the steering
                // experiment does. Single-pair networks run the legacy
                // bottleneck search; multi-pair networks the
                // shared-link engine — both inside the framework.
                if sdn.reoptimize_bandwidth().is_err() {
                    return moves;
                }
                for (l, b) in labels.iter().zip(&before) {
                    if sdn.flow_tunnel(l).map(str::to_string) != *b {
                        moves[pair_of(l)] += 1;
                    }
                }
            }
            Policy::LastSample => {
                // The reactive baseline re-assigns each pair
                // *independently* on last observed samples: it neither
                // forecasts nor knows about links its tunnels share
                // with other pairs — exactly the contrast the
                // shared-link-aware Hecate policy is scored against.
                #[allow(clippy::needless_range_loop)] // p indexes moves AND names the pair
                for p in 0..npairs {
                    let Some(names) = sdn.pair_tunnel_names(PairId(p)).map(<[String]>::to_vec)
                    else {
                        continue;
                    };
                    let caps: Vec<f64> = names
                        .iter()
                        .map(|n| {
                            sdn.telemetry
                                .last(&SeriesKey::new(n, Metric::AvailableBandwidth))
                                .unwrap_or(0.0)
                                .max(0.0)
                        })
                        .collect();
                    let live: Vec<&String> = labels
                        .iter()
                        .zip(&before)
                        .filter(|(_, b)| b.is_some())
                        .map(|(l, _)| l)
                        .filter(|l| pair_of(l) == p)
                        .collect();
                    if live.is_empty() {
                        continue;
                    }
                    let demands: Vec<Option<f64>> = live
                        .iter()
                        .map(|l| {
                            self.flows
                                .iter()
                                .find(|f| f.label == l.as_str())
                                .and_then(|f| f.demand_mbps)
                        })
                        .collect();
                    let Ok(assignment) = assign_flows(&caps, &demands) else {
                        continue;
                    };
                    for (l, &t) in live.iter().zip(&assignment.tunnel_of_flow) {
                        let target = &names[t];
                        if sdn.flow_tunnel(l) != Some(target.as_str())
                            && sdn.migrate_flow(l, target).is_ok()
                        {
                            moves[p] += 1;
                        }
                    }
                }
            }
        }
        moves
    }
}

/// Index of the link between two named endpoints in the raw link list.
fn link_index(names: &[(String, String)], a: &str, b: &str) -> Result<usize, ScenarioError> {
    names
        .iter()
        .position(|(x, y)| (x == a && y == b) || (x == b && y == a))
        .ok_or_else(|| ScenarioError::Config(format!("no link {a}-{b}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, LinkPick};

    fn tiny(policy_seed: u64) -> Scenario {
        Scenario {
            name: "tiny-ring".into(),
            topology: TopologySpec::RingChords {
                n: 10,
                chord_every: 2,
            },
            traffic: TrafficSpec::Gravity {
                pairs: 6,
                total_mbps: 40.0,
            },
            events: vec![EventSpec {
                at_epoch: 16,
                kind: EventKind::LinkDown {
                    link: LinkPick::PrimaryHop(1),
                    restore_after: Some(6),
                },
            }],
            flows: vec![
                FlowPlan {
                    label: "f1".into(),
                    demand_mbps: None,
                    start_epoch: 0,
                    pair: 0,
                },
                FlowPlan {
                    label: "f2".into(),
                    demand_mbps: Some(4.0),
                    start_epoch: 2,
                    pair: 0,
                },
            ],
            pairs: 1,
            horizon_epochs: 26,
            decision_every: 5,
            k_tunnels: 3,
            slo_fraction: 0.9,
            optimizer: OptimizerConfig::default(),
            plane: PlaneMode::Fluid,
            elastic: None,
            seed: policy_seed,
        }
    }

    #[test]
    fn fluid_run_produces_a_complete_scorecard() {
        let card = tiny(7).run(Policy::Hecate).unwrap();
        assert_eq!(card.epochs, 26);
        assert_eq!(card.aggregate_series.len(), 26);
        assert!(card.mean_aggregate_mbps > 0.0);
        assert!(card.p99_flow_mbps >= card.p50_flow_mbps);
        assert_eq!(card.recoveries.len(), 1);
        assert_eq!(card.recoveries[0].failed_at_epoch, 16);
    }

    #[test]
    fn static_policy_never_migrates() {
        let card = tiny(7).run(Policy::StaticShortest).unwrap();
        assert_eq!(card.migrations, 0);
    }

    #[test]
    fn adaptive_beats_static_under_permanent_primary_failure() {
        let mut s = tiny(11);
        s.events = vec![EventSpec {
            at_epoch: 12,
            kind: EventKind::LinkDown {
                link: LinkPick::PrimaryHop(1),
                restore_after: None,
            },
        }];
        s.horizon_epochs = 30;
        let hecate = s.run(Policy::Hecate).unwrap();
        let last = s.run(Policy::LastSample).unwrap();
        let fixed = s.run(Policy::StaticShortest).unwrap();
        // Adaptive policies route around the dead primary; static
        // parks on it and starves.
        assert!(
            hecate.mean_aggregate_mbps > fixed.mean_aggregate_mbps + 1.0,
            "hecate {} vs static {}",
            hecate.mean_aggregate_mbps,
            fixed.mean_aggregate_mbps
        );
        assert!(last.mean_aggregate_mbps > fixed.mean_aggregate_mbps + 1.0);
        assert!(hecate.migrations >= 1);
        // Static never recovers; the adaptive policies do.
        assert_eq!(fixed.recoveries[0].recovered_after_epochs, None);
        assert!(hecate.recoveries[0].recovered_after_epochs.is_some());
    }

    #[test]
    fn scaled_shrinks_horizon_and_events() {
        let s = tiny(1).scaled(0.5);
        assert_eq!(s.horizon_epochs, 13);
        assert_eq!(s.decision_every, 3);
        assert_eq!(s.events[0].at_epoch, 8);
        assert_eq!(s.flows[1].start_epoch, 1);
    }

    #[test]
    fn empty_scenarios_are_rejected() {
        let mut s = tiny(1);
        s.flows.clear();
        assert!(s.run(Policy::Hecate).is_err());
    }

    #[test]
    fn flows_on_undeclared_pairs_are_rejected() {
        let mut s = tiny(1);
        s.flows[1].pair = 3; // scenario declares 1 pair
        assert!(s.run(Policy::Hecate).is_err());
    }

    #[test]
    fn single_pair_scorecard_mirrors_the_aggregate() {
        let card = tiny(7).run(Policy::Hecate).unwrap();
        assert_eq!(card.per_pair.len(), 1);
        let p = &card.per_pair[0];
        assert_eq!(p.pair, "p0");
        assert!((p.mean_goodput_mbps - card.mean_aggregate_mbps).abs() < 1e-12);
        assert_eq!(p.migrations, card.migrations);
    }

    fn tiny_multipair(seed: u64) -> Scenario {
        let mut s = tiny(seed);
        s.name = "tiny-multipair".into();
        s.pairs = 3;
        s.flows = vec![
            FlowPlan {
                label: "f1".into(),
                demand_mbps: None,
                start_epoch: 0,
                pair: 0,
            },
            FlowPlan {
                label: "f2".into(),
                demand_mbps: Some(4.0),
                start_epoch: 1,
                pair: 1,
            },
            FlowPlan {
                label: "f3".into(),
                demand_mbps: None,
                start_epoch: 2,
                pair: 2,
            },
        ];
        s
    }

    #[test]
    fn multi_pair_run_scores_every_pair() {
        let card = tiny_multipair(7).run(Policy::Hecate).unwrap();
        assert_eq!(card.per_pair.len(), 3);
        // Every pair's flows actually carried traffic, attributed to
        // the right rows, and the rows sum to the aggregate.
        let sum: f64 = card.per_pair.iter().map(|p| p.mean_goodput_mbps).sum();
        for p in &card.per_pair {
            assert!(p.mean_goodput_mbps > 0.0, "{p:?}");
            assert!(p.route.contains('-'));
        }
        // (pair means skip each pair's own warm-up epochs, so they can
        // only exceed the aggregate mean, never undershoot the sum.)
        assert!(sum >= card.mean_aggregate_mbps - 1e-9, "{card:?}");
        let migration_sum: u64 = card.per_pair.iter().map(|p| p.migrations).sum();
        assert_eq!(migration_sum, card.migrations);
    }

    #[test]
    fn observed_run_matches_plain_run_and_traces_every_phase() {
        let s = tiny(7);
        let plain = s.run(Policy::Hecate).unwrap();
        let (card, art) = s
            .run_observed(Policy::Hecate, &crate::observe::ObsvOptions::full())
            .unwrap();
        // Observation adds the metrics section and changes nothing else.
        let mut stripped = card.clone();
        stripped.metrics = None;
        assert_eq!(stripped, plain);
        // Every control-loop phase shows up as a span at least once.
        let names = art.span_names();
        for expect in [
            "decide.consult",
            "decide.forecast",
            "decide.place",
            "decide.solve",
            "ml.fit",
            "scenario.consult",
            "scenario.epoch",
            "sim.dispatch",
            "sim.waterfill",
        ] {
            assert!(names.contains(&expect), "missing span {expect}: {names:?}");
        }
        let m = card.metrics.as_ref().unwrap();
        assert_eq!(m.per_epoch.len() as u64, card.epochs);
        assert!(
            m.total("netsim.waterfill.incremental_solves")
                + m.total("netsim.waterfill.full_solves")
                > 0
        );
        assert!(m.total("hecate.cache.hits") + m.total("hecate.cache.refits") > 0);
        assert!(!art.records.is_empty());
        assert!(art.metrics.is_some());
    }

    #[test]
    fn unobserved_run_carries_no_metrics_section() {
        let card = tiny(7).run(Policy::Hecate).unwrap();
        assert!(card.metrics.is_none());
    }

    #[test]
    fn multi_pair_observed_run_attributes_cache_per_pair() {
        let opts = crate::observe::ObsvOptions {
            snapshots: true,
            ..Default::default()
        };
        let (card, art) = tiny_multipair(7)
            .run_observed(Policy::Hecate, &opts)
            .unwrap();
        // No sink requested: nothing traced, but metrics folded.
        assert!(art.records.is_empty());
        let m = card.metrics.as_ref().unwrap();
        // Scoped counters exist for every declared pair and sum to the
        // global ones.
        for stat in ["hits", "updates", "refits"] {
            let scoped: u64 = (0..3)
                .map(|p| m.total(&format!("hecate.cache.p{p}.{stat}")))
                .sum();
            assert_eq!(
                scoped,
                m.total(&format!("hecate.cache.{stat}")),
                "per-pair {stat} must sum to the global counter"
            );
        }
        assert!(m.total("hecate.cache.hits") + m.total("hecate.cache.refits") > 0);
    }

    #[test]
    fn every_slo_violation_epoch_carries_a_blame() {
        // Permanent primary failure under the static policy: the demand
        // flow parks on the dead path and violates every epoch after.
        let mut s = tiny(11);
        s.events = vec![EventSpec {
            at_epoch: 12,
            kind: EventKind::LinkDown {
                link: LinkPick::PrimaryHop(1),
                restore_after: None,
            },
        }];
        s.horizon_epochs = 30;
        let card = s.run(Policy::StaticShortest).unwrap();
        assert!(card.slo_violation_epochs > 0, "{card:?}");
        assert_eq!(card.blames.len() as u64, card.slo_violation_epochs);
        // Violations after the failure blame the scripted link-down.
        let post = card
            .blames
            .iter()
            .filter(|b| b.epoch >= 12)
            .collect::<Vec<_>>();
        assert!(!post.is_empty());
        for b in post {
            assert_eq!(b.cause, obsv_analyze::BlameCause::LinkFailure, "{b:?}");
            assert!(b.flows.contains(&"f2".to_string()), "{b:?}");
            assert!(b.detail.contains("down"), "{b:?}");
        }
        // Blames are scorecard data: plain and observed runs agree.
        let (observed, _) = s
            .run_observed(Policy::StaticShortest, &crate::observe::ObsvOptions::full())
            .unwrap();
        assert_eq!(observed.blames, card.blames);
    }

    #[test]
    fn slo_dump_cap_is_honored() {
        // Same persistently-violating scenario; cap the dumps at 2.
        let mut s = tiny(11);
        s.events = vec![EventSpec {
            at_epoch: 12,
            kind: EventKind::LinkDown {
                link: LinkPick::PrimaryHop(1),
                restore_after: None,
            },
        }];
        s.horizon_epochs = 30;
        let opts = |cap: usize| crate::observe::ObsvOptions {
            flight_capacity: 512,
            max_slo_dumps: cap,
            ..Default::default()
        };
        let (card, art) = s.run_observed(Policy::StaticShortest, &opts(2)).unwrap();
        assert!(card.slo_violation_epochs > 2);
        assert_eq!(art.slo_dumps.len(), 2, "cap must bound the dumps");
        // First violations win, and each dump names its epoch.
        assert_eq!(art.slo_dumps[0].0, card.blames[0].epoch);
        assert!(art.slo_dumps[0].0 < art.slo_dumps[1].0);
        // A zero cap keeps the recorder attached but drops every dump.
        let (_, none) = s.run_observed(Policy::StaticShortest, &opts(0)).unwrap();
        assert!(none.slo_dumps.is_empty());
    }

    #[test]
    fn multi_pair_replays_bit_identically_per_policy() {
        for policy in Policy::all() {
            let a = tiny_multipair(11).run(policy).unwrap();
            let b = tiny_multipair(11).run(policy).unwrap();
            assert_eq!(a, b, "{policy:?}");
        }
    }
}
