//! The scorecard: what one `(scenario, policy, seed)` run measured,
//! plus the policy-matrix rendering.
//!
//! Scorecards are **plain deterministic data** — `PartialEq` compares
//! every float bit-for-bit, which is exactly the replay contract the
//! determinism proptest enforces.

use framework::dashboard::{render_table, sparkline};

/// Recovery bookkeeping for one scripted failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Epoch the failure fired.
    pub failed_at_epoch: u64,
    /// Epochs until aggregate goodput regained 80% of its pre-failure
    /// level; `None` = never recovered within the horizon.
    pub recovered_after_epochs: Option<u64>,
}

/// What one managed pair contributed to a multi-pair run — the
/// attribution rows that make a regression on *one* pair visible under
/// an otherwise healthy aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct PairScore {
    /// Pair namespace (`p0`, `p1`, …).
    pub pair: String,
    /// `ingress-egress` router names.
    pub route: String,
    /// Mean aggregate goodput of this pair's flows over epochs where at
    /// least one of them had started (Mbps).
    pub mean_goodput_mbps: f64,
    /// Median per-flow per-epoch throughput sample of this pair (Mbps).
    pub p50_flow_mbps: f64,
    /// 99th-percentile per-flow per-epoch sample of this pair (Mbps).
    pub p99_flow_mbps: f64,
    /// Migrations the policy performed on this pair's flows.
    pub migrations: u64,
}

/// Metrics folded from the run's obsv registry — per-epoch counter
/// deltas plus final totals, both in ascending name order so the
/// section compares bitwise like every other scorecard field.
///
/// Present only on observed runs with snapshots enabled
/// (`Scenario::run_observed`); plain `run()` scorecards carry `None`
/// and stay byte-for-byte what they always were.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSection {
    /// Final counter totals (`netsim.waterfill.*`, `hecate.cache.*`,
    /// and the per-pair `hecate.cache.p<N>.*` scopes).
    pub totals: Vec<(String, u64)>,
    /// Counter increments during each epoch (entry `e` covers epoch
    /// `e`), zero rows suppressed.
    pub per_epoch: Vec<Vec<(String, u64)>>,
}

impl MetricsSection {
    /// Final total of one counter; absent counters read 0.
    pub fn total(&self, name: &str) -> u64 {
        self.totals
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.totals[i].1)
            .unwrap_or(0)
    }
}

/// What one scenario run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// Scenario name.
    pub scenario: String,
    /// Policy that drove the run.
    pub policy: String,
    /// Master seed.
    pub seed: u64,
    /// Epochs executed (1 epoch = 1 simulated second).
    pub epochs: u64,
    /// Mean aggregate managed goodput over epochs where at least one
    /// flow had started (Mbps).
    pub mean_aggregate_mbps: f64,
    /// Median per-flow per-epoch throughput sample (Mbps).
    pub p50_flow_mbps: f64,
    /// 99th-percentile per-flow per-epoch throughput sample (Mbps) —
    /// the tail a lucky flow reaches.
    pub p99_flow_mbps: f64,
    /// Epochs in which at least one demand-declared flow delivered less
    /// than the scenario's SLO fraction of its demand.
    pub slo_violation_epochs: u64,
    /// One classified root-cause blame per violation epoch
    /// (`blames.len() == slo_violation_epochs` by construction) —
    /// computed from the scripted timeline and always-on metrics, so
    /// plain and observed runs carry identical lists.
    pub blames: Vec<obsv_analyze::Blame>,
    /// Path migrations the policy performed.
    pub migrations: u64,
    /// Simulator queue events applied during the run (external +
    /// internal rate-convergence completions) — the numerator of the
    /// event core's events/sec throughput reporting. Deterministic like
    /// every other field.
    pub sim_events: u64,
    /// Per-scripted-failure recovery times.
    pub recoveries: Vec<Recovery>,
    /// Aggregate managed goodput per epoch (Mbps) — the sparkline, and
    /// the series recoveries are measured on.
    pub aggregate_series: Vec<f64>,
    /// Per-managed-pair attribution (one entry per pair; single-pair
    /// scenarios have exactly one, mirroring the aggregate).
    pub per_pair: Vec<PairScore>,
    /// Control-loop metrics (water-fill solve counters, Hecate cache
    /// hits/refits globally and per pair) — `None` unless the run was
    /// observed with snapshots on.
    pub metrics: Option<MetricsSection>,
}

/// Column headers matching [`Scorecard::row`].
pub const HEADERS: [&str; 7] = [
    "policy", "goodput", "p50", "p99", "slo-viol", "migr", "recovery",
];

/// Cap on rendered blame lines per policy (see
/// [`Scorecard::blame_lines`]).
pub const MAX_BLAME_LINES: usize = 6;

impl Scorecard {
    /// One table row (policy-matrix format; see [`HEADERS`]).
    pub fn row(&self) -> Vec<String> {
        let recovery = if self.recoveries.is_empty() {
            "-".to_string()
        } else {
            self.recoveries
                .iter()
                .map(|r| match r.recovered_after_epochs {
                    Some(e) => format!("{e}ep"),
                    None => "never".to_string(),
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        vec![
            self.policy.clone(),
            format!("{:.2}", self.mean_aggregate_mbps),
            format!("{:.2}", self.p50_flow_mbps),
            format!("{:.2}", self.p99_flow_mbps),
            format!("{}", self.slo_violation_epochs),
            format!("{}", self.migrations),
            recovery,
        ]
    }

    /// Per-pair attribution rows (same columns as [`Scorecard::row`];
    /// the pair has no SLO/recovery bookkeeping of its own, so those
    /// cells read `-`). Empty on single-pair scorecards — the aggregate
    /// line already *is* the one pair.
    pub fn pair_rows(&self) -> Vec<Vec<String>> {
        if self.per_pair.len() <= 1 {
            return Vec::new();
        }
        self.per_pair
            .iter()
            .map(|p| {
                vec![
                    format!("  {} {}", p.pair, p.route),
                    format!("{:.2}", p.mean_goodput_mbps),
                    format!("{:.2}", p.p50_flow_mbps),
                    format!("{:.2}", p.p99_flow_mbps),
                    "-".to_string(),
                    format!("{}", p.migrations),
                    "-".to_string(),
                ]
            })
            .collect()
    }

    /// Blame lines for the matrix rendering: one root-cause line per
    /// violation epoch, capped at [`MAX_BLAME_LINES`] with a `+N more`
    /// tail so a persistently-violating run stays one screen. Empty
    /// when the run never violated.
    pub fn blame_lines(&self) -> Vec<String> {
        if self.blames.is_empty() {
            return Vec::new();
        }
        let mut out = vec![format!("  {:<16} slo blame:", self.policy)];
        for b in self.blames.iter().take(MAX_BLAME_LINES) {
            out.push(format!("    {}", b.line()));
        }
        if self.blames.len() > MAX_BLAME_LINES {
            out.push(format!(
                "    ... +{} more violation epoch(s)",
                self.blames.len() - MAX_BLAME_LINES
            ));
        }
        out
    }

    /// Control-loop metric lines for the matrix rendering: one summary
    /// line (water-fill solve counters + global cache behavior), then
    /// one cache-attribution line per pair on multi-pair runs. Empty
    /// when the run was not observed with snapshots.
    pub fn metrics_lines(&self) -> Vec<String> {
        let Some(m) = &self.metrics else {
            return Vec::new();
        };
        let mut out = vec![format!(
            "  {:<16} waterfill {} incr / {} full / {} expansions; cache {} hits / {} refits",
            self.policy,
            m.total("netsim.waterfill.incremental_solves"),
            m.total("netsim.waterfill.full_solves"),
            m.total("netsim.waterfill.expansions"),
            m.total("hecate.cache.hits"),
            m.total("hecate.cache.refits"),
        )];
        if self.per_pair.len() > 1 {
            for p in &self.per_pair {
                let hits = m.total(&format!("hecate.cache.{}.hits", p.pair));
                let updates = m.total(&format!("hecate.cache.{}.updates", p.pair));
                let refits = m.total(&format!("hecate.cache.{}.refits", p.pair));
                let consults = hits + updates + refits;
                if consults == 0 {
                    continue;
                }
                out.push(format!(
                    "    {:<14} cache {} hits / {} updates / {} refits ({:.0}% hit)",
                    p.pair,
                    hits,
                    updates,
                    refits,
                    100.0 * hits as f64 / consults as f64,
                ));
            }
        }
        out
    }
}

/// Deterministic nearest-rank percentile (q in 0..=1) over a copy of
/// the samples. Empty input yields 0.0.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Renders one scenario's policy comparison as a one-screen dashboard
/// frame: the scorecard table — each policy's aggregate line followed
/// by its per-pair attribution rows on multi-pair scenarios — plus one
/// goodput sparkline per policy.
pub fn render_matrix(title: &str, cards: &[Scorecard]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in cards {
        rows.push(c.row());
        rows.extend(c.pair_rows());
    }
    let mut out = render_table(title, &HEADERS, &rows);
    for c in cards {
        out.push_str(&format!(
            "  {:<16} {}\n",
            c.policy,
            sparkline(&c.aggregate_series)
        ));
    }
    for c in cards {
        for line in c.blame_lines() {
            out.push_str(&line);
            out.push('\n');
        }
    }
    for c in cards {
        for line in c.metrics_lines() {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn card(policy: &str) -> Scorecard {
        Scorecard {
            scenario: "s".into(),
            policy: policy.into(),
            seed: 1,
            epochs: 4,
            mean_aggregate_mbps: 12.5,
            p50_flow_mbps: 4.0,
            p99_flow_mbps: 9.25,
            slo_violation_epochs: 2,
            blames: vec![],
            migrations: 3,
            sim_events: 99,
            recoveries: vec![
                Recovery {
                    failed_at_epoch: 10,
                    recovered_after_epochs: Some(4),
                },
                Recovery {
                    failed_at_epoch: 30,
                    recovered_after_epochs: None,
                },
            ],
            aggregate_series: vec![1.0, 8.0, 12.0, 12.5],
            per_pair: vec![
                PairScore {
                    pair: "p0".into(),
                    route: "SEAT-BOST".into(),
                    mean_goodput_mbps: 8.0,
                    p50_flow_mbps: 3.0,
                    p99_flow_mbps: 6.5,
                    migrations: 2,
                },
                PairScore {
                    pair: "p1".into(),
                    route: "SUNN-NEWY".into(),
                    mean_goodput_mbps: 4.5,
                    p50_flow_mbps: 1.0,
                    p99_flow_mbps: 2.75,
                    migrations: 1,
                },
            ],
            metrics: None,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&s, 0.5), 3.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 5.0);
        assert_eq!(percentile(&s, 0.99), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn matrix_renders_rows_and_sparklines() {
        let frame = render_matrix("fat-tree(4)", &[card("hecate"), card("static-shortest")]);
        assert!(frame.contains("=== fat-tree(4) ==="));
        assert!(frame.contains("hecate"));
        assert!(frame.contains("static-shortest"));
        assert!(frame.contains("12.50"));
        assert!(frame.contains("4ep,never"));
        // two sparkline lines
        assert!(frame.matches('\u{2581}').count() >= 2);
    }

    #[test]
    fn per_pair_rows_attribute_multi_pair_regressions() {
        let frame = render_matrix("wan-multipair", &[card("hecate")]);
        // The aggregate line and one attribution row per pair, with
        // goodput, p99 and migrations visible per pair.
        assert!(frame.contains("p0 SEAT-BOST"));
        assert!(frame.contains("p1 SUNN-NEWY"));
        assert!(frame.contains("8.00"));
        assert!(frame.contains("2.75"));
        // A single-pair card renders no attribution rows.
        let mut single = card("hecate");
        single.per_pair.truncate(1);
        assert!(single.pair_rows().is_empty());
        let lines = render_matrix("s", &[single]).lines().count();
        assert!(lines < frame.lines().count());
    }

    #[test]
    fn metrics_section_renders_waterfill_and_per_pair_cache_lines() {
        let mut c = card("hecate");
        c.metrics = Some(MetricsSection {
            totals: vec![
                ("hecate.cache.hits".into(), 9),
                ("hecate.cache.p0.hits".into(), 6),
                ("hecate.cache.p0.refits".into(), 2),
                ("hecate.cache.p0.updates".into(), 0),
                ("hecate.cache.refits".into(), 3),
                ("netsim.waterfill.expansions".into(), 40),
                ("netsim.waterfill.full_solves".into(), 3),
                ("netsim.waterfill.incremental_solves".into(), 12),
            ],
            per_epoch: vec![vec![("hecate.cache.hits".into(), 9)]],
        });
        let m = c.metrics.as_ref().unwrap();
        assert_eq!(m.total("netsim.waterfill.expansions"), 40);
        assert_eq!(m.total("no.such.counter"), 0);
        let frame = render_matrix("t", &[c]);
        assert!(frame.contains("waterfill 12 incr / 3 full / 40 expansions"));
        assert!(frame.contains("cache 9 hits / 3 refits"));
        // p0 attributes 6 hits out of 8 consultations; p1 has no scoped
        // counters and renders no line.
        assert!(frame.contains("cache 6 hits / 0 updates / 2 refits (75% hit)"));
        assert!(!frame.contains("p1             cache"));
        // A card without metrics renders no metric lines at all.
        assert!(card("hecate").metrics_lines().is_empty());
    }

    #[test]
    fn blame_lines_render_capped_with_a_more_tail() {
        let mut c = card("hecate");
        assert!(c.blame_lines().is_empty());
        c.blames = (0..9)
            .map(|e| obsv_analyze::Blame {
                epoch: 20 + e,
                cause: obsv_analyze::BlameCause::LinkFailure,
                detail: format!("link a-b down {e} epoch(s)"),
                flows: vec!["f2".into()],
            })
            .collect();
        let lines = c.blame_lines();
        // Header + MAX_BLAME_LINES blames + the overflow tail.
        assert_eq!(lines.len(), 1 + MAX_BLAME_LINES + 1);
        assert!(lines[1].contains("link-failure"));
        assert!(lines[1].contains("f2"));
        assert!(lines.last().unwrap().contains("+3 more"));
        let frame = render_matrix("t", &[c]);
        assert!(frame.contains("slo blame:"));
        assert!(frame.contains("epoch  20"));
    }

    #[test]
    fn scorecards_compare_bitwise() {
        assert_eq!(card("p"), card("p"));
        let mut other = card("p");
        other.aggregate_series[2] += 1e-12;
        assert_ne!(card("p"), other);
    }
}
