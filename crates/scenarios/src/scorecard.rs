//! The scorecard: what one `(scenario, policy, seed)` run measured,
//! plus the policy-matrix rendering.
//!
//! Scorecards are **plain deterministic data** — `PartialEq` compares
//! every float bit-for-bit, which is exactly the replay contract the
//! determinism proptest enforces.

use framework::dashboard::{render_table, sparkline};

/// Recovery bookkeeping for one scripted failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Epoch the failure fired.
    pub failed_at_epoch: u64,
    /// Epochs until aggregate goodput regained 80% of its pre-failure
    /// level; `None` = never recovered within the horizon.
    pub recovered_after_epochs: Option<u64>,
}

/// What one managed pair contributed to a multi-pair run — the
/// attribution rows that make a regression on *one* pair visible under
/// an otherwise healthy aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct PairScore {
    /// Pair namespace (`p0`, `p1`, …).
    pub pair: String,
    /// `ingress-egress` router names.
    pub route: String,
    /// Mean aggregate goodput of this pair's flows over epochs where at
    /// least one of them had started (Mbps).
    pub mean_goodput_mbps: f64,
    /// Median per-flow per-epoch throughput sample of this pair (Mbps).
    pub p50_flow_mbps: f64,
    /// 99th-percentile per-flow per-epoch sample of this pair (Mbps).
    pub p99_flow_mbps: f64,
    /// Migrations the policy performed on this pair's flows.
    pub migrations: u64,
}

/// What one scenario run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// Scenario name.
    pub scenario: String,
    /// Policy that drove the run.
    pub policy: String,
    /// Master seed.
    pub seed: u64,
    /// Epochs executed (1 epoch = 1 simulated second).
    pub epochs: u64,
    /// Mean aggregate managed goodput over epochs where at least one
    /// flow had started (Mbps).
    pub mean_aggregate_mbps: f64,
    /// Median per-flow per-epoch throughput sample (Mbps).
    pub p50_flow_mbps: f64,
    /// 99th-percentile per-flow per-epoch throughput sample (Mbps) —
    /// the tail a lucky flow reaches.
    pub p99_flow_mbps: f64,
    /// Epochs in which at least one demand-declared flow delivered less
    /// than the scenario's SLO fraction of its demand.
    pub slo_violation_epochs: u64,
    /// Path migrations the policy performed.
    pub migrations: u64,
    /// Simulator queue events applied during the run (external +
    /// internal rate-convergence completions) — the numerator of the
    /// event core's events/sec throughput reporting. Deterministic like
    /// every other field.
    pub sim_events: u64,
    /// Per-scripted-failure recovery times.
    pub recoveries: Vec<Recovery>,
    /// Aggregate managed goodput per epoch (Mbps) — the sparkline, and
    /// the series recoveries are measured on.
    pub aggregate_series: Vec<f64>,
    /// Per-managed-pair attribution (one entry per pair; single-pair
    /// scenarios have exactly one, mirroring the aggregate).
    pub per_pair: Vec<PairScore>,
}

/// Column headers matching [`Scorecard::row`].
pub const HEADERS: [&str; 7] = [
    "policy", "goodput", "p50", "p99", "slo-viol", "migr", "recovery",
];

impl Scorecard {
    /// One table row (policy-matrix format; see [`HEADERS`]).
    pub fn row(&self) -> Vec<String> {
        let recovery = if self.recoveries.is_empty() {
            "-".to_string()
        } else {
            self.recoveries
                .iter()
                .map(|r| match r.recovered_after_epochs {
                    Some(e) => format!("{e}ep"),
                    None => "never".to_string(),
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        vec![
            self.policy.clone(),
            format!("{:.2}", self.mean_aggregate_mbps),
            format!("{:.2}", self.p50_flow_mbps),
            format!("{:.2}", self.p99_flow_mbps),
            format!("{}", self.slo_violation_epochs),
            format!("{}", self.migrations),
            recovery,
        ]
    }

    /// Per-pair attribution rows (same columns as [`Scorecard::row`];
    /// the pair has no SLO/recovery bookkeeping of its own, so those
    /// cells read `-`). Empty on single-pair scorecards — the aggregate
    /// line already *is* the one pair.
    pub fn pair_rows(&self) -> Vec<Vec<String>> {
        if self.per_pair.len() <= 1 {
            return Vec::new();
        }
        self.per_pair
            .iter()
            .map(|p| {
                vec![
                    format!("  {} {}", p.pair, p.route),
                    format!("{:.2}", p.mean_goodput_mbps),
                    format!("{:.2}", p.p50_flow_mbps),
                    format!("{:.2}", p.p99_flow_mbps),
                    "-".to_string(),
                    format!("{}", p.migrations),
                    "-".to_string(),
                ]
            })
            .collect()
    }
}

/// Deterministic nearest-rank percentile (q in 0..=1) over a copy of
/// the samples. Empty input yields 0.0.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Renders one scenario's policy comparison as a one-screen dashboard
/// frame: the scorecard table — each policy's aggregate line followed
/// by its per-pair attribution rows on multi-pair scenarios — plus one
/// goodput sparkline per policy.
pub fn render_matrix(title: &str, cards: &[Scorecard]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in cards {
        rows.push(c.row());
        rows.extend(c.pair_rows());
    }
    let mut out = render_table(title, &HEADERS, &rows);
    for c in cards {
        out.push_str(&format!(
            "  {:<16} {}\n",
            c.policy,
            sparkline(&c.aggregate_series)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn card(policy: &str) -> Scorecard {
        Scorecard {
            scenario: "s".into(),
            policy: policy.into(),
            seed: 1,
            epochs: 4,
            mean_aggregate_mbps: 12.5,
            p50_flow_mbps: 4.0,
            p99_flow_mbps: 9.25,
            slo_violation_epochs: 2,
            migrations: 3,
            sim_events: 99,
            recoveries: vec![
                Recovery {
                    failed_at_epoch: 10,
                    recovered_after_epochs: Some(4),
                },
                Recovery {
                    failed_at_epoch: 30,
                    recovered_after_epochs: None,
                },
            ],
            aggregate_series: vec![1.0, 8.0, 12.0, 12.5],
            per_pair: vec![
                PairScore {
                    pair: "p0".into(),
                    route: "SEAT-BOST".into(),
                    mean_goodput_mbps: 8.0,
                    p50_flow_mbps: 3.0,
                    p99_flow_mbps: 6.5,
                    migrations: 2,
                },
                PairScore {
                    pair: "p1".into(),
                    route: "SUNN-NEWY".into(),
                    mean_goodput_mbps: 4.5,
                    p50_flow_mbps: 1.0,
                    p99_flow_mbps: 2.75,
                    migrations: 1,
                },
            ],
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&s, 0.5), 3.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 5.0);
        assert_eq!(percentile(&s, 0.99), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn matrix_renders_rows_and_sparklines() {
        let frame = render_matrix("fat-tree(4)", &[card("hecate"), card("static-shortest")]);
        assert!(frame.contains("=== fat-tree(4) ==="));
        assert!(frame.contains("hecate"));
        assert!(frame.contains("static-shortest"));
        assert!(frame.contains("12.50"));
        assert!(frame.contains("4ep,never"));
        // two sparkline lines
        assert!(frame.matches('\u{2581}').count() >= 2);
    }

    #[test]
    fn per_pair_rows_attribute_multi_pair_regressions() {
        let frame = render_matrix("wan-multipair", &[card("hecate")]);
        // The aggregate line and one attribution row per pair, with
        // goodput, p99 and migrations visible per pair.
        assert!(frame.contains("p0 SEAT-BOST"));
        assert!(frame.contains("p1 SUNN-NEWY"));
        assert!(frame.contains("8.00"));
        assert!(frame.contains("2.75"));
        // A single-pair card renders no attribution rows.
        let mut single = card("hecate");
        single.per_pair.truncate(1);
        assert!(single.pair_rows().is_empty());
        let lines = render_matrix("s", &[single]).lines().count();
        assert!(lines < frame.lines().count());
    }

    #[test]
    fn scorecards_compare_bitwise() {
        assert_eq!(card("p"), card("p"));
        let mut other = card("p");
        other.aggregate_series[2] += 1e-12;
        assert_ne!(card("p"), other);
    }
}
