//! Traffic-matrix generators: seeded demand processes compiled to
//! per-link background-load series.
//!
//! Background traffic models the *rest of the network* — inelastic
//! cross-traffic the managed flows compete with. Each generator picks
//! source/destination pairs (gravity-weighted by node degree), routes
//! them on shortest paths, and emits one offered-load sample per epoch.
//! The runner folds the per-link sums into effective link capacities
//! via `SelfDrivingNetwork::set_link_capacity`, after scaling the whole
//! matrix so no link's background alone exceeds [`MAX_BG_UTILIZATION`]
//! — background pressures the managed flows, it never starves them
//! outright.

use netsim::{LinkId, NodeIdx, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Background demand may occupy at most this fraction of any link.
pub const MAX_BG_UTILIZATION: f64 = 0.7;

/// A traffic-matrix family plus its parameters — the "which demands"
/// axis of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSpec {
    /// Gravity model: `pairs` node pairs sampled with degree-weighted
    /// probability; pair demand proportional to the product of endpoint
    /// weights, normalized to `total_mbps`, mildly noisy per epoch.
    Gravity {
        /// Number of background pairs.
        pairs: usize,
        /// Aggregate offered load across all pairs (Mbps).
        total_mbps: f64,
    },
    /// Gravity demands modulated by a shared sinusoid (diurnal load)
    /// with per-pair phase jitter.
    DiurnalGravity {
        /// Number of background pairs.
        pairs: usize,
        /// Aggregate mean offered load (Mbps).
        total_mbps: f64,
        /// Peak-to-mean swing (0..1).
        amplitude: f64,
        /// Period of the sinusoid in epochs.
        period_epochs: f64,
    },
    /// A few long-lived heavy "elephant" pairs over a sea of short
    /// light "mice" transfers with random start epochs.
    ElephantMice {
        /// Long-lived heavy pairs.
        elephants: usize,
        /// Short-lived light transfers.
        mice: usize,
        /// Per-elephant offered load (Mbps).
        elephant_mbps: f64,
        /// Per-mouse offered load while alive (Mbps).
        mouse_mbps: f64,
        /// Mouse lifetime (epochs).
        mouse_epochs: u64,
    },
    /// Two-state Markov on/off sources: each source offers `rate_mbps`
    /// while on; per-epoch transition probabilities control burstiness.
    OnOff {
        /// Number of sources.
        sources: usize,
        /// Offered load while on (Mbps).
        rate_mbps: f64,
        /// P(off -> on) per epoch.
        p_on: f64,
        /// P(on -> off) per epoch.
        p_off: f64,
    },
}

impl TrafficSpec {
    /// A short display label, e.g. `gravity(12)`.
    pub fn label(&self) -> String {
        match *self {
            TrafficSpec::Gravity { pairs, .. } => format!("gravity({pairs})"),
            TrafficSpec::DiurnalGravity { pairs, .. } => format!("diurnal({pairs})"),
            TrafficSpec::ElephantMice {
                elephants, mice, ..
            } => format!("eleph/mice({elephants}/{mice})"),
            TrafficSpec::OnOff { sources, .. } => format!("on-off({sources})"),
        }
    }

    /// Compiles the spec into concrete background flows with one
    /// offered-load sample per epoch, deterministically from `seed`.
    pub fn background(&self, topo: &Topology, horizon: u64, seed: u64) -> Vec<BgFlow> {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = horizon as usize;
        match *self {
            TrafficSpec::Gravity { pairs, total_mbps } => {
                gravity_pairs(topo, pairs, total_mbps, &mut rng)
                    .into_iter()
                    .map(|(path, mean)| {
                        let rate = (0..h)
                            .map(|_| (mean * rng.gen_range(0.85f64..1.15)).max(0.0))
                            .collect();
                        BgFlow { path, rate }
                    })
                    .collect()
            }
            TrafficSpec::DiurnalGravity {
                pairs,
                total_mbps,
                amplitude,
                period_epochs,
            } => gravity_pairs(topo, pairs, total_mbps, &mut rng)
                .into_iter()
                .map(|(path, mean)| {
                    let phase: f64 = rng.gen_range(0.0..1.0);
                    let rate = (0..h)
                        .map(|e| {
                            let arg = 2.0
                                * std::f64::consts::PI
                                * (e as f64 / period_epochs.max(1.0) + phase);
                            (mean * (1.0 + amplitude * arg.sin())).max(0.0)
                        })
                        .collect();
                    BgFlow { path, rate }
                })
                .collect(),
            TrafficSpec::ElephantMice {
                elephants,
                mice,
                elephant_mbps,
                mouse_mbps,
                mouse_epochs,
            } => {
                let mut out: Vec<BgFlow> =
                    gravity_pairs(topo, elephants, elephant_mbps * elephants as f64, &mut rng)
                        .into_iter()
                        .map(|(path, _)| BgFlow {
                            path,
                            rate: vec![elephant_mbps; h],
                        })
                        .collect();
                for (path, _) in gravity_pairs(topo, mice, mouse_mbps * mice as f64, &mut rng) {
                    let start = rng.gen_range(0..horizon.max(1));
                    let mut rate = vec![0.0; h];
                    for e in start..(start + mouse_epochs).min(horizon) {
                        rate[e as usize] = mouse_mbps;
                    }
                    out.push(BgFlow { path, rate });
                }
                out
            }
            TrafficSpec::OnOff {
                sources,
                rate_mbps,
                p_on,
                p_off,
            } => gravity_pairs(topo, sources, rate_mbps * sources as f64, &mut rng)
                .into_iter()
                .map(|(path, _)| {
                    let mut on = false;
                    let rate = (0..h)
                        .map(|_| {
                            let flip: f64 = rng.gen_range(0.0..1.0);
                            on = if on { flip >= p_off } else { flip < p_on };
                            if on {
                                rate_mbps
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    BgFlow { path, rate }
                })
                .collect(),
        }
    }
}

/// One compiled background flow: a shortest path and its offered load
/// per epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct BgFlow {
    /// Node path (adjacent hops).
    pub path: Vec<NodeIdx>,
    /// Offered load per epoch (Mbps); length = scenario horizon.
    pub rate: Vec<f64>,
}

/// Samples `pairs` distinct (src, dst) pairs with degree-weighted
/// (gravity) probability and splits `total_mbps` across them
/// proportionally to the weight product. Pairs that happen to be
/// disconnected are skipped (up to a bounded number of retries).
fn gravity_pairs(
    topo: &Topology,
    pairs: usize,
    total_mbps: f64,
    rng: &mut StdRng,
) -> Vec<(Vec<NodeIdx>, f64)> {
    let n = topo.node_count();
    if n < 2 || pairs == 0 {
        return Vec::new();
    }
    let weights: Vec<f64> = (0..n)
        .map(|i| topo.degree(NodeIdx(i as u32)) as f64)
        .collect();
    let total_w: f64 = weights.iter().sum();
    let draw = |rng: &mut StdRng| -> NodeIdx {
        let mut x = rng.gen_range(0.0..total_w.max(1e-9));
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return NodeIdx(i as u32);
            }
        }
        NodeIdx((n - 1) as u32)
    };
    let mut chosen: Vec<(Vec<NodeIdx>, f64)> = Vec::with_capacity(pairs);
    let mut attempts = 0;
    while chosen.len() < pairs && attempts < pairs * 8 {
        attempts += 1;
        let s = draw(rng);
        let d = draw(rng);
        if s == d {
            continue;
        }
        let Some(path) = topo.shortest_path_by_delay(s, d) else {
            continue;
        };
        let w = weights[s.0 as usize] * weights[d.0 as usize];
        chosen.push((path, w));
    }
    let wsum: f64 = chosen.iter().map(|(_, w)| w).sum();
    chosen
        .into_iter()
        .map(|(p, w)| (p, total_mbps * w / wsum.max(1e-9)))
        .collect()
}

/// Sums the background flows into a per-link offered-load series: for
/// each link, the heavier of its two directions per epoch (capacities
/// apply per direction, and one scalar capacity models the link).
/// Links that never carry background are absent from the map.
pub fn link_load(topo: &Topology, bg: &[BgFlow], horizon: u64) -> BTreeMap<LinkId, Vec<f64>> {
    let h = horizon as usize;
    // (link, forward?) -> per-epoch load
    let mut directed: BTreeMap<(LinkId, bool), Vec<f64>> = BTreeMap::new();
    for flow in bg {
        let Ok(links) = topo.path_links(&flow.path) else {
            continue;
        };
        for (hop, lid) in links.iter().enumerate() {
            let forward = topo.link(*lid).a == flow.path[hop];
            let entry = directed
                .entry((*lid, forward))
                .or_insert_with(|| vec![0.0; h]);
            for (e, r) in flow.rate.iter().enumerate() {
                entry[e] += r;
            }
        }
    }
    let mut out: BTreeMap<LinkId, Vec<f64>> = BTreeMap::new();
    for ((lid, _), series) in directed {
        let entry = out.entry(lid).or_insert_with(|| vec![0.0; h]);
        for (e, v) in series.into_iter().enumerate() {
            entry[e] = entry[e].max(v);
        }
    }
    out
}

/// The global scale factor keeping every link's background below
/// [`MAX_BG_UTILIZATION`] of its raw capacity: `min(1, 0.7 / worst)`.
pub fn headroom_scale(topo: &Topology, loads: &BTreeMap<LinkId, Vec<f64>>) -> f64 {
    let mut worst: f64 = 0.0;
    for (lid, series) in loads {
        let cap = topo.link(*lid).capacity_mbps.max(1e-9);
        for v in series {
            worst = worst.max(v / cap);
        }
    }
    if worst <= MAX_BG_UTILIZATION {
        1.0
    } else {
        MAX_BG_UTILIZATION / worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn all_specs() -> Vec<TrafficSpec> {
        vec![
            TrafficSpec::Gravity {
                pairs: 10,
                total_mbps: 60.0,
            },
            TrafficSpec::DiurnalGravity {
                pairs: 8,
                total_mbps: 40.0,
                amplitude: 0.6,
                period_epochs: 30.0,
            },
            TrafficSpec::ElephantMice {
                elephants: 3,
                mice: 12,
                elephant_mbps: 8.0,
                mouse_mbps: 1.5,
                mouse_epochs: 5,
            },
            TrafficSpec::OnOff {
                sources: 8,
                rate_mbps: 4.0,
                p_on: 0.3,
                p_off: 0.4,
            },
        ]
    }

    #[test]
    fn every_spec_compiles_and_replays_identically() {
        let topo = zoo::esnet_like();
        for spec in all_specs() {
            let a = spec.background(&topo, 40, 9);
            let b = spec.background(&topo, 40, 9);
            assert_eq!(a, b, "{}", spec.label());
            assert!(!a.is_empty(), "{}", spec.label());
            for f in &a {
                assert_eq!(f.rate.len(), 40);
                assert!(f.rate.iter().all(|v| *v >= 0.0));
                assert!(f.path.len() >= 2);
                topo.path_links(&f.path).expect("adjacent path");
            }
            // Different seeds differ.
            let c = spec.background(&topo, 40, 10);
            assert_ne!(a, c, "{}", spec.label());
        }
    }

    #[test]
    fn gravity_total_matches_spec() {
        let topo = zoo::esnet_like();
        let bg = TrafficSpec::Gravity {
            pairs: 12,
            total_mbps: 60.0,
        }
        .background(&topo, 10, 4);
        // Mean offered load across pairs sums to ~total (noise is ±15%).
        let mean_total: f64 = bg
            .iter()
            .map(|f| f.rate.iter().sum::<f64>() / f.rate.len() as f64)
            .sum();
        assert!((mean_total - 60.0).abs() < 8.0, "{mean_total}");
    }

    #[test]
    fn diurnal_oscillates() {
        let topo = zoo::geant_like();
        let bg = TrafficSpec::DiurnalGravity {
            pairs: 4,
            total_mbps: 40.0,
            amplitude: 0.8,
            period_epochs: 20.0,
        }
        .background(&topo, 40, 1);
        // Per-flow swing: max well above min.
        for f in &bg {
            let lo = f.rate.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = f.rate.iter().cloned().fold(0.0, f64::max);
            assert!(hi > lo * 1.5 + 0.1, "no swing: {lo}..{hi}");
        }
    }

    #[test]
    fn elephants_persist_and_mice_are_short() {
        let topo = zoo::esnet_like();
        let bg = TrafficSpec::ElephantMice {
            elephants: 2,
            mice: 10,
            elephant_mbps: 8.0,
            mouse_mbps: 1.0,
            mouse_epochs: 4,
        }
        .background(&topo, 30, 2);
        let persistent = bg
            .iter()
            .filter(|f| f.rate.iter().all(|v| *v > 0.0))
            .count();
        assert_eq!(persistent, 2, "elephants run the whole horizon");
        for f in bg.iter().skip(2) {
            let alive = f.rate.iter().filter(|v| **v > 0.0).count();
            assert!(alive <= 4, "mouse alive {alive} epochs");
        }
    }

    #[test]
    fn link_load_and_headroom_bound_background() {
        let topo = zoo::ring_chords(12, 3);
        let bg = TrafficSpec::Gravity {
            pairs: 20,
            total_mbps: 300.0, // deliberately oversubscribed
        }
        .background(&topo, 20, 5);
        let loads = link_load(&topo, &bg, 20);
        assert!(!loads.is_empty());
        let scale = headroom_scale(&topo, &loads);
        assert!(scale < 1.0, "oversubscription must be scaled down");
        for (lid, series) in &loads {
            let cap = topo.link(*lid).capacity_mbps;
            for v in series {
                assert!(v * scale <= cap * MAX_BG_UTILIZATION + 1e-9);
            }
        }
    }
}
