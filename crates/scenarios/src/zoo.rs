//! The topology zoo: parametric generators emitting `netsim::Topology`.
//!
//! Every generator is deterministic — the random families take an
//! explicit seed and repair connectivity deterministically, so a
//! `(spec, seed)` pair always builds the identical graph.

use netsim::topo::NodeKind;
use netsim::{NodeIdx, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A topology family plus its parameters — the "which graph" axis of a
/// scenario, serializable as plain data.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// k-ary fat-tree: `(k/2)^2` cores, `k` pods of `k/2` aggregation
    /// and `k/2` edge switches (`k` even, ≥ 2).
    FatTree {
        /// Arity (ports per switch); 4 gives the classic 20-node tree.
        k: usize,
    },
    /// Ring of `n` routers plus antipodal chords every `chord_every`
    /// positions (the classic metro-ring-with-express-links shape).
    RingChords {
        /// Ring size.
        n: usize,
        /// Chord spacing; 0 disables chords.
        chord_every: usize,
    },
    /// Two-tier WAN: a chorded core ring with dual-homed edge routers.
    TwoTierWan {
        /// Core ring size.
        cores: usize,
        /// Edge routers hanging off each core.
        edges_per_core: usize,
    },
    /// Waxman random geometric graph on the unit square: nodes i,j link
    /// with probability `alpha * exp(-dist/(beta * sqrt(2)))`, delays
    /// proportional to distance. Repaired to connectivity.
    Waxman {
        /// Node count.
        n: usize,
        /// Edge-density knob (0..1].
        alpha: f64,
        /// Distance-decay knob (0..1].
        beta: f64,
    },
    /// Erdős–Rényi G(n, p) with uniform random delays. Repaired to
    /// connectivity.
    ErdosRenyi {
        /// Node count.
        n: usize,
        /// Per-pair link probability.
        link_prob: f64,
    },
    /// An ESnet-inspired US research backbone: 14 PoPs, continental
    /// propagation delays.
    EsnetLike,
    /// A GÉANT-inspired European backbone: 14 PoPs, intra-continent
    /// delays.
    GeantLike,
}

impl TopologySpec {
    /// Builds the topology. `seed` only matters for the random families.
    pub fn build(&self, seed: u64) -> Topology {
        match *self {
            TopologySpec::FatTree { k } => fat_tree(k),
            TopologySpec::RingChords { n, chord_every } => ring_chords(n, chord_every),
            TopologySpec::TwoTierWan {
                cores,
                edges_per_core,
            } => two_tier_wan(cores, edges_per_core),
            TopologySpec::Waxman { n, alpha, beta } => waxman(n, alpha, beta, seed),
            TopologySpec::ErdosRenyi { n, link_prob } => erdos_renyi(n, link_prob, seed),
            TopologySpec::EsnetLike => esnet_like(),
            TopologySpec::GeantLike => geant_like(),
        }
    }

    /// A short display label, e.g. `fat-tree(4)`.
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::FatTree { k } => format!("fat-tree({k})"),
            TopologySpec::RingChords { n, chord_every } => {
                format!("ring+chords({n},{chord_every})")
            }
            TopologySpec::TwoTierWan {
                cores,
                edges_per_core,
            } => format!("2-tier-wan({cores},{edges_per_core})"),
            TopologySpec::Waxman { n, .. } => format!("waxman({n})"),
            TopologySpec::ErdosRenyi { n, .. } => format!("erdos-renyi({n})"),
            TopologySpec::EsnetLike => "esnet-like".into(),
            TopologySpec::GeantLike => "geant-like".into(),
        }
    }
}

/// k-ary fat-tree (`k` even, ≥ 2): edge↔aggregation links run at
/// 10 Mbps, aggregation↔core at 20 Mbps (the classic 2:1 oversubscribed
/// datacenter fabric, scaled to the testbed's Mbps range), sub-ms
/// propagation delays.
///
/// # Panics
/// Panics if `k` is odd or zero — the fat-tree construction needs
/// `k/2`-way bundles.
pub fn fat_tree(k: usize) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even, got {k}"
    );
    let half = k / 2;
    let mut t = Topology::new();
    let cores: Vec<NodeIdx> = (0..half * half)
        .map(|i| t.add_node(&format!("core{i}"), NodeKind::Core))
        .collect();
    for p in 0..k {
        let aggs: Vec<NodeIdx> = (0..half)
            .map(|a| t.add_node(&format!("p{p}a{a}"), NodeKind::Core))
            .collect();
        let edges: Vec<NodeIdx> = (0..half)
            .map(|e| t.add_node(&format!("p{p}e{e}"), NodeKind::Edge))
            .collect();
        for &e in &edges {
            for &a in &aggs {
                t.add_link(e, a, 10.0, 0.2);
            }
        }
        for (a, &agg) in aggs.iter().enumerate() {
            for c in 0..half {
                t.add_link(agg, cores[a * half + c], 20.0, 0.5);
            }
        }
    }
    t
}

/// Ring of `n` routers (20 Mbps, 2 ms) plus antipodal express chords
/// every `chord_every` positions (10 Mbps, 5 ms).
pub fn ring_chords(n: usize, chord_every: usize) -> Topology {
    let mut t = Topology::new();
    let nodes: Vec<NodeIdx> = (0..n)
        .map(|i| t.add_node(&format!("r{i}"), NodeKind::Core))
        .collect();
    for i in 0..n {
        t.add_link(nodes[i], nodes[(i + 1) % n], 20.0, 2.0);
    }
    if chord_every >= 1 && n >= 4 {
        for i in (0..n).step_by(chord_every) {
            let j = (i + n / 2) % n;
            if j != i && t.link_between(nodes[i], nodes[j]).is_err() {
                t.add_link(nodes[i], nodes[j], 10.0, 5.0);
            }
        }
    }
    t
}

/// Two-tier WAN: a core ring with next-next-neighbor chords (40 Mbps,
/// 4 ms) and `edges_per_core` dual-homed edge routers per core
/// (10 Mbps, 1 ms) — edge `c{i}x{j}` homes to cores `i` and `i+1`.
pub fn two_tier_wan(cores: usize, edges_per_core: usize) -> Topology {
    assert!(cores >= 3, "two-tier WAN needs at least 3 cores");
    let mut t = Topology::new();
    let core: Vec<NodeIdx> = (0..cores)
        .map(|i| t.add_node(&format!("c{i}"), NodeKind::Core))
        .collect();
    for i in 0..cores {
        t.add_link(core[i], core[(i + 1) % cores], 40.0, 4.0);
    }
    if cores >= 5 {
        for i in 0..cores {
            let j = (i + 2) % cores;
            if t.link_between(core[i], core[j]).is_err() {
                t.add_link(core[i], core[j], 40.0, 6.0);
            }
        }
    }
    for i in 0..cores {
        for j in 0..edges_per_core {
            let e = t.add_node(&format!("c{i}x{j}"), NodeKind::Edge);
            t.add_link(e, core[i], 10.0, 1.0);
            t.add_link(e, core[(i + 1) % cores], 10.0, 1.0);
        }
    }
    t
}

/// Deterministically repairs connectivity: while more than one
/// component remains, links the lowest-index node of the second
/// component to the lowest-index node of the first (capacity
/// `cap_mbps`, delay `delay_ms`).
fn connect_components(t: &mut Topology, cap_mbps: f64, delay_ms: f64) {
    loop {
        let n = t.node_count();
        // BFS from node 0 over all links (up or not — this is
        // construction time, everything is up).
        let mut seen = vec![false; n];
        let mut stack = vec![NodeIdx(0)];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &(v, _) in t.neighbors(u) {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    stack.push(v);
                }
            }
        }
        match (0..n).find(|&i| !seen[i]) {
            None => return,
            Some(orphan) => {
                t.add_link(NodeIdx(0), NodeIdx(orphan as u32), cap_mbps, delay_ms);
            }
        }
    }
}

/// Waxman random geometric graph; see [`TopologySpec::Waxman`].
/// Capacities are drawn from {10, 20, 40} Mbps, delays are
/// `1 + 15 * distance` ms.
pub fn waxman(n: usize, alpha: f64, beta: f64, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let nodes: Vec<NodeIdx> = (0..n)
        .map(|i| t.add_node(&format!("w{i}"), NodeKind::Core))
        .collect();
    let scale = beta.max(1e-6) * std::f64::consts::SQRT_2;
    for i in 0..n {
        for j in i + 1..n {
            let d = ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt();
            let p = alpha * (-d / scale).exp();
            if rng.gen_range(0.0..1.0) < p {
                let cap = [10.0, 20.0, 40.0][rng.gen_range(0..3usize)];
                t.add_link(nodes[i], nodes[j], cap, 1.0 + 15.0 * d);
            }
        }
    }
    connect_components(&mut t, 20.0, 8.0);
    t
}

/// Erdős–Rényi G(n, p); see [`TopologySpec::ErdosRenyi`]. Uniform
/// 20 Mbps capacities, delays uniform in 1..6 ms.
pub fn erdos_renyi(n: usize, link_prob: f64, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let nodes: Vec<NodeIdx> = (0..n)
        .map(|i| t.add_node(&format!("g{i}"), NodeKind::Core))
        .collect();
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_range(0.0..1.0) < link_prob {
                let delay = rng.gen_range(1.0..6.0);
                t.add_link(nodes[i], nodes[j], 20.0, delay);
            }
        }
    }
    connect_components(&mut t, 20.0, 5.0);
    t
}

/// An ESnet-inspired US research backbone: 14 PoPs, 100 Mbps trunks
/// (a few 40 Mbps legacy spans), one-way delays roughly tracking
/// great-circle distance.
pub fn esnet_like() -> Topology {
    let mut t = Topology::new();
    let names = [
        "SEAT", "SACR", "SUNN", "DENV", "ALBQ", "ELPA", "HOUS", "KANS", "CHIC", "NASH", "ATLA",
        "WASH", "NEWY", "BOST",
    ];
    let nodes: Vec<NodeIdx> = names
        .iter()
        .map(|n| t.add_node(n, NodeKind::Edge))
        .collect();
    let idx = |name: &str| nodes[names.iter().position(|n| *n == name).unwrap()];
    let links: [(&str, &str, f64, f64); 20] = [
        ("SEAT", "SACR", 100.0, 10.0),
        ("SEAT", "DENV", 100.0, 13.0),
        ("SACR", "SUNN", 100.0, 2.0),
        ("SACR", "DENV", 100.0, 12.0),
        ("SUNN", "ALBQ", 100.0, 12.0),
        ("DENV", "ALBQ", 40.0, 6.0),
        ("DENV", "KANS", 100.0, 8.0),
        ("ALBQ", "ELPA", 40.0, 4.0),
        ("ELPA", "HOUS", 100.0, 9.0),
        ("HOUS", "NASH", 100.0, 10.0),
        ("KANS", "CHIC", 100.0, 7.0),
        ("KANS", "HOUS", 40.0, 9.0),
        ("CHIC", "NASH", 100.0, 6.0),
        ("CHIC", "WASH", 100.0, 9.0),
        ("NASH", "ATLA", 100.0, 3.0),
        ("ATLA", "WASH", 100.0, 8.0),
        ("WASH", "NEWY", 100.0, 3.0),
        ("NEWY", "BOST", 100.0, 3.0),
        ("NEWY", "CHIC", 100.0, 10.0),
        // Keeps every PoP 2-edge-connected: endpoint pairs must admit
        // at least two link-disjoint tunnels.
        ("BOST", "CHIC", 100.0, 12.0),
    ];
    for (a, b, cap, delay) in links {
        t.add_link(idx(a), idx(b), cap, delay);
    }
    t
}

/// A GÉANT-inspired European backbone: 14 PoPs, 100 Mbps trunks with a
/// few 40 Mbps spurs.
pub fn geant_like() -> Topology {
    let mut t = Topology::new();
    let names = [
        "LON", "AMS", "BRU", "PAR", "GEN", "FRA", "HAM", "PRA", "VIE", "MIL", "MAD", "ZUR", "WAR",
        "BUD",
    ];
    let nodes: Vec<NodeIdx> = names
        .iter()
        .map(|n| t.add_node(n, NodeKind::Edge))
        .collect();
    let idx = |name: &str| nodes[names.iter().position(|n| *n == name).unwrap()];
    let links: [(&str, &str, f64, f64); 21] = [
        ("LON", "AMS", 100.0, 4.0),
        ("LON", "PAR", 100.0, 4.0),
        ("AMS", "BRU", 100.0, 2.0),
        ("AMS", "HAM", 100.0, 4.0),
        ("AMS", "FRA", 100.0, 4.0),
        ("BRU", "PAR", 100.0, 3.0),
        ("PAR", "GEN", 100.0, 5.0),
        ("PAR", "MAD", 100.0, 10.0),
        ("GEN", "ZUR", 100.0, 3.0),
        ("GEN", "MIL", 100.0, 4.0),
        ("FRA", "ZUR", 100.0, 4.0),
        ("FRA", "HAM", 100.0, 5.0),
        ("FRA", "PRA", 100.0, 5.0),
        ("HAM", "WAR", 40.0, 8.0),
        ("PRA", "VIE", 100.0, 3.0),
        ("PRA", "WAR", 40.0, 6.0),
        ("VIE", "BUD", 100.0, 3.0),
        ("VIE", "MIL", 100.0, 6.0),
        ("MIL", "ZUR", 100.0, 3.0),
        ("MAD", "GEN", 40.0, 11.0),
        // Keeps every PoP 2-edge-connected (see esnet_like).
        ("BUD", "WAR", 100.0, 5.0),
    ];
    for (a, b, cap, delay) in links {
        t.add_link(idx(a), idx(b), cap, delay);
    }
    t
}

/// Deterministic endpoint selection for a scenario's managed traffic:
/// a double sweep — the node farthest (by shortest-path delay) from
/// the first candidate, then the node farthest from *it*. Candidates
/// are the `NodeKind::Edge` routers when the topology distinguishes
/// any (managed traffic enters at the edge), otherwise every node.
/// Ties break to the lowest node index, so a given topology always
/// yields the same pair — diametrically opposite edge switches on the
/// fat-tree, coast-to-coast PoPs on the WAN maps.
pub fn endpoints(topo: &Topology) -> (NodeIdx, NodeIdx) {
    endpoint_pairs(topo, 1)[0]
}

/// The farthest-pair generalization for a **traffic matrix of `n`
/// managed pairs**: pair 0 is exactly [`endpoints`] (the double-sweep
/// diameter pair), and every further pair greedily maximizes spread —
/// its ingress is the still-unused candidate farthest (by summed
/// shortest-path delay) from all endpoints already placed, its egress
/// the still-unused candidate farthest from that ingress. When the
/// candidate pool runs dry the used-set resets (minus the pair's own
/// ingress), so small topologies can still host several pairs. Ties
/// break to the lowest node index; a given `(topology, n)` always
/// yields the identical pair list.
pub fn endpoint_pairs(topo: &Topology, n: usize) -> Vec<(NodeIdx, NodeIdx)> {
    let mut candidates: Vec<NodeIdx> = (0..topo.node_count())
        .map(|i| NodeIdx(i as u32))
        .filter(|&n| topo.node_kind(n) == NodeKind::Edge)
        .collect();
    if candidates.len() < 2 {
        candidates = (0..topo.node_count()).map(|i| NodeIdx(i as u32)).collect();
    }
    let dist = |from: NodeIdx, to: NodeIdx| -> Option<f64> {
        topo.shortest_path_by_delay(from, to)
            .map(|p| topo.path_delay_ms(&p).unwrap_or(0.0))
    };
    // The legacy double sweep, scoped to an allowed subset.
    let farthest = |from: NodeIdx, allowed: &[NodeIdx]| -> NodeIdx {
        let mut best = (from, -1.0f64);
        for &to in allowed {
            if to == from {
                continue;
            }
            if let Some(d) = dist(from, to) {
                if d > best.1 {
                    best = (to, d);
                }
            }
        }
        best.0
    };
    let mut out = Vec::with_capacity(n.max(1));
    let mut used: Vec<NodeIdx> = Vec::new();
    let u0 = farthest(candidates[0], &candidates);
    let v0 = farthest(u0, &candidates);
    out.push((u0, v0));
    used.push(u0);
    used.push(v0);
    while out.len() < n {
        let mut unused: Vec<NodeIdx> = candidates
            .iter()
            .copied()
            .filter(|c| !used.contains(c))
            .collect();
        if unused.len() < 2 {
            // Pool exhausted: recycle the candidates so dense matrices
            // on small topologies remain possible.
            used.clear();
            unused = candidates.clone();
        }
        // Ingress: the unused candidate farthest from everything
        // placed. Spreads are computed once per candidate — recomputing
        // them inside the comparator would re-run a Dijkstra per used
        // endpoint on every comparison.
        let spreads: Vec<(NodeIdx, f64)> = unused
            .iter()
            .map(|&x| (x, used.iter().filter_map(|&u| dist(x, u)).sum::<f64>()))
            .collect();
        let ingress = spreads
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0 .0.cmp(&a.0 .0))) // ties -> lowest index
            .expect("candidate pool is non-empty")
            .0;
        let remaining: Vec<NodeIdx> = unused.iter().copied().filter(|&c| c != ingress).collect();
        let egress = farthest(ingress, &remaining);
        out.push((ingress, egress));
        used.push(ingress);
        used.push(egress);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connected(t: &Topology) -> bool {
        let n = t.node_count();
        (1..n).all(|i| {
            t.shortest_path_by_delay(NodeIdx(0), NodeIdx(i as u32))
                .is_some()
        })
    }

    #[test]
    fn fat_tree_4_inventory() {
        let t = fat_tree(4);
        // 4 cores + 4 pods * (2 agg + 2 edge) = 20 nodes; 16 edge-agg
        // + 16 agg-core = 32 links.
        assert_eq!(t.node_count(), 20);
        assert_eq!(t.link_count(), 32);
        assert!(connected(&t));
        // Every edge switch can reach every other over >= 2 disjoint-ish
        // paths (k-shortest finds at least 2 between remote pods).
        let a = t.node("p0e0").unwrap();
        let b = t.node("p3e1").unwrap();
        assert!(t.k_shortest_paths(a, b, 3).len() >= 2);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_rejects_odd_arity() {
        fat_tree(3);
    }

    #[test]
    fn ring_and_two_tier_are_connected_and_multipath() {
        let r = ring_chords(16, 4);
        assert!(connected(&r));
        assert_eq!(r.node_count(), 16);
        let w = two_tier_wan(6, 2);
        assert!(connected(&w));
        assert_eq!(w.node_count(), 6 + 12);
        // Dual-homed edges: degree 2.
        assert_eq!(w.degree(w.node("c0x0").unwrap()), 2);
    }

    #[test]
    fn random_families_are_connected_and_deterministic() {
        for seed in [1u64, 7, 42] {
            let a = waxman(24, 0.9, 0.4, seed);
            let b = waxman(24, 0.9, 0.4, seed);
            assert!(connected(&a), "waxman seed {seed}");
            assert_eq!(a.link_count(), b.link_count());
            for (la, lb) in a.links().iter().zip(b.links()) {
                assert_eq!(
                    (la.a, la.b, la.capacity_mbps, la.delay_ms),
                    (lb.a, lb.b, lb.capacity_mbps, lb.delay_ms)
                );
            }
            let e = erdos_renyi(20, 0.15, seed);
            assert!(connected(&e), "erdos seed {seed}");
        }
        // Different seeds give different graphs.
        let fingerprint = |t: &Topology| -> Vec<(u32, u32, u64)> {
            t.links()
                .iter()
                .map(|l| (l.a.0, l.b.0, l.delay_ms.to_bits()))
                .collect()
        };
        assert_ne!(
            fingerprint(&waxman(24, 0.9, 0.4, 1)),
            fingerprint(&waxman(24, 0.9, 0.4, 2))
        );
    }

    #[test]
    fn wan_maps_are_connected() {
        for t in [esnet_like(), geant_like()] {
            assert_eq!(t.node_count(), 14);
            assert!(connected(&t));
        }
        // Coast-to-coast delay is continental.
        let t = esnet_like();
        let p = t
            .shortest_path_by_delay(t.node("SEAT").unwrap(), t.node("BOST").unwrap())
            .unwrap();
        assert!(t.path_delay_ms(&p).unwrap() > 20.0);
    }

    #[test]
    fn endpoints_are_stable_and_far_apart() {
        let t = fat_tree(4);
        let (a, b) = endpoints(&t);
        assert_eq!((a, b), endpoints(&t));
        assert_ne!(a, b);
        // Both land on edge switches (the only nodes behind 10 Mbps
        // access links), in different pods.
        assert!(t.node_name(a).contains('e'));
        assert!(t.node_name(b).contains('e'));
        assert_ne!(t.node_name(a)[..2], t.node_name(b)[..2]);
    }

    #[test]
    fn endpoint_pairs_generalize_the_farthest_pair() {
        for t in [fat_tree(4), esnet_like(), geant_like()] {
            // Pair 0 is exactly the legacy diameter pair.
            assert_eq!(endpoint_pairs(&t, 1), vec![endpoints(&t)]);
            assert_eq!(endpoint_pairs(&t, 4), endpoint_pairs(&t, 4), "stable");
            let pairs = endpoint_pairs(&t, 4);
            assert_eq!(pairs.len(), 4);
            // Every pair has distinct endpoints and no duplicate pair.
            for (i, &(a, b)) in pairs.iter().enumerate() {
                assert_ne!(a, b, "{}: pair {i} degenerate", t.node_name(a));
                for &(c, d) in &pairs[i + 1..] {
                    assert_ne!((a, b), (c, d), "duplicate pair");
                }
            }
        }
        // Fat-tree has 8 edge switches: 4 pairs use each at most once.
        let t = fat_tree(4);
        let pairs = endpoint_pairs(&t, 4);
        let mut all: Vec<NodeIdx> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 8, "{pairs:?}");
        // Each multi-pair endpoint pair still offers >= 2 disjoint
        // tunnels (the cut a routing policy needs).
        for &(a, b) in &pairs {
            assert!(t.k_disjoint_shortest_paths(a, b, 2).len() >= 2);
        }
    }

    #[test]
    fn endpoint_pairs_recycle_on_tiny_topologies() {
        // 3 nodes, 6 requested pairs: the pool recycles instead of
        // panicking, and every pair stays non-degenerate.
        let t = ring_chords(3, 0);
        let pairs = endpoint_pairs(&t, 6);
        assert_eq!(pairs.len(), 6);
        for &(a, b) in &pairs {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn catalog_families_offer_disjoint_tunnels_between_endpoints() {
        // A scenario with fewer than two disjoint tunnels can't
        // differentiate routing policies — every catalog topology must
        // give its chosen endpoints a cut of at least 2.
        for spec in [
            TopologySpec::FatTree { k: 4 },
            TopologySpec::RingChords {
                n: 24,
                chord_every: 4,
            },
            TopologySpec::TwoTierWan {
                cores: 6,
                edges_per_core: 2,
            },
            TopologySpec::Waxman {
                n: 24,
                alpha: 0.9,
                beta: 0.4,
            },
            TopologySpec::EsnetLike,
            TopologySpec::GeantLike,
        ] {
            for seed in [101u64, 104, 105] {
                let t = spec.build(seed);
                let (a, b) = endpoints(&t);
                let paths = t.k_disjoint_shortest_paths(a, b, 3);
                assert!(
                    paths.len() >= 2,
                    "{} seed {seed}: only {} disjoint path(s) between {} and {}",
                    spec.label(),
                    paths.len(),
                    t.node_name(a),
                    t.node_name(b)
                );
            }
        }
    }

    #[test]
    fn spec_build_covers_every_family() {
        let specs = [
            TopologySpec::FatTree { k: 4 },
            TopologySpec::RingChords {
                n: 12,
                chord_every: 3,
            },
            TopologySpec::TwoTierWan {
                cores: 5,
                edges_per_core: 1,
            },
            TopologySpec::Waxman {
                n: 16,
                alpha: 0.9,
                beta: 0.4,
            },
            TopologySpec::ErdosRenyi {
                n: 16,
                link_prob: 0.2,
            },
            TopologySpec::EsnetLike,
            TopologySpec::GeantLike,
        ];
        for s in specs {
            let t = s.build(3);
            assert!(t.node_count() >= 5, "{}", s.label());
            assert!(connected(&t), "{}", s.label());
            assert!(!s.label().is_empty());
        }
    }
}
