//! Scripted event timelines: link failures, flap storms and
//! maintenance drains, compiled against a concrete topology + primary
//! tunnel into a flat list of per-epoch link actions the runner applies
//! through the framework's `set_link_state` / capacity hooks.

use crate::ScenarioError;
use netsim::{NodeIdx, Topology};

/// How an event selects its victim link.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkPick {
    /// The link between two named routers.
    Between(String, String),
    /// The h-th hop of the primary tunnel (`tunnel1`, the shortest
    /// path), clamped to the path length — `PrimaryHop(1)` is the first
    /// router-to-router hop, the classic "failure that actually hurts".
    PrimaryHop(usize),
    /// The i-th link of the topology's link list (for reproducing a
    /// specific random-graph case).
    ByIndex(usize),
}

/// One scripted impairment.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Hard link failure, optionally restored after a hold-down.
    LinkDown {
        /// Victim link.
        link: LinkPick,
        /// Epochs until restoration; `None` = permanent.
        restore_after: Option<u64>,
    },
    /// A flap storm: the link goes down/up `flaps` times, one cycle per
    /// `period_epochs` (down for half the period, at least one epoch).
    FlapStorm {
        /// Victim link.
        link: LinkPick,
        /// Number of down/up cycles.
        flaps: u32,
        /// Cycle length in epochs.
        period_epochs: u64,
    },
    /// Maintenance drain / capacity degradation: the link's capacity is
    /// multiplied by `factor`, optionally restored later.
    Drain {
        /// Victim link.
        link: LinkPick,
        /// Capacity multiplier in (0..1].
        factor: f64,
        /// Epochs until full capacity returns; `None` = permanent.
        restore_after: Option<u64>,
    },
}

/// An event plus when it fires.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Epoch at which the impairment starts.
    pub at_epoch: u64,
    /// What happens.
    pub kind: EventKind,
}

/// What the runner does to a link at one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkAction {
    /// Fail (false) or restore (true).
    SetUp(bool),
    /// Scale the link's raw capacity by this factor (1.0 = restored).
    SetScale(f64),
}

/// A compiled, concrete action: which named link, when, what — plus
/// whether this action *starts* a failure (the recovery-time clock).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAction {
    /// Epoch the action applies at.
    pub epoch: u64,
    /// One endpoint (router name).
    pub a: String,
    /// Other endpoint (router name).
    pub b: String,
    /// The action.
    pub action: LinkAction,
    /// True for the initial down of a `LinkDown` / `FlapStorm` — the
    /// scorecard measures recovery time from these epochs.
    pub starts_failure: bool,
}

fn resolve(
    pick: &LinkPick,
    topo: &Topology,
    primary: &[NodeIdx],
) -> Result<(String, String), ScenarioError> {
    let named =
        |a: NodeIdx, b: NodeIdx| (topo.node_name(a).to_string(), topo.node_name(b).to_string());
    match pick {
        LinkPick::Between(a, b) => {
            let (na, nb) = (topo.node(a)?, topo.node(b)?);
            topo.link_between(na, nb)?;
            Ok((a.clone(), b.clone()))
        }
        LinkPick::PrimaryHop(h) => {
            if primary.len() < 2 {
                return Err(ScenarioError::Config("primary path too short".into()));
            }
            let h = (*h).min(primary.len() - 2);
            Ok(named(primary[h], primary[h + 1]))
        }
        LinkPick::ByIndex(i) => {
            let link = topo
                .links()
                .get(*i)
                .ok_or_else(|| ScenarioError::Config(format!("no link #{i}")))?;
            Ok(named(link.a, link.b))
        }
    }
}

/// Compiles a timeline against a topology and the primary tunnel path.
/// Actions come out sorted by epoch (stable within an epoch: spec
/// order), so the runner can walk them with a cursor.
pub fn compile_events(
    specs: &[EventSpec],
    topo: &Topology,
    primary: &[NodeIdx],
) -> Result<Vec<CompiledAction>, ScenarioError> {
    let mut out = Vec::new();
    for spec in specs {
        match &spec.kind {
            EventKind::LinkDown {
                link,
                restore_after,
            } => {
                let (a, b) = resolve(link, topo, primary)?;
                out.push(CompiledAction {
                    epoch: spec.at_epoch,
                    a: a.clone(),
                    b: b.clone(),
                    action: LinkAction::SetUp(false),
                    starts_failure: true,
                });
                if let Some(d) = restore_after {
                    out.push(CompiledAction {
                        epoch: spec.at_epoch + (*d).max(1),
                        a,
                        b,
                        action: LinkAction::SetUp(true),
                        starts_failure: false,
                    });
                }
            }
            EventKind::FlapStorm {
                link,
                flaps,
                period_epochs,
            } => {
                let (a, b) = resolve(link, topo, primary)?;
                let period = (*period_epochs).max(2);
                let down_for = (period / 2).max(1);
                for i in 0..*flaps {
                    let at = spec.at_epoch + i as u64 * period;
                    out.push(CompiledAction {
                        epoch: at,
                        a: a.clone(),
                        b: b.clone(),
                        action: LinkAction::SetUp(false),
                        starts_failure: i == 0,
                    });
                    out.push(CompiledAction {
                        epoch: at + down_for,
                        a: a.clone(),
                        b: b.clone(),
                        action: LinkAction::SetUp(true),
                        starts_failure: false,
                    });
                }
            }
            EventKind::Drain {
                link,
                factor,
                restore_after,
            } => {
                if !(*factor > 0.0 && *factor <= 1.0) {
                    return Err(ScenarioError::Config(format!(
                        "drain factor {factor} outside (0, 1]"
                    )));
                }
                let (a, b) = resolve(link, topo, primary)?;
                out.push(CompiledAction {
                    epoch: spec.at_epoch,
                    a: a.clone(),
                    b: b.clone(),
                    action: LinkAction::SetScale(*factor),
                    starts_failure: false,
                });
                if let Some(d) = restore_after {
                    out.push(CompiledAction {
                        epoch: spec.at_epoch + (*d).max(1),
                        a,
                        b,
                        action: LinkAction::SetScale(1.0),
                        starts_failure: false,
                    });
                }
            }
        }
    }
    out.sort_by_key(|a| a.epoch);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn primary(topo: &Topology) -> Vec<NodeIdx> {
        let (s, d) = zoo::endpoints(topo);
        topo.shortest_path_by_delay(s, d).unwrap()
    }

    #[test]
    fn link_down_with_restore_compiles_to_two_actions() {
        let t = zoo::fat_tree(4);
        let p = primary(&t);
        let acts = compile_events(
            &[EventSpec {
                at_epoch: 10,
                kind: EventKind::LinkDown {
                    link: LinkPick::PrimaryHop(1),
                    restore_after: Some(5),
                },
            }],
            &t,
            &p,
        )
        .unwrap();
        assert_eq!(acts.len(), 2);
        assert_eq!(acts[0].epoch, 10);
        assert!(acts[0].starts_failure);
        assert_eq!(acts[0].action, LinkAction::SetUp(false));
        assert_eq!(acts[1].epoch, 15);
        assert_eq!(acts[1].action, LinkAction::SetUp(true));
        // The victim is the primary path's second hop.
        assert_eq!(acts[0].a, t.node_name(p[1]));
        assert_eq!(acts[0].b, t.node_name(p[2]));
    }

    #[test]
    fn flap_storm_marks_one_failure_and_alternates() {
        let t = zoo::ring_chords(12, 3);
        let p = primary(&t);
        let acts = compile_events(
            &[EventSpec {
                at_epoch: 4,
                kind: EventKind::FlapStorm {
                    link: LinkPick::PrimaryHop(0),
                    flaps: 3,
                    period_epochs: 4,
                },
            }],
            &t,
            &p,
        )
        .unwrap();
        assert_eq!(acts.len(), 6);
        assert_eq!(acts.iter().filter(|a| a.starts_failure).count(), 1);
        let epochs: Vec<u64> = acts.iter().map(|a| a.epoch).collect();
        assert_eq!(epochs, vec![4, 6, 8, 10, 12, 14]);
        // Sorted + alternating down/up.
        for (i, a) in acts.iter().enumerate() {
            assert_eq!(a.action, LinkAction::SetUp(i % 2 == 1));
        }
    }

    #[test]
    fn drain_validates_factor_and_primary_hop_clamps() {
        let t = zoo::geant_like();
        let p = primary(&t);
        assert!(compile_events(
            &[EventSpec {
                at_epoch: 0,
                kind: EventKind::Drain {
                    link: LinkPick::PrimaryHop(0),
                    factor: 1.5,
                    restore_after: None,
                },
            }],
            &t,
            &p,
        )
        .is_err());
        // A hop index past the path end clamps to the last hop.
        let acts = compile_events(
            &[EventSpec {
                at_epoch: 3,
                kind: EventKind::Drain {
                    link: LinkPick::PrimaryHop(999),
                    factor: 0.25,
                    restore_after: Some(4),
                },
            }],
            &t,
            &p,
        )
        .unwrap();
        assert_eq!(acts[0].a, t.node_name(p[p.len() - 2]));
        assert_eq!(acts[0].action, LinkAction::SetScale(0.25));
        assert_eq!(acts[1].action, LinkAction::SetScale(1.0));
    }

    #[test]
    fn named_and_indexed_picks_resolve() {
        let t = zoo::esnet_like();
        let p = primary(&t);
        let acts = compile_events(
            &[
                EventSpec {
                    at_epoch: 1,
                    kind: EventKind::LinkDown {
                        link: LinkPick::Between("DENV".into(), "KANS".into()),
                        restore_after: None,
                    },
                },
                EventSpec {
                    at_epoch: 0,
                    kind: EventKind::LinkDown {
                        link: LinkPick::ByIndex(0),
                        restore_after: None,
                    },
                },
            ],
            &t,
            &p,
        )
        .unwrap();
        // Sorted by epoch.
        assert_eq!(acts[0].epoch, 0);
        assert_eq!((acts[0].a.as_str(), acts[0].b.as_str()), ("SEAT", "SACR"));
        assert_eq!((acts[1].a.as_str(), acts[1].b.as_str()), ("DENV", "KANS"));
        // Unknown node errors.
        assert!(compile_events(
            &[EventSpec {
                at_epoch: 0,
                kind: EventKind::LinkDown {
                    link: LinkPick::Between("NOPE".into(), "KANS".into()),
                    restore_after: None,
                },
            }],
            &t,
            &p,
        )
        .is_err());
    }
}
