//! The scenario engine: a benchmark harness that asks whether the
//! ML-driven source-routing loop still wins once it leaves the paper's
//! single testbed.
//!
//! The paper evaluates Hecate+PolKA on one fixed Global P4 Lab subset;
//! related work (NeuRoute's time-varying traffic matrices, Valadarsky
//! et al.'s insistence on many topologies and demand patterns) shows a
//! learned routing system has to be judged across a *population* of
//! conditions. This crate provides that population, deterministically:
//!
//! * [`zoo`] — parametric topology generators (fat-tree, ring+chords,
//!   two-tier WAN, Waxman and Erdős–Rényi random graphs, ESnet- and
//!   GÉANT-inspired real-WAN maps), all emitting `netsim::Topology`;
//! * [`traffic`] — traffic-matrix generators (gravity demands, diurnal
//!   sinusoids, elephant/mice mixes, bursty on/off sources) compiled to
//!   per-link background-load series;
//! * [`elastic`] — elastic background *flows* (greedy elephants plus
//!   churning demand-limited mice) compiled into real `netsim` events
//!   that compete in the max-min water-fill alongside managed flows —
//!   the 100k-flow workload behind the `scale-1k` scenario;
//! * [`events`] — scripted failure timelines (link failures, flap
//!   storms, maintenance drains) applied through the framework's
//!   `set_link_state` / `set_link_capacity` hooks;
//! * [`runner`] — executes a [`runner::Scenario`] end-to-end through
//!   `framework::SelfDrivingNetwork` (fluid, or packet-level via
//!   `attach_dataplane`) under a routing [`runner::Policy`];
//! * [`observe`] — opt-in sim-time observability for a run
//!   ([`runner::Scenario::run_observed`]): structured traces of the
//!   whole control loop (exportable as JSONL or a Perfetto-loadable
//!   Chrome trace), per-epoch metric snapshots folded into the
//!   scorecard, and flight-recorder dumps on SLO-violation epochs;
//! * [`scorecard`] — the resulting [`scorecard::Scorecard`] (aggregate
//!   goodput, p50/p99 per-flow throughput, SLO-violation epochs,
//!   migrations, post-failure recovery times) and the policy-matrix
//!   rendering;
//! * [`mod@catalog`] — canned (topology × traffic × events) scenarios
//!   with fixed seeds, the `repro scenarios` suite.
//!
//! **Determinism is the contract**: every scenario replays to a
//! bit-identical scorecard from its `u64` seed (property-tested in
//! `tests/determinism.rs`). One epoch is one simulated second — the
//! paper's 1 Hz telemetry cadence.

pub mod catalog;
pub mod elastic;
pub mod events;
pub mod observe;
pub mod runner;
pub mod scorecard;
pub mod traffic;
pub mod zoo;

pub use catalog::{catalog, catalog_smoke, scale_1k, scale_1k_smoke};
pub use elastic::ElasticSpec;
pub use observe::{ObsvArtifacts, ObsvOptions};
pub use runner::{FlowPlan, PlaneMode, Policy, Scenario};
pub use scorecard::{render_matrix, MetricsSection, PairScore, Recovery, Scorecard};
pub use traffic::TrafficSpec;
pub use zoo::TopologySpec;

/// Errors from scenario construction or execution.
#[derive(Debug)]
pub enum ScenarioError {
    /// The scenario description is internally inconsistent.
    Config(String),
    /// The framework layer failed while driving the scenario.
    Framework(framework::FrameworkError),
    /// The emulator rejected an event or path.
    Netsim(netsim::NetsimError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Config(m) => write!(f, "scenario config error: {m}"),
            ScenarioError::Framework(e) => write!(f, "framework failure: {e}"),
            ScenarioError::Netsim(e) => write!(f, "emulator failure: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<framework::FrameworkError> for ScenarioError {
    fn from(e: framework::FrameworkError) -> Self {
        ScenarioError::Framework(e)
    }
}

impl From<netsim::NetsimError> for ScenarioError {
    fn from(e: netsim::NetsimError) -> Self {
        ScenarioError::Netsim(e)
    }
}
