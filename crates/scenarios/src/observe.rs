//! Observability plumbing for scenario runs: what to record, and what
//! an observed run hands back besides its scorecard.
//!
//! The runner owns the [`obsv::Obsv`] bundle for a run — it builds the
//! sink stack from [`ObsvOptions`], threads the bundle through
//! `SelfDrivingNetwork::set_obsv` (which fans it out to the fluid sim,
//! the Hecate cache and the packet plane), and folds the results into
//! [`ObsvArtifacts`]. Everything here is deterministic: records are
//! stamped in simulation nanoseconds, so two observed runs of the same
//! scenario produce byte-identical JSONL (proptest-pinned in
//! `tests/determinism.rs`).

use std::sync::Arc;

/// Default cap on SLO-violation flight dumps per run. Violations can
/// recur every epoch; the artifacts must stay bounded. Override per
/// run via [`ObsvOptions::max_slo_dumps`].
pub const MAX_SLO_DUMPS: usize = 4;

/// What the runner should observe beyond the scorecard. The default is
/// fully off — [`Scenario::run`](crate::Scenario::run) uses it, and the
/// run then carries a no-op tracer that emits and allocates nothing.
#[derive(Clone)]
pub struct ObsvOptions {
    /// Buffer every trace record in memory for export.
    pub trace: bool,
    /// Fold per-epoch metric snapshots into the scorecard's
    /// [`MetricsSection`](crate::scorecard::MetricsSection).
    pub snapshots: bool,
    /// Flight-recorder ring capacity in records; `0` disables it. When
    /// on, the tail of the trace is dumped on SLO-violation epochs
    /// (bounded by [`ObsvOptions::max_slo_dumps`]).
    pub flight_capacity: usize,
    /// How many SLO-violation flight dumps this run keeps (first
    /// violations win). Defaults to [`MAX_SLO_DUMPS`]; `0` keeps none.
    pub max_slo_dumps: usize,
    /// Extra sink fanned out alongside the built-ins — the bench
    /// harness hangs its wall-clock profiler here.
    pub extra_sink: Option<Arc<dyn obsv::TraceSink>>,
}

impl Default for ObsvOptions {
    fn default() -> Self {
        ObsvOptions {
            trace: false,
            snapshots: false,
            flight_capacity: 0,
            max_slo_dumps: MAX_SLO_DUMPS,
            extra_sink: None,
        }
    }
}

impl std::fmt::Debug for ObsvOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsvOptions")
            .field("trace", &self.trace)
            .field("snapshots", &self.snapshots)
            .field("flight_capacity", &self.flight_capacity)
            .field("max_slo_dumps", &self.max_slo_dumps)
            .field("extra_sink", &self.extra_sink.is_some())
            .finish()
    }
}

impl ObsvOptions {
    /// Nothing observed; the run is exactly `Scenario::run`.
    pub fn off() -> Self {
        ObsvOptions::default()
    }

    /// Everything on: full trace buffer, per-epoch metric snapshots,
    /// and a 4096-record flight recorder.
    pub fn full() -> Self {
        ObsvOptions {
            trace: true,
            snapshots: true,
            flight_capacity: 4096,
            max_slo_dumps: MAX_SLO_DUMPS,
            extra_sink: None,
        }
    }

    /// Whether any sink needs to be attached at all.
    pub fn any_sink(&self) -> bool {
        self.trace || self.flight_capacity > 0 || self.extra_sink.is_some()
    }
}

/// What one observed run produced besides its scorecard.
#[derive(Debug, Default)]
pub struct ObsvArtifacts {
    /// Every trace record, in emission order (empty unless
    /// [`ObsvOptions::trace`] was set).
    pub records: Vec<obsv::TraceRecord>,
    /// Final registry snapshot (present when snapshots were on).
    pub metrics: Option<obsv::MetricsSnapshot>,
    /// `(epoch, JSONL dump)` flight-recorder captures from
    /// SLO-violation epochs, at most [`ObsvOptions::max_slo_dumps`].
    pub slo_dumps: Vec<(u64, String)>,
}

impl ObsvArtifacts {
    /// The full trace as JSONL (one record per line) — the
    /// byte-identical replay artifact.
    pub fn jsonl(&self) -> String {
        obsv::export::jsonl(&self.records)
    }

    /// The full trace as Chrome trace-event JSON (load in Perfetto or
    /// `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        obsv::export::chrome_trace(&self.records)
    }

    /// Names of distinct spans present in the trace, sorted.
    pub fn span_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .records
            .iter()
            .filter(|r| r.kind == obsv::RecordKind::Begin)
            .map(|r| r.name)
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}
