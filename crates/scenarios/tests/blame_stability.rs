//! SLO blame stability across water-fill solve modes.
//!
//! The controller can keep its shared-link max-min solution either by
//! full recompute or by incrementally patching a standing
//! [`framework::SharedWaterfill`] (`SolveMode`). Both modes are pinned
//! bit-identical at the optimizer layer; this test pins the claim one
//! layer up where it matters operationally: the *blame list* on a
//! scorecard — the operator-facing "why did the SLO break" answer —
//! must not depend on how the water-fill was computed.
//!
//! The scenario is the catalog's multi-pair WAN with its link failure
//! swapped for a permanent heavy maintenance drain: capacity collapses
//! under the primary pair's feet but no link is ever down, so the
//! violations classify as `waterfill-saturation` — exactly the blame
//! cause whose evidence joins the water-fill solve counters and the
//! squeezed-tunnel scan.

use framework::{OptimizerConfig, SolveMode};
use scenarios::events::{EventKind, EventSpec, LinkPick};
use scenarios::{catalog, Policy, Scenario};

/// The catalog's `wan-multipair` at half horizon, with the scripted
/// failure replaced by a permanent 50x drain on the primary's first
/// backbone hop.
fn drained_multipair(mode: SolveMode) -> Scenario {
    let mut s = catalog()
        .into_iter()
        .find(|s| s.name == "wan-multipair")
        .expect("catalog has the multi-pair WAN")
        .scaled(0.5);
    s.events = vec![EventSpec {
        at_epoch: 10,
        kind: EventKind::Drain {
            link: LinkPick::PrimaryHop(1),
            factor: 0.02,
            restore_after: None,
        },
    }];
    s.optimizer = OptimizerConfig {
        mode,
        ..Default::default()
    };
    s
}

#[test]
fn blames_are_bit_identical_across_solve_modes() {
    for policy in Policy::all() {
        let incremental = drained_multipair(SolveMode::Incremental)
            .run(policy)
            .unwrap();
        let full = drained_multipair(SolveMode::FullRecompute)
            .run(policy)
            .unwrap();
        // The whole scorecard — blames included — is bitwise equal:
        // the solve mode moves *how* the allocation is computed, never
        // what it is or how a violation is explained.
        assert_eq!(incremental, full, "{policy:?}");
        assert_eq!(incremental.blames, full.blames, "{policy:?}");
    }
}

#[test]
fn the_drain_produces_waterfill_saturation_blames() {
    // Static routing parks the demand flow on the drained primary: it
    // violates persistently with no link down, so attribution lands on
    // the water-fill, and both solve modes tell the same story.
    let card = drained_multipair(SolveMode::Incremental)
        .run(Policy::StaticShortest)
        .unwrap();
    let saturated: Vec<_> = card
        .blames
        .iter()
        .filter(|b| b.cause == obsv_analyze::BlameCause::WaterfillSaturation)
        .collect();
    assert!(
        !saturated.is_empty(),
        "permanent drain must saturate the water-fill: {:?}",
        card.blames
    );
    for b in &saturated {
        assert!(b.detail.contains("drain"), "{b:?}");
        assert!(!b.flows.is_empty(), "{b:?}");
    }
    let full = drained_multipair(SolveMode::FullRecompute)
        .run(Policy::StaticShortest)
        .unwrap();
    assert_eq!(card.blames, full.blames);
}
