//! The scenario engine's two contracts:
//!
//! 1. **Determinism** — any `(seed, scenario-config, policy)` triple
//!    replays to a *bit-identical* `Scorecard` (every float compared
//!    exactly). This is what makes scorecards comparable across
//!    machines and policy rows comparable to each other.
//! 2. **Recovery** — on `fat_tree(4)` with no background traffic, a
//!    scripted single-link failure of the primary tunnel is always
//!    routed around within one policy decision interval (plus the TCP
//!    ramp), for both adaptive policies.

use proptest::prelude::*;
use scenarios::events::{EventKind, EventSpec, LinkPick};
use scenarios::{
    catalog_smoke, FlowPlan, ObsvOptions, PlaneMode, Policy, Scenario, TopologySpec, TrafficSpec,
};

fn replayable(
    seed: u64,
    horizon: u64,
    topology: TopologySpec,
    traffic: TrafficSpec,
    pair_count: usize,
) -> Scenario {
    // Managed flows spread round-robin across the declared pairs, so
    // every pair of a multi-pair matrix actually carries traffic.
    let flows = vec![
        FlowPlan {
            label: "a".into(),
            demand_mbps: None,
            start_epoch: 0,
            pair: 0,
        },
        FlowPlan {
            label: "b".into(),
            demand_mbps: Some(3.0),
            start_epoch: 1,
            pair: 1 % pair_count,
        },
        FlowPlan {
            label: "c".into(),
            demand_mbps: None,
            start_epoch: 2,
            pair: 2 % pair_count,
        },
        FlowPlan {
            label: "d".into(),
            demand_mbps: Some(2.0),
            start_epoch: 3,
            pair: 3 % pair_count,
        },
    ];
    Scenario {
        name: "prop".into(),
        topology,
        traffic,
        events: vec![EventSpec {
            at_epoch: horizon / 2,
            kind: EventKind::LinkDown {
                link: LinkPick::PrimaryHop(1),
                restore_after: Some(4),
            },
        }],
        flows,
        pairs: pair_count,
        horizon_epochs: horizon,
        decision_every: 5,
        k_tunnels: if pair_count > 1 { 2 } else { 3 },
        slo_fraction: 0.8,
        optimizer: Default::default(),
        plane: PlaneMode::Fluid,
        elastic: None,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (seed, topology family, traffic family, pair count 1..=4,
    /// policy) replays to a bit-identical scorecard — the multi-pair
    /// generalization of the original single-pair contract.
    #[test]
    fn any_seed_and_config_replays_bit_identically(
        seed in 0u64..10_000,
        topo_pick in 0usize..4,
        traffic_pick in 0usize..4,
        pair_count in 1usize..=4,
        policy_pick in 0usize..3,
    ) {
        let topology = match topo_pick {
            0 => TopologySpec::FatTree { k: 4 },
            1 => TopologySpec::RingChords { n: 12, chord_every: 3 },
            2 => TopologySpec::Waxman { n: 14, alpha: 0.9, beta: 0.4 },
            _ => TopologySpec::ErdosRenyi { n: 14, link_prob: 0.25 },
        };
        let traffic = match traffic_pick {
            0 => TrafficSpec::Gravity { pairs: 6, total_mbps: 30.0 },
            1 => TrafficSpec::DiurnalGravity {
                pairs: 5, total_mbps: 25.0, amplitude: 0.5, period_epochs: 12.0,
            },
            2 => TrafficSpec::ElephantMice {
                elephants: 2, mice: 6, elephant_mbps: 3.0, mouse_mbps: 1.0, mouse_epochs: 3,
            },
            _ => TrafficSpec::OnOff { sources: 5, rate_mbps: 3.0, p_on: 0.3, p_off: 0.4 },
        };
        let policy = Policy::all()[policy_pick];
        let scenario = replayable(seed, 16, topology, traffic, pair_count);
        let first = scenario.run(policy).unwrap();
        let second = scenario.run(policy).unwrap();
        prop_assert_eq!(&first, &second, "scorecards must replay bit-identically");
        prop_assert_eq!(first.per_pair.len(), pair_count);
        // ... and the aggregate series is bitwise equal too (PartialEq
        // covers it, but make the contract explicit).
        prop_assert_eq!(
            first.aggregate_series.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            second.aggregate_series.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// The trace contract: two fully observed runs of the same
    /// (seed, config, policy) serialize to **byte-identical** JSONL and
    /// Chrome traces — observability artifacts replay exactly like
    /// scorecards do, because records are stamped in sim time, never
    /// wall clock.
    #[test]
    fn traced_runs_serialize_byte_identically(
        seed in 0u64..10_000,
        policy_pick in 0usize..3,
        pair_count in 1usize..=3,
    ) {
        let scenario = replayable(
            seed,
            12,
            TopologySpec::FatTree { k: 4 },
            TrafficSpec::Gravity { pairs: 6, total_mbps: 30.0 },
            pair_count,
        );
        let policy = Policy::all()[policy_pick];
        let opts = ObsvOptions::full();
        let (card_a, art_a) = scenario.run_observed(policy, &opts).unwrap();
        let (card_b, art_b) = scenario.run_observed(policy, &opts).unwrap();
        prop_assert_eq!(&card_a, &card_b, "observed scorecards must replay bit-identically");
        prop_assert!(!art_a.records.is_empty(), "a traced run must emit records");
        prop_assert_eq!(art_a.jsonl(), art_b.jsonl(), "JSONL must be byte-identical");
        let chrome = art_a.chrome_trace();
        prop_assert_eq!(&chrome, &art_b.chrome_trace(), "Chrome traces must be byte-identical");
        // ... and the Chrome export is valid JSON with one event per record.
        let parsed = obsv::export::parse_json(&chrome).unwrap();
        let events = parsed.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        prop_assert_eq!(events.len(), art_a.records.len());
    }
}

/// Every canned catalog entry (smoke-scaled, including the packet-plane
/// one) replays bit-identically under the full policy matrix.
#[test]
fn smoke_catalog_matrix_replays_bit_identically() {
    for scenario in catalog_smoke() {
        let a = scenario.run_matrix().unwrap();
        let b = scenario.run_matrix().unwrap();
        assert_eq!(a, b, "{} must replay bit-identically", scenario.name);
        assert_eq!(a.len(), 3);
    }
}

/// Different seeds genuinely change the outcome (the engine is seeded,
/// not constant).
#[test]
fn different_seeds_differ() {
    let traffic = TrafficSpec::Gravity {
        pairs: 6,
        total_mbps: 30.0,
    };
    let a = replayable(1, 16, TopologySpec::FatTree { k: 4 }, traffic.clone(), 1)
        .run(Policy::Hecate)
        .unwrap();
    let b = replayable(2, 16, TopologySpec::FatTree { k: 4 }, traffic, 1)
        .run(Policy::Hecate)
        .unwrap();
    assert_ne!(a.aggregate_series, b.aggregate_series);
}

/// The multi-pair acceptance contract: the `wan-multipair` catalog
/// entry replays bit-identically, and the shared-link-aware Hecate
/// policy delivers at least static-shortest's aggregate goodput while
/// the optimizer's no-oversubscription invariant holds (unit-tested in
/// `framework::optimizer` and `tests/multipair.rs`).
#[test]
fn wan_multipair_catalog_replays_and_hecate_beats_static() {
    let scenario = scenarios::catalog()
        .into_iter()
        .find(|s| s.name == "wan-multipair")
        .expect("catalog has the multi-pair WAN");
    let a = scenario.run_matrix().unwrap();
    let b = scenario.run_matrix().unwrap();
    assert_eq!(a, b, "multi-pair matrix must replay bit-identically");
    let card = |p: Policy| a.iter().find(|c| c.policy == p.name()).unwrap();
    let hecate = card(Policy::Hecate);
    let fixed = card(Policy::StaticShortest);
    assert!(
        hecate.mean_aggregate_mbps >= fixed.mean_aggregate_mbps,
        "hecate {} must not lose to static {} on the traffic matrix",
        hecate.mean_aggregate_mbps,
        fixed.mean_aggregate_mbps
    );
    // The permanent primary failure is attributable: the aggregate
    // line decomposes into four per-pair rows.
    assert_eq!(hecate.per_pair.len(), 4);
    assert!(hecate.per_pair.iter().all(|p| p.mean_goodput_mbps > 0.0));
}

/// Regression: a scripted single-link failure on `fat_tree(4)` with no
/// background traffic is routed around within the policy's decision
/// interval plus a short TCP-ramp grace, for both adaptive policies.
/// Static routing, parked on the dead primary, must *not* recover —
/// that contrast is the point of the scenario engine.
///
/// The managed flows are demand-limited and sized so the surviving
/// tunnel can carry all of them: full recovery is physically possible,
/// so the only question is whether the policy gets there in time.
/// (The fat-tree edge has an uplink cut of 2, so greedy flows spread
/// over both disjoint tunnels could never regain 80% after losing one.)
#[test]
fn fat_tree_single_failure_recovers_within_decision_interval() {
    let decision_every = 5u64;
    let scenario = Scenario {
        name: "fat-tree-regression".into(),
        topology: TopologySpec::FatTree { k: 4 },
        traffic: TrafficSpec::Gravity {
            pairs: 0, // no background: the failure must do the damage
            total_mbps: 0.0,
        },
        events: vec![EventSpec {
            at_epoch: 20,
            kind: EventKind::LinkDown {
                link: LinkPick::PrimaryHop(1),
                restore_after: None,
            },
        }],
        flows: vec![
            FlowPlan {
                label: "f1".into(),
                demand_mbps: Some(3.0),
                start_epoch: 0,
                pair: 0,
            },
            FlowPlan {
                label: "f2".into(),
                demand_mbps: Some(3.0),
                start_epoch: 0,
                pair: 0,
            },
            FlowPlan {
                label: "f3".into(),
                demand_mbps: Some(2.0),
                start_epoch: 0,
                pair: 0,
            },
        ],
        pairs: 1,
        horizon_epochs: 36,
        decision_every,
        k_tunnels: 3,
        slo_fraction: 0.8,
        optimizer: Default::default(),
        plane: PlaneMode::Fluid,
        elastic: None,
        seed: 42,
    };
    for policy in [Policy::Hecate, Policy::LastSample] {
        let card = scenario.run(policy).unwrap();
        assert_eq!(card.recoveries.len(), 1, "{:?}", policy);
        let recovered = card.recoveries[0]
            .recovered_after_epochs
            .unwrap_or_else(|| panic!("{policy:?} never recovered: {card:?}"));
        // One decision interval to notice + migrate, ~3 epochs of TCP
        // ramp back to 80% of the pre-failure aggregate.
        assert!(
            recovered <= decision_every + 3,
            "{policy:?} took {recovered} epochs (> {} allowed): {card:?}",
            decision_every + 3
        );
        assert!(card.migrations >= 1, "{policy:?} must migrate: {card:?}");
    }
    let fixed = scenario.run(Policy::StaticShortest).unwrap();
    assert_eq!(
        fixed.recoveries[0].recovered_after_epochs, None,
        "static routing cannot recover from a dead primary: {fixed:?}"
    );
}
