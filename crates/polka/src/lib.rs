//! PolKA: Polynomial Key-based Architecture for source routing.
//!
//! PolKA (Dominicini et al., NetSoft 2020) replaces table-based and
//! port-switching source routing with a *residue number system* over
//! GF(2)\[t\]:
//!
//! * every core node is assigned an **irreducible polynomial** `nodeID`;
//! * a path is compiled by the controller into a single **routeID**
//!   polynomial via the Chinese Remainder Theorem such that
//!   `routeID mod nodeID_i = outputPort_i` for each hop `i`;
//! * a core node forwards by computing one polynomial remainder — the same
//!   circuit as a CRC check — and **never rewrites the packet header**.
//!
//! Because the route is a single immutable label, path migration and
//! failure recovery reduce to swapping the routeID at the ingress edge
//! (one policy-based-routing rewrite), which is what the paper's
//! experiments exercise.
//!
//! This crate provides:
//!
//! * [`NodeId`] / [`PortId`] and a deterministic [`NodeIdAllocator`]
//!   (distinct irreducible polynomials are pairwise coprime, as CRT needs);
//! * [`RouteSpec`] → [`RouteId`] compilation ([`RouteSpec::compile`]) and
//!   per-hop forwarding ([`CoreNode::forward`]);
//! * an on-wire [`header::PolkaHeader`] codec;
//! * the classic **port-switching** baseline ([`baseline::SegmentListRoute`])
//!   the paper compares against conceptually (pop-one-label-per-hop);
//! * extensions the PolKA literature describes: proof-of-transit
//!   ([`pot`]) and multipath/multicast route labels ([`mpolka`]).

pub mod baseline;
pub mod header;
pub mod ids;
pub mod mpolka;
pub mod pot;
pub mod route;

pub use baseline::SegmentListRoute;
pub use ids::{NodeId, NodeIdAllocator, PortId};
pub use route::{CoreNode, RouteId, RouteSpec};

/// Errors from route compilation and forwarding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolkaError {
    /// A port label does not fit under the node's polynomial
    /// (`deg(port) >= deg(nodeID)`).
    PortTooLarge { node: String, port: u64 },
    /// The same node appears twice in one path; CRT needs distinct moduli.
    DuplicateNode(String),
    /// Route compilation failed in the underlying CRT.
    Crt(gf2poly::Gf2Error),
    /// An empty path cannot be compiled.
    EmptyPath,
    /// The allocator ran out of irreducible polynomials at this degree.
    AllocatorExhausted { degree: usize },
    /// Header bytes were malformed.
    BadHeader(&'static str),
}

impl std::fmt::Display for PolkaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolkaError::PortTooLarge { node, port } => {
                write!(f, "port {port} does not fit under nodeID of {node}")
            }
            PolkaError::DuplicateNode(n) => write!(f, "node {n} appears twice in path"),
            PolkaError::Crt(e) => write!(f, "CRT failure: {e}"),
            PolkaError::EmptyPath => write!(f, "cannot compile an empty path"),
            PolkaError::AllocatorExhausted { degree } => {
                write!(f, "no irreducible polynomials left at degree {degree}")
            }
            PolkaError::BadHeader(m) => write!(f, "malformed PolKA header: {m}"),
        }
    }
}

impl std::error::Error for PolkaError {}

impl From<gf2poly::Gf2Error> for PolkaError {
    fn from(e: gf2poly::Gf2Error) -> Self {
        PolkaError::Crt(e)
    }
}
