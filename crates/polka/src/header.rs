//! On-wire encoding of the PolKA shim header.
//!
//! Mirrors the P4 deployment layout: a small fixed header carrying a
//! version, TTL, proof-of-transit field and the variable-length routeID.
//! The codec uses [`bytes`] so it composes with the freeRtr packet path.

use crate::{PolkaError, RouteId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gf2poly::Poly;

/// Protocol version emitted by this implementation.
pub const POLKA_VERSION: u8 = 1;

/// Maximum routeID length in limbs we accept from the wire (64 limbs =
/// 4096 bits, far beyond any realistic path).
pub const MAX_ROUTE_LIMBS: usize = 64;

/// The PolKA shim header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolkaHeader {
    /// Protocol version.
    pub version: u8,
    /// Hop budget, decremented by edge processing.
    pub ttl: u8,
    /// Proof-of-transit accumulator (see [`crate::pot`]).
    pub pot: u64,
    /// The route label.
    pub route: RouteId,
}

impl PolkaHeader {
    /// Creates a header with default version and TTL for a compiled route.
    pub fn new(route: RouteId) -> Self {
        PolkaHeader {
            version: POLKA_VERSION,
            ttl: 64,
            pot: 0,
            route,
        }
    }

    /// Serialized size in bytes of a header carrying `route`, without
    /// constructing one — the hot path reads this per packet per hop.
    pub fn wire_len_for(route: &RouteId) -> usize {
        // version(1) + ttl(1) + limb count(2) + pot(8) + limbs(8 each)
        12 + route.poly().limbs().len() * 8
    }

    /// Serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        Self::wire_len_for(&self.route)
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the encoding to an existing buffer.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(self.version);
        buf.put_u8(self.ttl);
        let limbs = self.route.poly().limbs();
        buf.put_u16(limbs.len() as u16);
        buf.put_u64(self.pot);
        for &l in limbs {
            buf.put_u64(l);
        }
    }

    /// Decodes a header, consuming bytes from the front of `buf`.
    pub fn decode(buf: &mut Bytes) -> Result<Self, PolkaError> {
        if buf.remaining() < 12 {
            return Err(PolkaError::BadHeader("truncated fixed header"));
        }
        let version = buf.get_u8();
        if version != POLKA_VERSION {
            return Err(PolkaError::BadHeader("unsupported version"));
        }
        let ttl = buf.get_u8();
        let n_limbs = buf.get_u16() as usize;
        if n_limbs > MAX_ROUTE_LIMBS {
            return Err(PolkaError::BadHeader("routeID too long"));
        }
        let pot = buf.get_u64();
        if buf.remaining() < n_limbs * 8 {
            return Err(PolkaError::BadHeader("truncated routeID"));
        }
        let mut limbs = Vec::with_capacity(n_limbs);
        for _ in 0..n_limbs {
            limbs.push(buf.get_u64());
        }
        Ok(PolkaHeader {
            version,
            ttl,
            pot,
            route: RouteId::from_poly(Poly::from_limbs(limbs)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, PortId, RouteSpec};

    fn sample_route() -> RouteId {
        let spec = RouteSpec::new(vec![
            (NodeId::new("a", Poly::from_binary_str("111")), PortId(2)),
            (NodeId::new("b", Poly::from_binary_str("1011")), PortId(5)),
        ]);
        spec.compile().unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let hdr = PolkaHeader::new(sample_route());
        let mut wire = hdr.encode();
        let back = PolkaHeader::decode(&mut wire).unwrap();
        assert_eq!(back, hdr);
        assert!(!wire.has_remaining());
    }

    #[test]
    fn roundtrip_preserves_pot_and_ttl() {
        let mut hdr = PolkaHeader::new(sample_route());
        hdr.ttl = 7;
        hdr.pot = 0xDEAD_BEEF_0BAD_F00D;
        let mut wire = hdr.encode();
        let back = PolkaHeader::decode(&mut wire).unwrap();
        assert_eq!(back.ttl, 7);
        assert_eq!(back.pot, 0xDEAD_BEEF_0BAD_F00D);
    }

    #[test]
    fn zero_route_encodes() {
        let hdr = PolkaHeader::new(RouteId::from_poly(Poly::zero()));
        let mut wire = hdr.encode();
        assert_eq!(wire.len(), 12);
        let back = PolkaHeader::decode(&mut wire).unwrap();
        assert!(back.route.poly().is_zero());
    }

    #[test]
    fn truncated_header_is_rejected() {
        let hdr = PolkaHeader::new(sample_route());
        let wire = hdr.encode();
        for cut in [0, 1, 5, 11, wire.len() - 1] {
            let mut short = wire.slice(..cut);
            assert!(PolkaHeader::decode(&mut short).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut hdr = PolkaHeader::new(sample_route());
        hdr.version = 9;
        let mut wire = hdr.encode();
        assert!(matches!(
            PolkaHeader::decode(&mut wire),
            Err(PolkaError::BadHeader("unsupported version"))
        ));
    }

    #[test]
    fn oversized_limb_count_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(POLKA_VERSION);
        buf.put_u8(64);
        buf.put_u16(MAX_ROUTE_LIMBS as u16 + 1);
        buf.put_u64(0);
        let mut wire = buf.freeze();
        assert!(matches!(
            PolkaHeader::decode(&mut wire),
            Err(PolkaError::BadHeader("routeID too long"))
        ));
    }

    #[test]
    fn wire_len_matches_encoding() {
        let hdr = PolkaHeader::new(sample_route());
        assert_eq!(hdr.encode().len(), hdr.wire_len());
    }
}
