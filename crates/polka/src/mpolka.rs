//! mPolKA: multipath/multicast route labels (Pereira et al., AINA 2023 —
//! reference \[31\] of the paper).
//!
//! Standard PolKA encodes *one* output port per node. mPolKA instead lets
//! the remainder at a node be a **port bitmask**: bit `p` set means
//! "replicate the packet out of port `p`". The same CRT machinery applies —
//! only the interpretation of the residue changes — which is why the
//! extension is nearly free on hardware that already computes the mod.
//!
//! This enables in-band telemetry over multiple paths at once and
//! edge-controlled multicast trees, both cited by the paper as companion
//! work to the Hecate integration.

use crate::{NodeId, PolkaError, RouteId};
use gf2poly::{crt, Poly};

/// The set of output ports a node should replicate a packet to,
/// encoded as a bitmask (bit `p` = physical port `p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortSet(pub u16);

impl PortSet {
    /// An empty set (packet is consumed at this node).
    pub fn empty() -> Self {
        PortSet(0)
    }

    /// Builds a set from individual port numbers (bit positions).
    ///
    /// # Panics
    /// Panics if any port number is 16 or larger.
    pub fn from_ports(ports: &[u8]) -> Self {
        let mut mask = 0u16;
        for &p in ports {
            assert!(p < 16, "mPolKA port bitmask is 16 bits wide");
            mask |= 1 << p;
        }
        PortSet(mask)
    }

    /// Iterates the port numbers present in the set.
    pub fn ports(self) -> impl Iterator<Item = u8> {
        (0..16).filter(move |p| self.0 & (1 << p) != 0)
    }

    /// Number of replication targets.
    pub fn fanout(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Polynomial encoding of the bitmask.
    pub fn to_poly(self) -> Poly {
        Poly::from_bits(self.0 as u64)
    }

    /// Decodes a remainder polynomial into a port set.
    pub fn from_poly(p: &Poly) -> Option<PortSet> {
        match p.degree() {
            Some(d) if d > 15 => None,
            _ => Some(PortSet(p.low_bits() as u16)),
        }
    }

    /// Bits needed to represent this mask.
    fn bits(self) -> usize {
        (16 - self.0.leading_zeros()) as usize
    }
}

/// A multicast/multipath route: each node maps to a set of output ports.
#[derive(Debug, Clone)]
pub struct MulticastSpec {
    hops: Vec<(NodeId, PortSet)>,
}

impl MulticastSpec {
    /// Builds a spec from `(node, port set)` pairs.
    pub fn new(hops: Vec<(NodeId, PortSet)>) -> Self {
        MulticastSpec { hops }
    }

    /// The hops.
    pub fn hops(&self) -> &[(NodeId, PortSet)] {
        &self.hops
    }

    /// Compiles the multicast label via CRT over the bitmask residues.
    pub fn compile(&self) -> Result<RouteId, PolkaError> {
        if self.hops.is_empty() {
            return Err(PolkaError::EmptyPath);
        }
        let mut system = Vec::with_capacity(self.hops.len());
        for (i, (node, set)) in self.hops.iter().enumerate() {
            if set.bits() > node.degree() {
                return Err(PolkaError::PortTooLarge {
                    node: node.name().to_string(),
                    port: set.0 as u64,
                });
            }
            for (prev, _) in &self.hops[..i] {
                if prev.poly() == node.poly() {
                    return Err(PolkaError::DuplicateNode(node.name().to_string()));
                }
            }
            system.push((set.to_poly(), node.poly().clone()));
        }
        Ok(RouteId::from_poly(crt(&system)?))
    }
}

/// Data-plane replication decision at one node.
pub fn replicate_at(route: &RouteId, node: &NodeId) -> Option<PortSet> {
    let rem = route.poly().rem_ref(node.poly()).ok()?;
    PortSet::from_poly(&rem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeIdAllocator;

    #[test]
    fn portset_construction_and_iteration() {
        let s = PortSet::from_ports(&[0, 2, 5]);
        assert_eq!(s.0, 0b100101);
        assert_eq!(s.ports().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(s.fanout(), 3);
        assert_eq!(PortSet::empty().fanout(), 0);
    }

    #[test]
    fn multicast_label_replicates_correctly() {
        let mut alloc = NodeIdAllocator::new(8);
        let a = alloc.assign("a").unwrap();
        let b = alloc.assign("b").unwrap();
        let c = alloc.assign("c").unwrap();
        let spec = MulticastSpec::new(vec![
            (a.clone(), PortSet::from_ports(&[1, 3])), // branch point
            (b.clone(), PortSet::from_ports(&[2])),
            (c.clone(), PortSet::from_ports(&[4, 5, 6])),
        ]);
        let route = spec.compile().unwrap();
        assert_eq!(replicate_at(&route, &a), Some(PortSet::from_ports(&[1, 3])));
        assert_eq!(replicate_at(&route, &b), Some(PortSet::from_ports(&[2])));
        assert_eq!(
            replicate_at(&route, &c),
            Some(PortSet::from_ports(&[4, 5, 6]))
        );
    }

    #[test]
    fn unicast_is_a_special_case_of_multicast() {
        // A one-bit mask at every node behaves like classic PolKA.
        let mut alloc = NodeIdAllocator::new(8);
        let a = alloc.assign("a").unwrap();
        let spec = MulticastSpec::new(vec![(a.clone(), PortSet::from_ports(&[2]))]);
        let route = spec.compile().unwrap();
        assert_eq!(replicate_at(&route, &a).unwrap().fanout(), 1);
    }

    #[test]
    fn oversized_mask_is_rejected() {
        let mut alloc = NodeIdAllocator::new(4); // masks limited to 4 bits
        let a = alloc.assign("a").unwrap();
        let spec = MulticastSpec::new(vec![(a, PortSet::from_ports(&[7]))]);
        assert!(matches!(
            spec.compile(),
            Err(PolkaError::PortTooLarge { .. })
        ));
    }

    #[test]
    fn empty_spec_is_rejected() {
        assert!(matches!(
            MulticastSpec::new(vec![]).compile(),
            Err(PolkaError::EmptyPath)
        ));
    }
}
