//! Port-switching source routing: the baseline PolKA is compared against.
//!
//! "The most common method of implementing SR is Port Switching, where the
//! route label represents an ordered list of output ports. Each hop executes
//! the forwarding operation by popping the first element of the list,
//! necessitating an update to the route label in the packet at each hop."
//! (paper, Sec. II-B). MPLS label stacks and SRv6 segment lists are
//! instances of this scheme.
//!
//! The key behavioural difference this module makes measurable:
//!
//! * per-hop work is O(1) pop **plus a header rewrite** (the packet
//!   mutates at every hop);
//! * the label shrinks along the path, so the header is largest at
//!   ingress;
//! * migrating a path requires rewriting the whole list (not one residue).

use crate::PortId;

/// A segment-list route: ordered output ports, popped front-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentListRoute {
    segments: Vec<PortId>,
    cursor: usize,
}

impl SegmentListRoute {
    /// Builds a route from the ordered list of output ports.
    pub fn new(segments: Vec<PortId>) -> Self {
        SegmentListRoute {
            segments,
            cursor: 0,
        }
    }

    /// Remaining (un-popped) segments.
    pub fn remaining(&self) -> &[PortId] {
        &self.segments[self.cursor..]
    }

    /// Header size in bits if each port label is `port_bits` wide —
    /// the size comparison metric against [`crate::RouteId::label_bits`].
    pub fn label_bits(&self, port_bits: usize) -> usize {
        self.remaining().len() * port_bits
    }

    /// The per-hop operation: pop the next port and "rewrite the header"
    /// (advance the cursor; a real device shifts the label stack).
    pub fn pop_forward(&mut self) -> Option<PortId> {
        let port = self.segments.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(port)
    }

    /// True once every segment has been consumed (packet at egress).
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.segments.len()
    }

    /// Simulates the full path, returning the port taken at each hop.
    pub fn walk(mut self) -> Vec<PortId> {
        let mut out = Vec::with_capacity(self.segments.len());
        while let Some(p) = self.pop_forward() {
            out.push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_order_and_exhausts() {
        let mut r = SegmentListRoute::new(vec![PortId(1), PortId(2), PortId(6)]);
        assert!(!r.exhausted());
        assert_eq!(r.pop_forward(), Some(PortId(1)));
        assert_eq!(r.pop_forward(), Some(PortId(2)));
        assert_eq!(r.pop_forward(), Some(PortId(6)));
        assert!(r.exhausted());
        assert_eq!(r.pop_forward(), None);
    }

    #[test]
    fn label_shrinks_along_path() {
        let mut r = SegmentListRoute::new(vec![PortId(1); 5]);
        let at_ingress = r.label_bits(8);
        r.pop_forward();
        r.pop_forward();
        assert_eq!(at_ingress, 40);
        assert_eq!(r.label_bits(8), 24);
    }

    #[test]
    fn walk_returns_all_ports() {
        let r = SegmentListRoute::new(vec![PortId(3), PortId(4)]);
        assert_eq!(r.walk(), vec![PortId(3), PortId(4)]);
    }

    #[test]
    fn empty_route_is_immediately_exhausted() {
        let mut r = SegmentListRoute::new(vec![]);
        assert!(r.exhausted());
        assert_eq!(r.pop_forward(), None);
    }
}
