//! Route compilation (controller side) and forwarding (switch side).

use crate::{NodeId, PolkaError, PortId};
use gf2poly::{crt, Poly};

/// A compiled PolKA route identifier: one polynomial that encodes the
/// output port of every core node on the path. The label is immutable in
/// flight — nodes read it, never rewrite it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteId(pub(crate) Poly);

impl RouteId {
    /// The underlying polynomial.
    pub fn poly(&self) -> &Poly {
        &self.0
    }

    /// Wraps a raw polynomial (e.g. decoded from a packet header).
    pub fn from_poly(p: Poly) -> Self {
        RouteId(p)
    }

    /// Length of the label in bits (degree + 1), the header-size metric
    /// the PolKA papers report.
    pub fn label_bits(&self) -> usize {
        self.0.degree().map_or(1, |d| d + 1)
    }
}

impl std::fmt::Display for RouteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0.to_binary_str())
    }
}

/// A controller-side path description: ordered `(node, output port)` hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSpec {
    hops: Vec<(NodeId, PortId)>,
}

impl RouteSpec {
    /// Builds a route spec from `(node, port)` hops.
    pub fn new(hops: Vec<(NodeId, PortId)>) -> Self {
        RouteSpec { hops }
    }

    /// The hops in path order.
    pub fn hops(&self) -> &[(NodeId, PortId)] {
        &self.hops
    }

    /// Number of core hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True when the path has no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Compiles the path into a [`RouteId`] with the polynomial CRT.
    ///
    /// Validates that every port fits under its node and that node
    /// polynomials are distinct (distinct irreducibles ⇒ coprime moduli).
    pub fn compile(&self) -> Result<RouteId, PolkaError> {
        if self.hops.is_empty() {
            return Err(PolkaError::EmptyPath);
        }
        let mut system = Vec::with_capacity(self.hops.len());
        for (i, (node, port)) in self.hops.iter().enumerate() {
            node.check_port(*port)?;
            for (prev, _) in &self.hops[..i] {
                if prev.poly() == node.poly() {
                    return Err(PolkaError::DuplicateNode(node.name().to_string()));
                }
            }
            system.push((port.to_poly(), node.poly().clone()));
        }
        Ok(RouteId(crt(&system)?))
    }
}

/// A stateless PolKA core node. Its entire forwarding state is one
/// polynomial — there is no route table.
#[derive(Debug, Clone)]
pub struct CoreNode {
    id: NodeId,
    scratch: Poly,
}

impl CoreNode {
    /// Instantiates the data-plane element for a node.
    pub fn new(id: NodeId) -> Self {
        CoreNode {
            id,
            scratch: Poly::zero(),
        }
    }

    /// The node's identity.
    pub fn id(&self) -> &NodeId {
        &self.id
    }

    /// The forwarding primitive: `port = routeID mod nodeID`.
    ///
    /// Returns `None` when the remainder does not decode to a port label,
    /// which a real switch would treat as "not for me / punt".
    pub fn forward(&mut self, route: &RouteId) -> Option<PortId> {
        route
            .0
            .rem_into(self.id.poly(), &mut self.scratch)
            .ok()
            .and_then(|()| PortId::from_poly(&self.scratch))
    }

    /// Immutable forwarding (allocates; use [`CoreNode::forward`] on the
    /// fast path).
    pub fn forward_ref(&self, route: &RouteId) -> Option<PortId> {
        let rem = route.0.rem_ref(self.id.poly()).ok()?;
        PortId::from_poly(&rem)
    }
}

/// Walks a packet hop-by-hop through `nodes` exactly as the emulated data
/// plane would, returning the port taken at each node. This is the
/// integration point used by the freeRtr emulation and the tests: it
/// proves the single label drives the whole path.
pub fn trace_route(route: &RouteId, nodes: &[NodeId]) -> Vec<(String, PortId)> {
    nodes
        .iter()
        .map(|n| {
            let mut core = CoreNode::new(n.clone());
            let port = core.forward(route).unwrap_or(PortId(0));
            (n.name().to_string(), port)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeIdAllocator;
    use gf2poly::Poly;

    fn fig1_nodes() -> (NodeId, NodeId, NodeId) {
        (
            NodeId::new("s1", Poly::from_binary_str("11")),
            NodeId::new("s2", Poly::from_binary_str("111")),
            NodeId::new("s3", Poly::from_binary_str("1011")),
        )
    }

    #[test]
    fn fig1_worked_example() {
        // The paper's Fig 1: s1=t+1, s2=t^2+t+1, s3=t^3+t+1 with output
        // ports o1=1, o2=t (port 2), o3=t^2+t (port 6).
        let (s1, s2, s3) = fig1_nodes();
        let spec = RouteSpec::new(vec![
            (s1.clone(), PortId(1)),
            (s2.clone(), PortId(2)),
            (s3.clone(), PortId(6)),
        ]);
        let route = spec.compile().unwrap();
        let mut n1 = CoreNode::new(s1);
        let mut n2 = CoreNode::new(s2);
        let mut n3 = CoreNode::new(s3);
        assert_eq!(n1.forward(&route), Some(PortId(1)));
        assert_eq!(n2.forward(&route), Some(PortId(2)));
        assert_eq!(n3.forward(&route), Some(PortId(6)));
    }

    #[test]
    fn fig1_routeid_10000_gives_port2_at_s2() {
        // Direct statement from the paper: routeID=10000 -> port 2 at s2.
        let route = RouteId::from_poly(Poly::from_binary_str("10000"));
        let (_, s2, _) = fig1_nodes();
        let mut n2 = CoreNode::new(s2);
        assert_eq!(n2.forward(&route), Some(PortId(2)));
    }

    #[test]
    fn forward_matches_forward_ref() {
        let (s1, s2, s3) = fig1_nodes();
        let spec = RouteSpec::new(vec![
            (s1.clone(), PortId(1)),
            (s2.clone(), PortId(3)),
            (s3.clone(), PortId(5)),
        ]);
        let route = spec.compile().unwrap();
        for id in [s1, s2, s3] {
            let mut node = CoreNode::new(id.clone());
            assert_eq!(node.forward(&route), node.forward_ref(&route));
        }
    }

    #[test]
    fn compile_rejects_oversized_port() {
        let (s1, _, _) = fig1_nodes(); // degree 1 -> only ports 0 and 1
        let spec = RouteSpec::new(vec![(s1, PortId(2))]);
        assert!(matches!(
            spec.compile(),
            Err(PolkaError::PortTooLarge { .. })
        ));
    }

    #[test]
    fn compile_rejects_duplicate_nodes() {
        let (_, s2, _) = fig1_nodes();
        let spec = RouteSpec::new(vec![(s2.clone(), PortId(1)), (s2, PortId(2))]);
        assert!(matches!(spec.compile(), Err(PolkaError::DuplicateNode(_))));
    }

    #[test]
    fn compile_rejects_empty_path() {
        assert!(matches!(
            RouteSpec::new(vec![]).compile(),
            Err(PolkaError::EmptyPath)
        ));
    }

    #[test]
    fn long_path_with_allocator() {
        // 12-hop path with degree-8 node IDs and realistic port numbers.
        let mut alloc = NodeIdAllocator::new(8);
        let hops: Vec<(NodeId, PortId)> = (0..12)
            .map(|i| {
                let node = alloc.assign(&format!("r{i}")).unwrap();
                (node, PortId((i * 17 % 200 + 1) as u16))
            })
            .collect();
        let spec = RouteSpec::new(hops.clone());
        let route = spec.compile().unwrap();
        for (node, port) in &hops {
            let mut core = CoreNode::new(node.clone());
            assert_eq!(core.forward(&route), Some(*port));
        }
        // Label is bounded by the modulus product: 12 nodes * degree 8.
        assert!(route.label_bits() <= 12 * 8);
    }

    #[test]
    fn trace_route_reports_every_hop() {
        let (s1, s2, s3) = fig1_nodes();
        let spec = RouteSpec::new(vec![
            (s1.clone(), PortId(1)),
            (s2.clone(), PortId(2)),
            (s3.clone(), PortId(6)),
        ]);
        let route = spec.compile().unwrap();
        let trace = trace_route(&route, &[s1, s2, s3]);
        assert_eq!(
            trace,
            vec![
                ("s1".to_string(), PortId(1)),
                ("s2".to_string(), PortId(2)),
                ("s3".to_string(), PortId(6)),
            ]
        );
    }

    #[test]
    fn off_path_node_reads_garbage_not_panic() {
        // A node not in the CRT system still computes a remainder; the
        // architecture relies on edge policy to keep packets on-path.
        let (s1, s2, _) = fig1_nodes();
        let spec = RouteSpec::new(vec![(s1, PortId(1))]);
        let route = spec.compile().unwrap();
        let mut other = CoreNode::new(s2);
        let _ = other.forward(&route); // must not panic
    }

    #[test]
    fn route_display_is_binary() {
        let route = RouteId::from_poly(Poly::from_binary_str("10000"));
        assert_eq!(route.to_string(), "10000");
        assert_eq!(route.label_bits(), 5);
    }
}
