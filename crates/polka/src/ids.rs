//! Node and port identifiers.
//!
//! A PolKA `nodeID` is an irreducible polynomial over GF(2); distinct
//! irreducibles are pairwise coprime, which is exactly the CRT requirement.
//! A port label is an arbitrary polynomial of degree strictly below the
//! node's degree, so a node of degree `d` can address `2^d - 1` ports
//! (port 0 is reserved to mean "deliver locally / punt to edge").

use crate::PolkaError;
use gf2poly::{irreducibles_of_degree, Poly};
use std::collections::BTreeMap;

/// An output-port label. Encoded as the binary polynomial whose bits are
/// the port number (port 2 ↔ `t`, port 6 ↔ `t^2 + t`, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

impl PortId {
    /// The polynomial representation of the port label.
    pub fn to_poly(self) -> Poly {
        Poly::from_bits(self.0 as u64)
    }

    /// Recovers a port from a remainder polynomial. Remainders with degree
    /// above 15 do not correspond to a port and return `None`.
    pub fn from_poly(p: &Poly) -> Option<PortId> {
        match p.degree() {
            Some(d) if d > 15 => None,
            _ => Some(PortId(p.low_bits() as u16)),
        }
    }

    /// Number of bits needed to represent this port.
    pub fn bits(self) -> usize {
        (16 - self.0.leading_zeros()) as usize
    }
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// A core-node identifier: a named irreducible polynomial.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeId {
    name: String,
    poly: Poly,
}

impl NodeId {
    /// Wraps a polynomial as a node identifier.
    ///
    /// # Panics
    /// Panics in debug builds if the polynomial is not irreducible; the
    /// RNS breaks silently with reducible node IDs, so this is a
    /// programming error rather than a runtime condition.
    pub fn new(name: impl Into<String>, poly: Poly) -> Self {
        debug_assert!(gf2poly::is_irreducible(&poly), "nodeID must be irreducible");
        NodeId {
            name: name.into(),
            poly,
        }
    }

    /// The router's human-readable name (e.g. `"MIA"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's polynomial identifier.
    pub fn poly(&self) -> &Poly {
        &self.poly
    }

    /// Degree of the node polynomial; ports up to `2^degree - 1` fit.
    pub fn degree(&self) -> usize {
        self.poly.degree().expect("irreducible => non-zero")
    }

    /// Checks that a port label fits under this node's polynomial
    /// (the port polynomial's degree must be strictly below the node's).
    pub fn check_port(&self, port: PortId) -> Result<(), PolkaError> {
        if port.bits() > self.degree() {
            return Err(PolkaError::PortTooLarge {
                node: self.name.clone(),
                port: port.0 as u64,
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.name, self.poly)
    }
}

/// Deterministic allocator of node identifiers.
///
/// Assigns the lexicographically-next unused irreducible polynomial of a
/// fixed degree to each router name. The degree bounds the number of
/// addressable ports per node (`2^degree - 1`) and the routeID length
/// (`path_len * degree` bits), matching the sizing discussion in the
/// PolKA papers.
#[derive(Debug, Clone)]
pub struct NodeIdAllocator {
    degree: usize,
    pool: Vec<Poly>,
    next: usize,
    assigned: BTreeMap<String, NodeId>,
}

impl NodeIdAllocator {
    /// Creates an allocator handing out irreducibles of `degree`.
    ///
    /// `degree` must be at least 2 so that at least ports 1..3 fit.
    pub fn new(degree: usize) -> Self {
        assert!(degree >= 2, "node degree must be >= 2");
        NodeIdAllocator {
            degree,
            pool: irreducibles_of_degree(degree),
            next: 0,
            assigned: BTreeMap::new(),
        }
    }

    /// An allocator sized for a network with `max_port` ports per node:
    /// picks the smallest degree that both fits the port labels and has
    /// enough irreducible polynomials for `nodes` routers.
    pub fn for_network(nodes: usize, max_port: u16) -> Self {
        let port_bits = (16 - max_port.leading_zeros()) as usize;
        let mut degree = port_bits.max(2);
        loop {
            let pool = irreducibles_of_degree(degree);
            if pool.len() >= nodes {
                return NodeIdAllocator {
                    degree,
                    pool,
                    next: 0,
                    assigned: BTreeMap::new(),
                };
            }
            degree += 1;
        }
    }

    /// The degree of the polynomials this allocator hands out.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Assigns (or returns the existing) node ID for a router name.
    pub fn assign(&mut self, name: &str) -> Result<NodeId, PolkaError> {
        if let Some(id) = self.assigned.get(name) {
            return Ok(id.clone());
        }
        let poly = self
            .pool
            .get(self.next)
            .cloned()
            .ok_or(PolkaError::AllocatorExhausted {
                degree: self.degree,
            })?;
        self.next += 1;
        let id = NodeId::new(name, poly);
        self.assigned.insert(name.to_string(), id.clone());
        Ok(id)
    }

    /// Looks up an already-assigned node ID.
    pub fn get(&self, name: &str) -> Option<&NodeId> {
        self.assigned.get(name)
    }

    /// All assignments made so far, in name order.
    pub fn assignments(&self) -> impl Iterator<Item = (&str, &NodeId)> {
        self.assigned.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Remaining capacity at this degree.
    pub fn remaining(&self) -> usize {
        self.pool.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_poly_roundtrip() {
        for n in [0u16, 1, 2, 6, 7, 255, 1023] {
            let p = PortId(n);
            assert_eq!(PortId::from_poly(&p.to_poly()), Some(p));
        }
    }

    #[test]
    fn port_from_oversized_poly_is_none() {
        assert_eq!(PortId::from_poly(&Poly::monomial(20)), None);
    }

    #[test]
    fn paper_port_encodings() {
        // Fig 1: o1(t)=1 -> port 1, o2(t)=t -> port 2, o3(t)=t^2+t -> port 6.
        assert_eq!(PortId(1).to_poly(), Poly::from_binary_str("1"));
        assert_eq!(PortId(2).to_poly(), Poly::from_binary_str("10"));
        assert_eq!(PortId(6).to_poly(), Poly::from_binary_str("110"));
    }

    #[test]
    fn node_port_capacity() {
        let s2 = NodeId::new("s2", Poly::from_binary_str("111")); // degree 2
        assert!(s2.check_port(PortId(1)).is_ok());
        assert!(s2.check_port(PortId(3)).is_ok());
        assert!(s2.check_port(PortId(4)).is_err()); // needs 3 bits
    }

    #[test]
    fn allocator_is_deterministic_and_distinct() {
        let mut a = NodeIdAllocator::new(8);
        let mut b = NodeIdAllocator::new(8);
        let names = ["MIA", "CHI", "CAL", "SAO", "AMS"];
        for n in names {
            assert_eq!(a.assign(n).unwrap(), b.assign(n).unwrap());
        }
        // All polynomials distinct and pairwise coprime.
        let polys: Vec<_> = names
            .iter()
            .map(|n| a.get(n).unwrap().poly().clone())
            .collect();
        for i in 0..polys.len() {
            for j in i + 1..polys.len() {
                assert!(polys[i].gcd(&polys[j]).is_one());
            }
        }
    }

    #[test]
    fn allocator_reuses_existing_assignment() {
        let mut a = NodeIdAllocator::new(4);
        let first = a.assign("X").unwrap();
        let again = a.assign("X").unwrap();
        assert_eq!(first, again);
        assert_eq!(a.remaining(), 2); // degree 4 has 3 irreducibles
    }

    #[test]
    fn allocator_exhaustion() {
        let mut a = NodeIdAllocator::new(2); // only t^2+t+1
        a.assign("A").unwrap();
        assert!(matches!(
            a.assign("B"),
            Err(PolkaError::AllocatorExhausted { degree: 2 })
        ));
    }

    #[test]
    fn for_network_sizes_degree() {
        let a = NodeIdAllocator::for_network(30, 255);
        // 255 ports need 8 bits => degree >= 8; degree 8 has 30 irreducibles.
        assert_eq!(a.degree(), 8);
        let b = NodeIdAllocator::for_network(31, 255);
        assert!(b.degree() > 8);
    }
}
