//! Proof-of-transit for PolKA paths (PoT-PolKA, Borges et al., IEEE TNSM
//! 2024 — reference \[18\] of the paper).
//!
//! The edge wants evidence that a packet actually traversed the programmed
//! path. Each core node folds its locally-computed remainder (its output
//! port, which only the on-path CRT system predicts) into a running
//! accumulator carried in the header. The egress edge recomputes the
//! expected accumulator from the route spec and compares.
//!
//! The accumulator here is a 64-bit polynomial hash of the hop remainders —
//! a faithful functional model of the scheme (the hardware version uses the
//! same CRC datapath as forwarding).

use crate::{CoreNode, NodeId, PortId, RouteId, RouteSpec};

/// Multiplier for the rolling polynomial hash (an irreducible pattern,
/// so collisions require structured adversarial input).
const FOLD_MULTIPLIER: u64 = 0x1B; // x^4 + x^3 + x + 1 folding constant

/// Folds one hop's port remainder into the accumulator.
#[inline]
pub fn fold(acc: u64, port: PortId) -> u64 {
    acc.rotate_left(8) ^ (acc.wrapping_mul(FOLD_MULTIPLIER)) ^ port.0 as u64 ^ 0xA5
}

/// Folds one hop's `(node, port)` pair: the node's polynomial identity
/// is mixed in before the port fold, standing in for the per-node keyed
/// function of the hardware scheme. Binding the node matters: two
/// disjoint paths can share a *port* sequence (e.g. "port 2 then
/// deliver" through different routers), and a port-only accumulator
/// would let a detour through look-alike ports verify.
#[inline]
pub fn fold_hop(acc: u64, node: &NodeId, port: PortId) -> u64 {
    fold(acc ^ node.poly().low_bits().rotate_left(17), port)
}

/// The expected proof-of-transit value for a compiled route, computed by
/// the controller/egress from the route spec.
pub fn expected_pot(spec: &RouteSpec) -> u64 {
    spec.hops()
        .iter()
        .fold(0u64, |acc, (node, port)| fold_hop(acc, node, *port))
}

/// Walks the route through the given data-plane nodes, updating the
/// accumulator exactly as in-network PoT would. Returns the final value.
pub fn accumulate_pot(route: &RouteId, nodes: &[NodeId]) -> u64 {
    nodes.iter().fold(0u64, |acc, n| {
        let mut core = CoreNode::new(n.clone());
        let port = core.forward(route).unwrap_or(PortId(0));
        fold_hop(acc, n, port)
    })
}

/// Egress-side verification: did the packet visit exactly the programmed
/// hops, in order?
pub fn verify_pot(spec: &RouteSpec, observed: u64) -> bool {
    expected_pot(spec) == observed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2poly::Poly;

    fn spec3() -> RouteSpec {
        RouteSpec::new(vec![
            (NodeId::new("s1", Poly::from_binary_str("11")), PortId(1)),
            (NodeId::new("s2", Poly::from_binary_str("111")), PortId(2)),
            (NodeId::new("s3", Poly::from_binary_str("1011")), PortId(6)),
        ])
    }

    #[test]
    fn on_path_packet_verifies() {
        let spec = spec3();
        let route = spec.compile().unwrap();
        let nodes: Vec<NodeId> = spec.hops().iter().map(|(n, _)| n.clone()).collect();
        let observed = accumulate_pot(&route, &nodes);
        assert!(verify_pot(&spec, observed));
    }

    #[test]
    fn skipped_hop_fails_verification() {
        let spec = spec3();
        let route = spec.compile().unwrap();
        let nodes: Vec<NodeId> = spec
            .hops()
            .iter()
            .skip(1) // packet "teleported" past s1
            .map(|(n, _)| n.clone())
            .collect();
        let observed = accumulate_pot(&route, &nodes);
        assert!(!verify_pot(&spec, observed));
    }

    #[test]
    fn reordered_hops_fail_verification() {
        let spec = spec3();
        let route = spec.compile().unwrap();
        let mut nodes: Vec<NodeId> = spec.hops().iter().map(|(n, _)| n.clone()).collect();
        nodes.swap(0, 2);
        let observed = accumulate_pot(&route, &nodes);
        assert!(!verify_pot(&spec, observed));
    }

    #[test]
    fn detour_through_foreign_node_fails() {
        let spec = spec3();
        let route = spec.compile().unwrap();
        let mut nodes: Vec<NodeId> = spec.hops().iter().map(|(n, _)| n.clone()).collect();
        nodes.insert(1, NodeId::new("evil", Poly::from_binary_str("11111")));
        let observed = accumulate_pot(&route, &nodes);
        assert!(!verify_pot(&spec, observed));
    }

    #[test]
    fn fold_is_order_sensitive() {
        let a = fold(fold(0, PortId(1)), PortId(2));
        let b = fold(fold(0, PortId(2)), PortId(1));
        assert_ne!(a, b);
    }

    #[test]
    fn lookalike_port_sequences_through_different_nodes_differ() {
        // Two disjoint one-hop detours can present the *same* port
        // sequence; the node-bound fold must still tell them apart.
        let s2 = NodeId::new("s2", Poly::from_binary_str("111"));
        let s3 = NodeId::new("s3", Poly::from_binary_str("1011"));
        let egress = NodeId::new("e", Poly::from_binary_str("11111"));
        let via_s2 = RouteSpec::new(vec![(s2, PortId(2)), (egress.clone(), PortId(0))]);
        let via_s3 = RouteSpec::new(vec![(s3, PortId(2)), (egress, PortId(0))]);
        assert_ne!(expected_pot(&via_s2), expected_pot(&via_s3));
    }
}
