//! Property tests: every compiled route must forward every hop to exactly
//! the requested port, for arbitrary paths and port choices, and the
//! header codec must round-trip arbitrary labels.

use polka::header::PolkaHeader;
use polka::{NodeIdAllocator, PortId, RouteId, RouteSpec, SegmentListRoute};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_routes_forward_exactly(
        n_hops in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut alloc = NodeIdAllocator::new(8); // 30 irreducibles, ports < 256
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u16
        };
        let hops: Vec<_> = (0..n_hops)
            .map(|i| {
                let node = alloc.assign(&format!("n{i}")).unwrap();
                let port = PortId(next() % 255 + 1);
                (node, port)
            })
            .collect();
        let route = RouteSpec::new(hops.clone()).compile().unwrap();
        for (node, port) in &hops {
            let mut core = polka::CoreNode::new(node.clone());
            prop_assert_eq!(core.forward(&route), Some(*port));
        }
        // The polynomial label never exceeds the sum of node degrees.
        prop_assert!(route.label_bits() <= n_hops * 8);
    }

    #[test]
    fn header_roundtrip_arbitrary_labels(limbs in prop::collection::vec(any::<u64>(), 0..8), ttl in any::<u8>(), pot in any::<u64>()) {
        let route = RouteId::from_poly(gf2poly::Poly::from_limbs(limbs));
        let mut hdr = PolkaHeader::new(route);
        hdr.ttl = ttl;
        hdr.pot = pot;
        let mut wire = hdr.encode();
        let back = PolkaHeader::decode(&mut wire).unwrap();
        prop_assert_eq!(back, hdr);
    }

    #[test]
    fn baseline_walk_preserves_order(ports in prop::collection::vec(0u16..1024, 0..32)) {
        let route = SegmentListRoute::new(ports.iter().copied().map(PortId).collect());
        let walked: Vec<u16> = route.walk().into_iter().map(|p| p.0).collect();
        prop_assert_eq!(walked, ports);
    }

    #[test]
    fn pot_verifies_iff_path_untampered(
        n_hops in 2usize..8,
        tamper in 0usize..8,
    ) {
        let mut alloc = NodeIdAllocator::new(8);
        let hops: Vec<_> = (0..n_hops)
            .map(|i| (alloc.assign(&format!("n{i}")).unwrap(), PortId(i as u16 + 1)))
            .collect();
        let spec = RouteSpec::new(hops.clone());
        let route = spec.compile().unwrap();
        let nodes: Vec<_> = hops.iter().map(|(n, _)| n.clone()).collect();

        // Clean traversal verifies.
        let clean = polka::pot::accumulate_pot(&route, &nodes);
        prop_assert!(polka::pot::verify_pot(&spec, clean));

        // Dropping any single hop breaks verification.
        let tamper = tamper % n_hops;
        let mut tampered_nodes = nodes.clone();
        tampered_nodes.remove(tamper);
        let bad = polka::pot::accumulate_pot(&route, &tampered_nodes);
        prop_assert!(!polka::pot::verify_pot(&spec, bad));
    }
}
