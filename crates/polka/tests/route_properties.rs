//! Property tests: every compiled route must forward every hop to exactly
//! the requested port, for arbitrary paths and port choices, and the
//! header codec must round-trip arbitrary labels.

use bytes::Buf;
use polka::header::PolkaHeader;
use polka::{NodeIdAllocator, PortId, RouteId, RouteSpec, SegmentListRoute};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_routes_forward_exactly(
        n_hops in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut alloc = NodeIdAllocator::new(8); // 30 irreducibles, ports < 256
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u16
        };
        let hops: Vec<_> = (0..n_hops)
            .map(|i| {
                let node = alloc.assign(&format!("n{i}")).unwrap();
                let port = PortId(next() % 255 + 1);
                (node, port)
            })
            .collect();
        let route = RouteSpec::new(hops.clone()).compile().unwrap();
        for (node, port) in &hops {
            let mut core = polka::CoreNode::new(node.clone());
            prop_assert_eq!(core.forward(&route), Some(*port));
        }
        // The polynomial label never exceeds the sum of node degrees.
        prop_assert!(route.label_bits() <= n_hops * 8);
    }

    #[test]
    fn header_roundtrip_arbitrary_labels(limbs in prop::collection::vec(any::<u64>(), 0..8), ttl in any::<u8>(), pot in any::<u64>()) {
        let route = RouteId::from_poly(gf2poly::Poly::from_limbs(limbs));
        let mut hdr = PolkaHeader::new(route);
        hdr.ttl = ttl;
        hdr.pot = pot;
        let mut wire = hdr.encode();
        let back = PolkaHeader::decode(&mut wire).unwrap();
        prop_assert_eq!(back, hdr);
    }

    #[test]
    fn baseline_walk_preserves_order(ports in prop::collection::vec(0u16..1024, 0..32)) {
        let route = SegmentListRoute::new(ports.iter().copied().map(PortId).collect());
        let walked: Vec<u16> = route.walk().into_iter().map(|p| p.0).collect();
        prop_assert_eq!(walked, ports);
    }

    #[test]
    fn header_roundtrip_arbitrary_bit_lengths(
        bits in 0usize..1200,
        fill in any::<u64>(),
        ttl in any::<u8>(),
        pot in any::<u64>(),
    ) {
        // A routeID of *exactly* `bits` bits (top bit set), the rest
        // filled from a seeded pattern — exercises every limb-count
        // boundary the wire format can hit.
        let mut limbs = vec![0u64; bits.div_ceil(64)];
        let mut x = fill | 1;
        for l in limbs.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *l = x;
        }
        if bits > 0 {
            let top = bits - 1;
            let last = top / 64;
            limbs.truncate(last + 1);
            let keep = top % 64;
            limbs[last] &= u64::MAX >> (63 - keep); // clear above the top bit
            limbs[last] |= 1u64 << keep; // pin the exact degree
        } else {
            limbs.clear();
        }
        let route = RouteId::from_poly(gf2poly::Poly::from_limbs(limbs));
        if bits > 0 {
            prop_assert_eq!(route.label_bits(), bits);
        }
        let mut hdr = PolkaHeader::new(route);
        hdr.ttl = ttl;
        hdr.pot = pot;
        let mut wire = hdr.encode();
        let back = PolkaHeader::decode(&mut wire).unwrap();
        prop_assert_eq!(back, hdr);
        prop_assert!(!wire.has_remaining());
    }

    #[test]
    fn routeid_forwarding_visits_spec_ports_on_random_topologies(
        n in 6usize..32,
        chord in 2usize..6,
        seed in any::<u64>(),
        hops in 3usize..6,
    ) {
        // A random-ish mesh, a random walk through it, the walk
        // compiled to one routeID — forwarding at every hop must yield
        // exactly the port the spec encoded, and *following* those
        // ports through the physical topology must reproduce the walk.
        use netsim::topo::mesh;
        use netsim::NodeIdx;
        let topo = mesh(n, chord, 10.0);
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        // Random loop-free walk over live links.
        let mut path = vec![NodeIdx((next() % n) as u32)];
        while path.len() < hops + 1 {
            let cur = *path.last().unwrap();
            let neighbors: Vec<NodeIdx> = (1..=topo.max_port())
                .filter_map(|p| topo.neighbor_by_port(cur, p))
                .filter(|nb| !path.contains(nb))
                .collect();
            let Some(&step) = neighbors.get(next() % neighbors.len().max(1)) else {
                break; // walked into a corner; test what we have
            };
            path.push(step);
        }
        prop_assume!(path.len() >= 3);
        let mut alloc = NodeIdAllocator::for_network(n, topo.max_port().max(1));
        let mut hops_spec = Vec::new();
        for k in 1..path.len() {
            let node = alloc.assign(topo.node_name(path[k])).unwrap();
            let port = if k + 1 < path.len() {
                PortId(topo.neighbor_port(path[k], path[k + 1]).unwrap())
            } else {
                PortId(0)
            };
            hops_spec.push((node, port));
        }
        let spec = RouteSpec::new(hops_spec.clone());
        let route = spec.compile().unwrap();
        // (a) every hop's remainder is exactly the spec's port;
        for (node, port) in &hops_spec {
            let mut core = polka::CoreNode::new(node.clone());
            prop_assert_eq!(core.forward(&route), Some(*port));
        }
        // (b) steering by those remainders through the topology
        // reproduces the originating walk.
        let mut visited = vec![path[1]];
        let mut cur = path[1];
        loop {
            let id = alloc.get(topo.node_name(cur)).unwrap().clone();
            let mut core = polka::CoreNode::new(id);
            let port = core.forward(&route).unwrap();
            if port == PortId(0) {
                break;
            }
            cur = topo.neighbor_by_port(cur, port.0).unwrap();
            visited.push(cur);
            prop_assert!(visited.len() <= path.len(), "routing loop");
        }
        prop_assert_eq!(visited, path[1..].to_vec());
    }

    #[test]
    fn pot_verifies_iff_path_untampered(
        n_hops in 2usize..8,
        tamper in 0usize..8,
    ) {
        let mut alloc = NodeIdAllocator::new(8);
        let hops: Vec<_> = (0..n_hops)
            .map(|i| (alloc.assign(&format!("n{i}")).unwrap(), PortId(i as u16 + 1)))
            .collect();
        let spec = RouteSpec::new(hops.clone());
        let route = spec.compile().unwrap();
        let nodes: Vec<_> = hops.iter().map(|(n, _)| n.clone()).collect();

        // Clean traversal verifies.
        let clean = polka::pot::accumulate_pot(&route, &nodes);
        prop_assert!(polka::pot::verify_pot(&spec, clean));

        // Dropping any single hop breaks verification.
        let tamper = tamper % n_hops;
        let mut tampered_nodes = nodes.clone();
        tampered_nodes.remove(tamper);
        let bad = polka::pot::accumulate_pot(&route, &tampered_nodes);
        prop_assert!(!polka::pot::verify_pot(&spec, bad));
    }
}
