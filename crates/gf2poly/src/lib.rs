//! Arithmetic over the polynomial ring GF(2)\[t\].
//!
//! PolKA (Polynomial Key-based Architecture, Dominicini et al., NetSoft 2020)
//! encodes a source route as a single polynomial `routeID` over GF(2). Every
//! core node holds an irreducible polynomial `nodeID`, and forwarding is the
//! remainder `routeID mod nodeID`. The controller builds `routeID` from the
//! desired per-hop output ports with the polynomial Chinese Remainder Theorem.
//!
//! This crate provides the complete number system PolKA needs:
//!
//! * [`Poly`] — arbitrary-degree polynomials over GF(2), backed by 64-bit
//!   limbs (bit `i` of limb `j` is the coefficient of `t^(64*j+i)`),
//! * ring operations (`+`, `*`, carry-less, in-place variants),
//! * Euclidean division ([`Poly::divmod`]), [`Poly::gcd`] / [`Poly::egcd`],
//!   modular inverse and [`crt`],
//! * Rabin irreducibility testing and enumeration of irreducible
//!   polynomials for node-identifier assignment.
//!
//! The hot path for a PolKA switch is a single `mod` operation, mirroring
//! how hardware reuses the CRC circuit; [`Poly::rem_into`] offers an
//! allocation-free variant for that path.
//!
//! # Example: the paper's Figure 1
//!
//! ```
//! use gf2poly::{crt, Poly};
//!
//! let s1 = Poly::from_binary_str("11");   // t + 1
//! let s2 = Poly::from_binary_str("111");  // t^2 + t + 1
//! let s3 = Poly::from_binary_str("1011"); // t^3 + t + 1
//! let o1 = Poly::from_binary_str("1");    // port 1
//! let o2 = Poly::from_binary_str("10");   // port 2
//! let o3 = Poly::from_binary_str("110");  // port 6
//!
//! let route = crt(&[(o1, s1.clone()), (o2, s2.clone()), (o3, s3)]).unwrap();
//! assert_eq!(&route % &s2, Poly::from_binary_str("10")); // port label 2
//! ```

mod irreducible;
mod poly;

pub use irreducible::{irreducibles_of_degree, is_irreducible, nth_irreducible};
pub use poly::{crt, Poly};

/// Errors produced by GF(2)\[t\] arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gf2Error {
    /// Division (or reduction) by the zero polynomial.
    DivisionByZero,
    /// The element has no inverse modulo the given modulus
    /// (i.e. `gcd(a, m) != 1`).
    NotInvertible,
    /// CRT moduli are not pairwise coprime.
    ModuliNotCoprime,
    /// CRT was called with an empty system.
    EmptySystem,
}

impl std::fmt::Display for Gf2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Gf2Error::DivisionByZero => write!(f, "division by the zero polynomial"),
            Gf2Error::NotInvertible => write!(f, "element is not invertible modulo the modulus"),
            Gf2Error::ModuliNotCoprime => write!(f, "CRT moduli are not pairwise coprime"),
            Gf2Error::EmptySystem => write!(f, "CRT called with an empty residue system"),
        }
    }
}

impl std::error::Error for Gf2Error {}
