//! Irreducibility testing and enumeration of irreducible polynomials.
//!
//! PolKA node identifiers must be pairwise coprime so the CRT has a unique
//! solution; the architecture assigns *distinct irreducible* polynomials,
//! which are coprime by construction. This module provides the Rabin test
//! and a deterministic enumeration used by the node-ID allocator.

use crate::Poly;

/// Rabin's irreducibility test over GF(2).
///
/// A polynomial `f` of degree `n >= 1` is irreducible iff
/// `x^(2^n) ≡ x (mod f)` and, for every prime divisor `p` of `n`,
/// `gcd(x^(2^(n/p)) - x mod f, f) = 1`.
pub fn is_irreducible(f: &Poly) -> bool {
    let Some(n) = f.degree() else { return false };
    if n == 0 {
        return false; // units are not irreducible
    }
    // f must have a non-zero constant term unless f == t itself,
    // otherwise t divides it. (Cheap pre-filter; the test below also
    // catches this, but this mirrors hardware-friendly checks.)
    let x = Poly::t();
    if n == 1 {
        return true; // t and t+1
    }
    if !f.coeff(0) {
        return false;
    }
    // x^(2^n) mod f must equal x.
    let frob_n = match x.frobenius_pow(n, f) {
        Ok(p) => p,
        Err(_) => return false,
    };
    if frob_n != x.rem_ref(f).expect("f non-zero") {
        return false;
    }
    for p in prime_divisors(n) {
        let e = n / p;
        let frob = match x.frobenius_pow(e, f) {
            Ok(q) => q,
            Err(_) => return false,
        };
        let diff = &frob + &x; // subtraction == addition over GF(2)
        if !f.gcd(&diff).is_one() {
            return false;
        }
    }
    true
}

/// All irreducible polynomials of exactly the given degree, in increasing
/// order under [`Poly::cmp_poly`]. Intended for small degrees (node IDs are
/// typically degree ≤ 16); the count follows Gauss' necklace formula.
pub fn irreducibles_of_degree(degree: usize) -> Vec<Poly> {
    assert!(degree >= 1, "degree must be at least 1");
    assert!(
        degree <= 24,
        "enumeration by trial is intended for node-ID-sized degrees"
    );
    let mut out = Vec::new();
    // Candidates have the top bit set; odd constant term required for
    // degree >= 2 (even constant term means divisible by t).
    let start = 1u64 << degree;
    let end = 1u64 << (degree + 1);
    for bits in start..end {
        if degree >= 2 && bits & 1 == 0 {
            continue;
        }
        let f = Poly::from_bits(bits);
        if is_irreducible(&f) {
            out.push(f);
        }
    }
    out
}

/// The `n`-th (0-based) irreducible polynomial of the given degree under the
/// deterministic enumeration order, or `None` if there are fewer than `n+1`.
pub fn nth_irreducible(degree: usize, n: usize) -> Option<Poly> {
    irreducibles_of_degree(degree).into_iter().nth(n)
}

fn prime_divisors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Poly {
        Poly::from_binary_str(s)
    }

    #[test]
    fn known_irreducibles() {
        for s in [
            "10", "11", "111", "1011", "1101", "10011", "11111", "100101",
        ] {
            assert!(is_irreducible(&p(s)), "{s} should be irreducible");
        }
    }

    #[test]
    fn known_reducibles() {
        // t^2+1 = (t+1)^2 ; t^2+t = t(t+1); t^3+t^2+t+1 = (t+1)(t^2+1)
        for s in ["101", "110", "1111", "1001"] {
            assert!(!is_irreducible(&p(s)), "{s} should be reducible");
        }
        assert!(!is_irreducible(&Poly::one()));
        assert!(!is_irreducible(&Poly::zero()));
    }

    #[test]
    fn counts_match_necklace_formula() {
        // Number of monic irreducible polynomials of degree n over GF(2):
        // n=1:2, n=2:1, n=3:2, n=4:3, n=5:6, n=6:9, n=7:18, n=8:30
        let expected = [
            (1, 2),
            (2, 1),
            (3, 2),
            (4, 3),
            (5, 6),
            (6, 9),
            (7, 18),
            (8, 30),
        ];
        for (deg, count) in expected {
            assert_eq!(
                irreducibles_of_degree(deg).len(),
                count,
                "degree {deg} count"
            );
        }
    }

    #[test]
    fn enumeration_is_sorted_and_deduplicated() {
        let irr = irreducibles_of_degree(6);
        for w in irr.windows(2) {
            assert!(w[0].cmp_poly(&w[1]) == std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn products_of_irreducibles_are_reducible() {
        let irr = irreducibles_of_degree(4);
        for a in &irr {
            for b in &irr {
                assert!(!is_irreducible(&a.mul_ref(b)));
            }
        }
    }

    #[test]
    fn nth_irreducible_indexing() {
        assert_eq!(nth_irreducible(3, 0), Some(p("1011")));
        assert_eq!(nth_irreducible(3, 1), Some(p("1101")));
        assert_eq!(nth_irreducible(3, 2), None);
    }

    #[test]
    fn distinct_irreducibles_are_coprime() {
        let irr = irreducibles_of_degree(5);
        for (i, a) in irr.iter().enumerate() {
            for b in irr.iter().skip(i + 1) {
                assert!(a.gcd(b).is_one());
            }
        }
    }
}
