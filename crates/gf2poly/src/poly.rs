//! The [`Poly`] type: dense polynomials over GF(2) in 64-bit limbs.

use crate::Gf2Error;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, BitXor, Mul, Rem};

const LIMB_BITS: usize = 64;

/// A polynomial over GF(2).
///
/// Coefficients are stored little-endian: bit `i` of limb `j` is the
/// coefficient of `t^(64*j + i)`. The representation is kept normalized
/// (no trailing zero limbs), so equality is structural.
///
/// Addition is XOR, multiplication is carry-less; both match the
/// behaviour of the CRC circuits PolKA reuses in programmable hardware.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    limbs: Vec<u64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { limbs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly { limbs: vec![1] }
    }

    /// The monomial `t`.
    pub fn t() -> Self {
        Poly { limbs: vec![2] }
    }

    /// The monomial `t^k`.
    pub fn monomial(k: usize) -> Self {
        let mut p = Poly::zero();
        p.set_coeff(k, true);
        p
    }

    /// Builds a polynomial from the exponents with non-zero coefficients.
    ///
    /// `Poly::from_coeffs(&[0, 1, 3])` is `t^3 + t + 1`.
    pub fn from_coeffs(exponents: &[usize]) -> Self {
        let mut p = Poly::zero();
        for &e in exponents {
            // Duplicate exponents cancel in GF(2); use XOR semantics.
            p.set_coeff(e, !p.coeff(e));
        }
        p
    }

    /// Builds a polynomial from a `u64` bit pattern (bit `i` = coefficient
    /// of `t^i`). `from_bits(0b111)` is `t^2 + t + 1`.
    pub fn from_bits(bits: u64) -> Self {
        let mut p = Poly { limbs: vec![bits] };
        p.normalize();
        p
    }

    /// Builds a polynomial from a `u128` bit pattern.
    pub fn from_bits_u128(bits: u128) -> Self {
        let mut p = Poly {
            limbs: vec![bits as u64, (bits >> 64) as u64],
        };
        p.normalize();
        p
    }

    /// Builds a polynomial from limbs (little-endian).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut p = Poly { limbs };
        p.normalize();
        p
    }

    /// Parses a binary string, most-significant coefficient first, as used
    /// throughout the paper ("10000" is `t^4`).
    ///
    /// # Panics
    /// Panics if the string contains characters other than `0`/`1`.
    pub fn from_binary_str(s: &str) -> Self {
        let mut p = Poly::zero();
        let n = s.len();
        for (i, c) in s.chars().enumerate() {
            match c {
                '1' => p.set_coeff(n - 1 - i, true),
                '0' => {}
                other => panic!("invalid binary digit {other:?} in {s:?}"),
            }
        }
        p
    }

    /// Renders the polynomial as a binary string ("10000" for `t^4`).
    /// The zero polynomial renders as "0".
    pub fn to_binary_str(&self) -> String {
        match self.degree() {
            None => "0".to_string(),
            Some(d) => (0..=d)
                .rev()
                .map(|i| if self.coeff(i) { '1' } else { '0' })
                .collect(),
        }
    }

    /// The low 64 bits of the coefficient vector. Ports in PolKA are small,
    /// so remainders almost always fit; degree ≥ 64 terms are discarded.
    pub fn low_bits(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// The raw limbs (little-endian, normalized).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True for the constant polynomial 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        let last = *self.limbs.last()?;
        Some((self.limbs.len() - 1) * LIMB_BITS + (63 - last.leading_zeros() as usize))
    }

    /// Number of non-zero coefficients.
    pub fn weight(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// The coefficient of `t^i`.
    pub fn coeff(&self, i: usize) -> bool {
        let (limb, bit) = (i / LIMB_BITS, i % LIMB_BITS);
        self.limbs.get(limb).is_some_and(|l| (l >> bit) & 1 == 1)
    }

    /// Sets the coefficient of `t^i`.
    pub fn set_coeff(&mut self, i: usize, value: bool) {
        let (limb, bit) = (i / LIMB_BITS, i % LIMB_BITS);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << bit;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << bit);
            self.normalize();
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// In-place addition (XOR).
    pub fn add_assign_ref(&mut self, rhs: &Poly) {
        if self.limbs.len() < rhs.limbs.len() {
            self.limbs.resize(rhs.limbs.len(), 0);
        }
        for (a, b) in self.limbs.iter_mut().zip(rhs.limbs.iter()) {
            *a ^= *b;
        }
        self.normalize();
    }

    /// Multiplies by `t^k` (left shift).
    pub fn shl(&self, k: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let (limb_shift, bit_shift) = (k / LIMB_BITS, k % LIMB_BITS);
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= l >> (LIMB_BITS - bit_shift);
            }
        }
        Poly::from_limbs(out)
    }

    /// Carry-less multiplication (schoolbook over limbs).
    pub fn mul_ref(&self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let (short, long) = if self.limbs.len() <= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut acc = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &sl) in short.limbs.iter().enumerate() {
            if sl == 0 {
                continue;
            }
            let mut bits = sl;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for (j, &ll) in long.limbs.iter().enumerate() {
                    acc[i + j] ^= ll << bit;
                    if bit != 0 {
                        acc[i + j + 1] ^= ll >> (LIMB_BITS - bit);
                    }
                }
            }
        }
        Poly::from_limbs(acc)
    }

    /// The square of the polynomial. Squaring over GF(2) just spreads the
    /// bits (Frobenius), which is cheaper than a general multiply.
    pub fn square(&self) -> Poly {
        let mut out = vec![0u64; self.limbs.len() * 2];
        for (i, &l) in self.limbs.iter().enumerate() {
            let (lo, hi) = spread_bits(l);
            out[2 * i] = lo;
            out[2 * i + 1] = hi;
        }
        Poly::from_limbs(out)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q * divisor + r` and `deg r < deg divisor`.
    pub fn divmod(&self, divisor: &Poly) -> Result<(Poly, Poly), Gf2Error> {
        let ddeg = divisor.degree().ok_or(Gf2Error::DivisionByZero)?;
        let mut rem = self.clone();
        let mut quot = Poly::zero();
        while let Some(rdeg) = rem.degree() {
            if rdeg < ddeg {
                break;
            }
            let shift = rdeg - ddeg;
            quot.set_coeff(shift, true);
            let sub = divisor.shl(shift);
            rem.add_assign_ref(&sub);
        }
        Ok((quot, rem))
    }

    /// Remainder of Euclidean division. This is the PolKA forwarding
    /// operation: `port = routeID mod nodeID`.
    pub fn rem_ref(&self, divisor: &Poly) -> Result<Poly, Gf2Error> {
        Ok(self.divmod(divisor)?.1)
    }

    /// Allocation-free remainder into `scratch` (which is overwritten with
    /// the remainder). This is the shape of the switch fast path: the
    /// routeID arrives in the packet buffer and is reduced in place.
    pub fn rem_into(&self, divisor: &Poly, scratch: &mut Poly) -> Result<(), Gf2Error> {
        let ddeg = divisor.degree().ok_or(Gf2Error::DivisionByZero)?;
        scratch.limbs.clear();
        scratch.limbs.extend_from_slice(&self.limbs);
        loop {
            let Some(rdeg) = scratch.degree() else {
                return Ok(());
            };
            if rdeg < ddeg {
                return Ok(());
            }
            let shift = rdeg - ddeg;
            // xor divisor << shift into scratch without allocating
            let (limb_shift, bit_shift) = (shift / LIMB_BITS, shift % LIMB_BITS);
            for (i, &l) in divisor.limbs.iter().enumerate() {
                scratch.limbs[i + limb_shift] ^= l << bit_shift;
                if bit_shift != 0 {
                    let hi = l >> (LIMB_BITS - bit_shift);
                    if hi != 0 {
                        scratch.limbs[i + limb_shift + 1] ^= hi;
                    }
                }
            }
            scratch.normalize();
        }
    }

    /// Greatest common divisor (monic by construction over GF(2)).
    pub fn gcd(&self, other: &Poly) -> Poly {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.rem_ref(&b).expect("b is non-zero");
            a = b;
            b = r;
        }
        a
    }

    /// Extended Euclid: returns `(g, s, t)` such that `s*self + t*other = g`.
    pub fn egcd(&self, other: &Poly) -> (Poly, Poly, Poly) {
        let (mut r0, mut r1) = (self.clone(), other.clone());
        let (mut s0, mut s1) = (Poly::one(), Poly::zero());
        let (mut t0, mut t1) = (Poly::zero(), Poly::one());
        while !r1.is_zero() {
            let (q, r) = r0.divmod(&r1).expect("r1 is non-zero");
            r0 = std::mem::replace(&mut r1, r);
            let s_next = &s0 + &q.mul_ref(&s1);
            s0 = std::mem::replace(&mut s1, s_next);
            let t_next = &t0 + &q.mul_ref(&t1);
            t0 = std::mem::replace(&mut t1, t_next);
        }
        (r0, s0, t0)
    }

    /// Inverse of `self` modulo `modulus`, if `gcd(self, modulus) == 1`.
    pub fn mod_inverse(&self, modulus: &Poly) -> Result<Poly, Gf2Error> {
        if modulus.is_zero() {
            return Err(Gf2Error::DivisionByZero);
        }
        let reduced = self.rem_ref(modulus)?;
        let (g, s, _) = reduced.egcd(modulus);
        if !g.is_one() {
            return Err(Gf2Error::NotInvertible);
        }
        s.rem_ref(modulus)
    }

    /// Modular exponentiation `self^(2^k) mod modulus` by repeated squaring;
    /// the Frobenius ladder used by the Rabin irreducibility test.
    pub fn frobenius_pow(&self, k: usize, modulus: &Poly) -> Result<Poly, Gf2Error> {
        let mut acc = self.rem_ref(modulus)?;
        for _ in 0..k {
            acc = acc.square().rem_ref(modulus)?;
        }
        Ok(acc)
    }

    /// Total-order comparison by degree then lexicographic coefficients;
    /// used to enumerate node identifiers deterministically.
    pub fn cmp_poly(&self, other: &Poly) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            ord => ord,
        }
    }
}

/// Spreads the bits of `x` so bit `i` moves to bit `2*i`: the squaring map
/// for GF(2) polynomials packed in machine words.
fn spread_bits(x: u64) -> (u64, u64) {
    fn interleave_zeros(mut v: u64) -> u64 {
        // v holds 32 significant bits; spread them to 64.
        v &= 0xFFFF_FFFF;
        v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    (interleave_zeros(x), interleave_zeros(x >> 32))
}

impl Add<&Poly> for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl AddAssign<&Poly> for Poly {
    fn add_assign(&mut self, rhs: &Poly) {
        self.add_assign_ref(rhs);
    }
}

impl BitXor<&Poly> for &Poly {
    type Output = Poly;
    /// XOR is addition in GF(2)\[t\]; both operators are provided because
    /// both idioms appear in the PolKA literature.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn bitxor(self, rhs: &Poly) -> Poly {
        self + rhs
    }
}

impl Mul<&Poly> for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        self.mul_ref(rhs)
    }
}

impl Rem<&Poly> for &Poly {
    type Output = Poly;
    /// # Panics
    /// Panics if `rhs` is the zero polynomial. Use [`Poly::rem_ref`] for a
    /// fallible version.
    fn rem(self, rhs: &Poly) -> Poly {
        self.rem_ref(rhs).expect("remainder by zero polynomial")
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Poly({})", self.to_binary_str())
    }
}

impl fmt::Display for Poly {
    /// Renders in the paper's algebraic notation, e.g. `t^3 + t + 1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Some(d) = self.degree() else {
            return write!(f, "0");
        };
        let mut first = true;
        for i in (0..=d).rev() {
            if !self.coeff(i) {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match i {
                0 => write!(f, "1")?,
                1 => write!(f, "t")?,
                _ => write!(f, "t^{i}")?,
            }
        }
        Ok(())
    }
}

/// Polynomial Chinese Remainder Theorem.
///
/// Given residue/modulus pairs `(o_i, s_i)` with pairwise-coprime moduli,
/// returns the unique `routeID` of degree `< sum(deg s_i)` such that
/// `routeID ≡ o_i (mod s_i)` for all `i`. This is exactly how the PolKA
/// controller assembles a route identifier from per-hop output ports.
pub fn crt(system: &[(Poly, Poly)]) -> Result<Poly, Gf2Error> {
    if system.is_empty() {
        return Err(Gf2Error::EmptySystem);
    }
    let mut modulus_product = Poly::one();
    for (_, m) in system {
        if m.is_zero() {
            return Err(Gf2Error::DivisionByZero);
        }
        modulus_product = modulus_product.mul_ref(m);
    }
    let mut acc = Poly::zero();
    for (residue, m) in system {
        let (cofactor, rem_check) = modulus_product.divmod(m)?;
        debug_assert!(rem_check.is_zero());
        let inv = cofactor
            .mod_inverse(m)
            .map_err(|_| Gf2Error::ModuliNotCoprime)?;
        let term = residue.mul_ref(&cofactor).mul_ref(&inv);
        acc.add_assign_ref(&term);
    }
    acc.rem_ref(&modulus_product)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Poly {
        Poly::from_binary_str(s)
    }

    #[test]
    fn construction_and_rendering() {
        assert_eq!(p("1011").to_binary_str(), "1011");
        assert_eq!(Poly::zero().to_binary_str(), "0");
        assert_eq!(Poly::from_coeffs(&[3, 1, 0]), p("1011"));
        assert_eq!(Poly::from_bits(0b1011), p("1011"));
        assert_eq!(Poly::monomial(4), p("10000"));
        assert_eq!(format!("{}", p("1011")), "t^3 + t + 1");
        assert_eq!(format!("{}", p("10")), "t");
        assert_eq!(format!("{}", Poly::zero()), "0");
    }

    #[test]
    fn degree_and_weight() {
        assert_eq!(Poly::zero().degree(), None);
        assert_eq!(Poly::one().degree(), Some(0));
        assert_eq!(p("111").degree(), Some(2));
        assert_eq!(Poly::monomial(130).degree(), Some(130));
        assert_eq!(p("1011").weight(), 3);
    }

    #[test]
    fn duplicate_exponents_cancel() {
        assert_eq!(Poly::from_coeffs(&[2, 2]), Poly::zero());
        assert_eq!(Poly::from_coeffs(&[2, 2, 2]), Poly::monomial(2));
    }

    #[test]
    fn addition_is_xor() {
        assert_eq!(&p("1011") + &p("0110"), p("1101"));
        assert_eq!(&p("1011") + &p("1011"), Poly::zero());
    }

    #[test]
    fn multiplication_small_cases() {
        // (t+1)(t+1) = t^2 + 1 over GF(2)
        assert_eq!(p("11").mul_ref(&p("11")), p("101"));
        // (t^2+t+1)(t+1) = t^3 + 1
        assert_eq!(p("111").mul_ref(&p("11")), p("1001"));
        assert_eq!(p("111").mul_ref(&Poly::zero()), Poly::zero());
        assert_eq!(p("111").mul_ref(&Poly::one()), p("111"));
    }

    #[test]
    fn multiplication_across_limb_boundary() {
        let a = Poly::monomial(63);
        let b = Poly::monomial(5);
        assert_eq!(a.mul_ref(&b), Poly::monomial(68));
        let c = &Poly::monomial(63) + &Poly::one();
        let d = c.mul_ref(&c);
        assert_eq!(d, &Poly::monomial(126) + &Poly::one());
    }

    #[test]
    fn square_matches_mul() {
        let a = p("110101101");
        assert_eq!(a.square(), a.mul_ref(&a));
        let b = &Poly::monomial(97) + &p("1011");
        assert_eq!(b.square(), b.mul_ref(&b));
    }

    #[test]
    fn paper_fig1_mod_example() {
        // routeID = 10000 (t^4); node s2 = t^2+t+1 -> port label 2 (= t).
        let route = p("10000");
        let s2 = p("111");
        assert_eq!(route.rem_ref(&s2).unwrap(), p("10"));
        assert_eq!(route.rem_ref(&s2).unwrap().low_bits(), 2);
    }

    #[test]
    fn divmod_reconstructs() {
        let a = p("110101101011");
        let b = p("1011");
        let (q, r) = a.divmod(&b).unwrap();
        assert!(r.degree().unwrap_or(0) < b.degree().unwrap());
        assert_eq!(&q.mul_ref(&b) + &r, a);
    }

    #[test]
    fn division_by_zero_is_error() {
        assert_eq!(
            p("101").divmod(&Poly::zero()).unwrap_err(),
            Gf2Error::DivisionByZero
        );
    }

    #[test]
    fn rem_into_matches_rem_ref() {
        let a = p("1101011010111001");
        let b = p("10011");
        let mut scratch = Poly::zero();
        a.rem_into(&b, &mut scratch).unwrap();
        assert_eq!(scratch, a.rem_ref(&b).unwrap());
    }

    #[test]
    fn gcd_of_coprime_is_one() {
        // t^2+t+1 and t^3+t+1 are distinct irreducibles.
        assert!(p("111").gcd(&p("1011")).is_one());
    }

    #[test]
    fn gcd_with_common_factor() {
        let f = p("111");
        let a = f.mul_ref(&p("11"));
        let b = f.mul_ref(&p("1011"));
        assert_eq!(a.gcd(&b), f);
    }

    #[test]
    fn egcd_bezout_identity() {
        let a = p("110101");
        let b = p("10011");
        let (g, s, t) = a.egcd(&b);
        let lhs = &s.mul_ref(&a) + &t.mul_ref(&b);
        assert_eq!(lhs, g);
    }

    #[test]
    fn mod_inverse_roundtrip() {
        let m = p("1011"); // irreducible, field GF(8)
        for bits in 1u64..8 {
            let a = Poly::from_bits(bits);
            let inv = a.mod_inverse(&m).unwrap();
            assert!(a.mul_ref(&inv).rem_ref(&m).unwrap().is_one());
        }
    }

    #[test]
    fn mod_inverse_of_non_coprime_fails() {
        let m = p("111").mul_ref(&p("11"));
        assert_eq!(
            p("11").mod_inverse(&m).unwrap_err(),
            Gf2Error::NotInvertible
        );
    }

    #[test]
    fn crt_fig1_route() {
        // Paper Fig 1: s1=t+1, s2=t^2+t+1, s3=t^3+t+1; o1=1, o2=t, o3=t^2+t.
        let system = [
            (p("1"), p("11")),
            (p("10"), p("111")),
            (p("110"), p("1011")),
        ];
        let route = crt(&system).unwrap();
        for (o, s) in &system {
            assert_eq!(&route % s, o.clone());
        }
        // routeID must fit under the modulus product (degree < 1+2+3).
        assert!(route.degree().unwrap() < 6);
    }

    #[test]
    fn crt_rejects_non_coprime_moduli() {
        let system = [(p("1"), p("111")), (p("10"), p("111"))];
        assert_eq!(crt(&system).unwrap_err(), Gf2Error::ModuliNotCoprime);
    }

    #[test]
    fn crt_rejects_empty_system() {
        assert_eq!(crt(&[]).unwrap_err(), Gf2Error::EmptySystem);
    }

    #[test]
    fn frobenius_pow_is_iterated_squaring() {
        let m = p("10011101"); // degree-7 modulus
        let x = Poly::t();
        let direct = x
            .square()
            .rem_ref(&m)
            .unwrap()
            .square()
            .rem_ref(&m)
            .unwrap();
        assert_eq!(x.frobenius_pow(2, &m).unwrap(), direct);
    }

    #[test]
    fn set_coeff_clears_and_normalizes() {
        let mut a = Poly::monomial(100);
        a.set_coeff(100, false);
        assert!(a.is_zero());
        assert_eq!(a.limbs().len(), 0);
    }

    #[test]
    fn cmp_orders_by_degree_then_lex() {
        assert_eq!(p("11").cmp_poly(&p("111")), Ordering::Less);
        assert_eq!(p("101").cmp_poly(&p("110")), Ordering::Less);
        assert_eq!(p("111").cmp_poly(&p("111")), Ordering::Equal);
    }
}
