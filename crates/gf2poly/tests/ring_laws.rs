//! Property tests: GF(2)[t] must behave like a commutative ring with
//! Euclidean division, and CRT must reconstruct residues exactly.

use gf2poly::{crt, irreducibles_of_degree, Poly};
use proptest::prelude::*;

fn arb_poly(max_limbs: usize) -> impl Strategy<Value = Poly> {
    prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(Poly::from_limbs)
}

fn arb_nonzero_poly(max_limbs: usize) -> impl Strategy<Value = Poly> {
    arb_poly(max_limbs).prop_filter("non-zero", |p| !p.is_zero())
}

proptest! {
    #[test]
    fn addition_commutes(a in arb_poly(4), b in arb_poly(4)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn addition_is_involution(a in arb_poly(4), b in arb_poly(4)) {
        // x + b + b == x : every element is its own additive inverse.
        prop_assert_eq!(&(&a + &b) + &b, a);
    }

    #[test]
    fn multiplication_commutes(a in arb_poly(3), b in arb_poly(3)) {
        prop_assert_eq!(a.mul_ref(&b), b.mul_ref(&a));
    }

    #[test]
    fn multiplication_associates(a in arb_poly(2), b in arb_poly(2), c in arb_poly(2)) {
        prop_assert_eq!(a.mul_ref(&b).mul_ref(&c), a.mul_ref(&b.mul_ref(&c)));
    }

    #[test]
    fn multiplication_distributes(a in arb_poly(2), b in arb_poly(2), c in arb_poly(2)) {
        let lhs = a.mul_ref(&(&b + &c));
        let rhs = &a.mul_ref(&b) + &a.mul_ref(&c);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn one_is_multiplicative_identity(a in arb_poly(4)) {
        prop_assert_eq!(a.mul_ref(&Poly::one()), a.clone());
    }

    #[test]
    fn degree_of_product_is_sum(a in arb_nonzero_poly(3), b in arb_nonzero_poly(3)) {
        let prod = a.mul_ref(&b);
        prop_assert_eq!(
            prod.degree().unwrap(),
            a.degree().unwrap() + b.degree().unwrap()
        );
    }

    #[test]
    fn square_matches_self_multiplication(a in arb_poly(4)) {
        prop_assert_eq!(a.square(), a.mul_ref(&a));
    }

    #[test]
    fn divmod_invariant(a in arb_poly(4), b in arb_nonzero_poly(2)) {
        let (q, r) = a.divmod(&b).unwrap();
        // a = q*b + r, deg r < deg b
        prop_assert_eq!(&q.mul_ref(&b) + &r, a);
        if let Some(rd) = r.degree() {
            prop_assert!(rd < b.degree().unwrap());
        }
    }

    #[test]
    fn rem_into_agrees_with_divmod(a in arb_poly(4), b in arb_nonzero_poly(2)) {
        let mut scratch = Poly::zero();
        a.rem_into(&b, &mut scratch).unwrap();
        prop_assert_eq!(scratch, a.divmod(&b).unwrap().1);
    }

    #[test]
    fn gcd_divides_both(a in arb_nonzero_poly(3), b in arb_nonzero_poly(3)) {
        let g = a.gcd(&b);
        prop_assert!(a.rem_ref(&g).unwrap().is_zero());
        prop_assert!(b.rem_ref(&g).unwrap().is_zero());
    }

    #[test]
    fn egcd_bezout(a in arb_poly(3), b in arb_poly(3)) {
        let (g, s, t) = a.egcd(&b);
        prop_assert_eq!(&s.mul_ref(&a) + &t.mul_ref(&b), g);
    }

    #[test]
    fn binary_string_roundtrip(a in arb_poly(3)) {
        prop_assert_eq!(Poly::from_binary_str(&a.to_binary_str()), a);
    }

    #[test]
    fn crt_reconstructs_residues(
        seed in 0usize..64,
        r1 in any::<u64>(), r2 in any::<u64>(), r3 in any::<u64>()
    ) {
        // Pick three distinct irreducible moduli deterministically from seed.
        let pool5 = irreducibles_of_degree(5);
        let pool6 = irreducibles_of_degree(6);
        let pool7 = irreducibles_of_degree(7);
        let m1 = pool5[seed % pool5.len()].clone();
        let m2 = pool6[seed % pool6.len()].clone();
        let m3 = pool7[seed % pool7.len()].clone();
        let o1 = Poly::from_bits(r1).rem_ref(&m1).unwrap();
        let o2 = Poly::from_bits(r2).rem_ref(&m2).unwrap();
        let o3 = Poly::from_bits(r3).rem_ref(&m3).unwrap();
        let route = crt(&[
            (o1.clone(), m1.clone()),
            (o2.clone(), m2.clone()),
            (o3.clone(), m3.clone()),
        ]).unwrap();
        prop_assert_eq!(&route % &m1, o1);
        prop_assert_eq!(&route % &m2, o2);
        prop_assert_eq!(&route % &m3, o3);
        // Uniqueness bound: deg(route) < deg(m1 m2 m3) = 18.
        prop_assert!(route.degree().unwrap_or(0) < 18);
    }

    #[test]
    fn mod_inverse_in_prime_field(bits in 1u64..255) {
        // GF(2^8) via the AES polynomial t^8+t^4+t^3+t+1.
        let m = Poly::from_bits(0b1_0001_1011);
        let a = Poly::from_bits(bits);
        let inv = a.mod_inverse(&m).unwrap();
        prop_assert!(a.mul_ref(&inv).rem_ref(&m).unwrap().is_one());
    }
}
