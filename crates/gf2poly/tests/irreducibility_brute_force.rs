//! Cross-validation of the Rabin irreducibility test against brute-force
//! trial division for every polynomial up to degree 12. If these two
//! disagree anywhere, PolKA's node-ID pool would silently contain
//! reducible moduli and CRT uniqueness would break.

use gf2poly::{irreducibles_of_degree, is_irreducible, Poly};

/// Trial division: f (deg >= 1) is irreducible iff no polynomial of
/// degree 1..=deg(f)/2 divides it.
fn brute_force_irreducible(f: &Poly) -> bool {
    let deg = match f.degree() {
        None | Some(0) => return false,
        Some(d) => d,
    };
    for dd in 1..=deg / 2 {
        let start = 1u64 << dd;
        let end = 1u64 << (dd + 1);
        for bits in start..end {
            let g = Poly::from_bits(bits);
            if f.rem_ref(&g).expect("g non-zero").is_zero() {
                return false;
            }
        }
    }
    true
}

#[test]
fn rabin_matches_brute_force_up_to_degree_12() {
    for deg in 1..=12usize {
        let start = 1u64 << deg;
        let end = 1u64 << (deg + 1);
        for bits in start..end {
            let f = Poly::from_bits(bits);
            assert_eq!(
                is_irreducible(&f),
                brute_force_irreducible(&f),
                "disagreement on {} (degree {deg})",
                f.to_binary_str()
            );
        }
    }
}

#[test]
fn enumeration_matches_filtered_brute_force() {
    for deg in 1..=10usize {
        let enumerated = irreducibles_of_degree(deg);
        let brute: Vec<Poly> = ((1u64 << deg)..(1u64 << (deg + 1)))
            .map(Poly::from_bits)
            .filter(brute_force_irreducible)
            .collect();
        assert_eq!(enumerated, brute, "degree {deg}");
    }
}
