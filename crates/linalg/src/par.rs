//! Scoped-thread parallel helpers.
//!
//! Ensemble regressors (Random Forest, Bagging) and the 18-model
//! evaluation sweep are embarrassingly parallel: each task is independent
//! and CPU-bound. `std::thread::scope` gives us data-race-free fork-join
//! parallelism with borrowed inputs and no runtime dependency; results
//! come back in input order, so parallel and sequential execution are
//! observationally identical (the rayon discipline: if it compiles, it
//! computes the same thing).

use std::num::NonZeroUsize;

/// Number of worker threads to use: the available parallelism, capped by
/// the task count so tiny workloads don't pay spawn overhead.
pub fn worker_count(tasks: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(tasks).max(1)
}

/// Applies `f` to every index `0..n` on a scoped thread pool and returns
/// the results in index order.
///
/// `f` must be `Sync` because multiple workers call it concurrently.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(n);
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = w * chunk;
                for (k, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + k));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("worker filled every slot"))
        .collect()
}

/// Maps `f` over a slice in parallel, preserving order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_order() {
        let out = par_map_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_index_visited_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = par_map_indexed(1000, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn par_map_over_slice() {
        let xs = vec![1.0f64, 4.0, 9.0];
        assert_eq!(par_map(&xs, |x| x.sqrt()), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1000) >= 1);
        assert!(worker_count(2) <= 2);
    }
}
