//! Dense linear algebra and statistics substrate for the Hecate ML stack.
//!
//! The paper's ML side is scikit-learn; rebuilding its eighteen regressors
//! in Rust needs a small but complete numerical core:
//!
//! * [`Matrix`] — row-major dense `f64` matrices with the usual products;
//! * decompositions — LU with partial pivoting ([`Matrix::solve`]),
//!   Cholesky ([`Matrix::solve_spd`], used by Ridge/ARD/GPR), and
//!   Householder QR least squares ([`lstsq`], used by OLS/TheilSen/RANSAC);
//! * order statistics and robust scale estimators ([`stats`]) for the
//!   robust regressors (Huber, RANSAC, Theil-Sen) and AdaBoost.R2's
//!   weighted median;
//! * [`par`] — scoped-thread helpers (`std::thread::scope`) for
//!   embarrassingly parallel model fitting (forests, bagging, the 18-model
//!   evaluation sweep).
//!
//! Everything is plain safe Rust; the matrices involved are small
//! (hundreds of rows, tens of columns), so clarity and cache-friendly
//! row-major loops beat exotic blocking here.

pub mod matrix;
pub mod par;
pub mod stats;

pub use matrix::{lstsq, Matrix};

/// Errors from numerical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Dimensions do not conform for the requested operation.
    DimensionMismatch {
        /// Human-readable operation name.
        op: &'static str,
        /// Left-hand dimensions.
        lhs: (usize, usize),
        /// Right-hand dimensions.
        rhs: (usize, usize),
    },
    /// The matrix is singular (or not positive definite for Cholesky).
    Singular,
    /// An empty system was supplied.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular or not positive definite"),
            LinalgError::Empty => write!(f, "empty system"),
        }
    }
}

impl std::error::Error for LinalgError {}
