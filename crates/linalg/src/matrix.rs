//! Row-major dense matrices and the decompositions the regressors need.

use crate::LinalgError;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Selects a subset of rows (with repetition allowed — bootstrap
    /// resampling uses this directly).
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (k, &i) in idx.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams rhs rows, cache-friendly for row-major.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows).map(|i| dot(self.row(i), v)).collect())
    }

    /// `self^T * self` — the Gram matrix, computed without materializing
    /// the transpose (used by Ridge/ARD normal equations).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    out[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// `self^T * v` without materializing the transpose.
    pub fn t_matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "t_matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(i)) {
                *o += vi * x;
            }
        }
        Ok(out)
    }

    /// Solves `self * x = b` by LU with partial pivoting.
    #[allow(clippy::needless_range_loop)] // index arithmetic mirrors the textbook algorithm
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "solve",
                lhs: (self.rows, self.cols),
                rhs: (b.len(), 1),
            });
        }
        if self.rows != b.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "solve",
                lhs: (self.rows, self.cols),
                rhs: (b.len(), 1),
            });
        }
        let n = self.rows;
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // partial pivot
            let mut p = k;
            let mut max = a[perm[k] * n + k].abs();
            for i in k + 1..n {
                let v = a[perm[i] * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(LinalgError::Singular);
            }
            perm.swap(k, p);
            let pk = perm[k];
            let pivot = a[pk * n + k];
            for i in k + 1..n {
                let pi = perm[i];
                let f = a[pi * n + k] / pivot;
                a[pi * n + k] = f;
                for j in k + 1..n {
                    a[pi * n + j] -= f * a[pk * n + j];
                }
            }
        }
        // forward substitution on permuted b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = x[perm[i]];
            for j in 0..i {
                s -= a[perm[i] * n + j] * y[j];
            }
            y[i] = s;
        }
        // back substitution
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= a[perm[i] * n + j] * x[j];
            }
            x[i] = s / a[perm[i] * n + i];
        }
        Ok(x)
    }

    /// Cholesky factor `L` (lower triangular with `L L^T = self`) for a
    /// symmetric positive-definite matrix.
    pub fn cholesky(&self) -> Result<Matrix, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                lhs: (self.rows, self.cols),
                rhs: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::Singular);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `self * x = b` for symmetric positive-definite `self` via
    /// Cholesky (used by Ridge, ARD, GPR).
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let l = self.cholesky()?;
        Ok(l.cholesky_solve(b))
    }

    /// Given `self = L` (a Cholesky factor), solves `L L^T x = b`.
    pub fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self[(i, j)] * y[j];
            }
            y[i] = s / self[(i, i)];
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self[(j, i)] * x[j];
            }
            x[i] = s / self[(i, i)];
        }
        x
    }

    /// Log-determinant of the SPD matrix with the given Cholesky factor
    /// (`self` must be the factor). Used by GPR's marginal likelihood.
    pub fn cholesky_logdet(&self) -> f64 {
        (0..self.rows).map(|i| self[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Least squares `min ||A x - b||` via Householder QR with column checks;
/// requires `A.rows >= A.cols`. Returns the coefficient vector.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let (m, n) = (a.rows(), a.cols());
    if m != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "lstsq",
            lhs: (m, n),
            rhs: (b.len(), 1),
        });
    }
    if m < n || n == 0 {
        return Err(LinalgError::Empty);
    }
    let mut r = a.clone();
    let mut qtb = b.to_vec();
    // Householder transformations applied in place to r and qtb.
    for k in 0..n {
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < 1e-300 {
            return Err(LinalgError::Singular);
        }
        let alpha = if r[(k, k)] > 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in k + 1..m {
            v[i - k] = r[(i, k)];
        }
        let vtv = dot(&v, &v);
        if vtv < 1e-300 {
            continue;
        }
        // apply H = I - 2 v v^T / (v^T v) to the trailing block of r
        for j in k..n {
            let mut s = 0.0;
            for i in k..m {
                s += v[i - k] * r[(i, j)];
            }
            let f = 2.0 * s / vtv;
            for i in k..m {
                r[(i, j)] -= f * v[i - k];
            }
        }
        // and to qtb
        let mut s = 0.0;
        for i in k..m {
            s += v[i - k] * qtb[i];
        }
        let f = 2.0 * s / vtv;
        for i in k..m {
            qtb[i] -= f * v[i - k];
        }
    }
    // back substitution on the upper-triangular R
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = qtb[i];
        for j in i + 1..n {
            s -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d.abs() < 1e-300 {
            return Err(LinalgError::Singular);
        }
        x[i] = s / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![3.0, -4.0, 1.0],
            vec![0.0, 1.0, 2.0],
            vec![2.0, 2.0, 2.0],
        ]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(approx(g.as_slice(), explicit.as_slice(), 1e-12));
    }

    #[test]
    fn t_matvec_matches_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = vec![1.0, 0.5, -1.0];
        let direct = a.t_matvec(&v).unwrap();
        let explicit = a.transpose().matvec(&v).unwrap();
        assert!(approx(&direct, &explicit, 1e-12));
    }

    #[test]
    fn lu_solve_known_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!(approx(&x, &[2.0, 3.0, -1.0], 1e-10));
    }

    #[test]
    fn lu_solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!(approx(&x, &[7.0, 3.0], 1e-12));
    }

    #[test]
    fn singular_solve_fails() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.5],
            vec![0.6, 1.5, 2.0],
        ]);
        let l = a.cholesky().unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(approx(back.as_slice(), a.as_slice(), 1e-10));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert_eq!(a.cholesky().unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn spd_solve_matches_lu() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.5],
            vec![0.6, 1.5, 2.0],
        ]);
        let b = [1.0, -2.0, 0.5];
        let x1 = a.solve(&b).unwrap();
        let x2 = a.solve_spd(&b).unwrap();
        assert!(approx(&x1, &x2, 1e-9));
    }

    #[test]
    fn cholesky_logdet_known() {
        let a = Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 9.0]]);
        let l = a.cholesky().unwrap();
        assert!((l.cholesky_logdet() - (36.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn lstsq_exact_system() {
        // y = 2x + 1 fit through exact points.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]);
        let x = lstsq(&a, &[1.0, 3.0, 5.0]).unwrap();
        assert!(approx(&x, &[1.0, 2.0], 1e-10));
    }

    #[test]
    fn lstsq_overdetermined_minimizes_residual() {
        // Noisy line: solution must be the classic normal-equation answer.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ]);
        let b = [0.1, 1.9, 4.1, 5.9];
        let x = lstsq(&a, &b).unwrap();
        // normal equations solution
        let gram = a.gram();
        let rhs = a.t_matvec(&b).unwrap();
        let ne = gram.solve(&rhs).unwrap();
        assert!(approx(&x, &ne, 1e-9));
    }

    #[test]
    fn lstsq_underdetermined_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(lstsq(&a, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn select_rows_bootstraps() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.as_slice(), &[3.0, 1.0, 3.0]);
    }
}
