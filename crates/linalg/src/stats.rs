//! Order statistics and robust scale estimators.
//!
//! The robust regressors (Huber, RANSAC, Theil-Sen) and AdaBoost.R2 need
//! medians, MAD, quantiles and weighted medians; the telemetry pipeline
//! uses the summary helpers.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices shorter than 1.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (average of middle pair for even lengths); `0.0` when empty.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Linear-interpolation quantile, `q` in `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Median absolute deviation (unscaled). RANSAC's default inlier
/// threshold is the MAD of the targets, matching scikit-learn.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Weighted median: the value `x_k` minimizing the weighted absolute
/// deviation. Used by AdaBoost.R2 to combine estimator predictions.
///
/// Returns `0.0` when the slice is empty or all weights are zero.
pub fn weighted_median(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(values.len(), weights.len(), "values/weights mismatch");
    if values.is_empty() {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("NaN in weighted_median input")
    });
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let half = total / 2.0;
    let mut acc = 0.0;
    for &i in &idx {
        acc += weights[i];
        if acc >= half {
            return values[i];
        }
    }
    values[*idx.last().expect("non-empty")]
}

/// Summary statistics for a series, used by trace reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub median: f64,
}

/// Computes a [`Summary`] of the series.
pub fn summarize(xs: &[f64]) -> Summary {
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
    }
    if xs.is_empty() {
        min = 0.0;
        max = 0.0;
    }
    Summary {
        mean: mean(xs),
        std: std_dev(xs),
        min,
        max,
        median: median(xs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
        assert_eq!(quantile(&xs, 0.125), 1.5);
    }

    #[test]
    fn mad_is_robust_to_outliers() {
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let dirty = [1.0, 2.0, 3.0, 4.0, 500.0];
        assert_eq!(mad(&clean), 1.0);
        assert_eq!(mad(&dirty), 1.0); // single outlier does not move MAD
    }

    #[test]
    fn weighted_median_basic() {
        // Heavy weight drags the median to that value.
        assert_eq!(weighted_median(&[1.0, 2.0, 10.0], &[1.0, 1.0, 10.0]), 10.0);
        // Equal weights behave like a lower median.
        assert_eq!(weighted_median(&[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0]), 2.0);
    }

    #[test]
    fn weighted_median_degenerate() {
        assert_eq!(weighted_median(&[], &[]), 0.0);
        assert_eq!(weighted_median(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn summary_fields() {
        let s = summarize(&[2.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.median, 4.0);
    }
}
