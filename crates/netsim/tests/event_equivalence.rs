//! Equivalence oracle for the event-driven core: a self-contained
//! reimplementation of the retired tick-stepped simulator (full
//! water-fill recompute on every change, per-tick
//! `rate += (share - rate) * (1 - exp(-dt/tau))` stepping) is driven
//! over random small scenarios, and every telemetry sample it produces
//! must match the event core's.
//!
//! All generated event timestamps are multiples of the legacy tick
//! (100 ms) so both cores apply them at the same instant — the event
//! core additionally fixes the sub-tick timing skew, which is covered
//! by dedicated unit tests in `sim.rs`, not here. Because
//! `(1 - alpha)^k` with `alpha = 1 - exp(-dt/tau)` is exactly
//! `exp(-k*dt/tau)`, the two cores agree to float rounding; the 1e-6
//! tolerance absorbs the event core's incremental water-fill and its
//! convergence snap (<= 1e-9 Mbps).

use netsim::fairness::{directed_links, max_min_allocation, AllocFlow};
use netsim::topo::mesh;
use netsim::{Event, FlowId, FlowSpec, NodeIdx, Simulation, Topology};
use proptest::prelude::*;
use std::collections::BTreeMap;

const TICK_MS: u64 = 100;
const TAU_S: f64 = 1.2;
const EFFICIENCY: f64 = 0.86;

struct LegacyFlow {
    spec: FlowSpec,
    path: Vec<NodeIdx>,
    rate: f64,
    share: f64,
}

/// The retired tick core, kept only as a test oracle: advance time in
/// fixed 100 ms ticks, apply due events, rerun the full water-fill,
/// sample, then step every flow one tick toward its share.
fn legacy_run(
    mut topo: Topology,
    events: &[(u64, Event)],
    until_ms: u64,
    sample_ms: u64,
) -> BTreeMap<(String, u64), f64> {
    let mut queue: Vec<(u64, usize, Event)> = events
        .iter()
        .enumerate()
        .map(|(i, (at, e))| (*at, i, e.clone()))
        .collect();
    queue.sort_by_key(|(at, seq, _)| (*at, *seq));
    let mut qi = 0;

    let mut flows: BTreeMap<FlowId, LegacyFlow> = BTreeMap::new();
    let mut order: Vec<FlowId> = Vec::new();
    let mut samples = BTreeMap::new();
    let mut now = 0u64;
    let mut next_sample = 0u64;
    let alpha = 1.0 - (-(TICK_MS as f64 / 1000.0) / TAU_S).exp();

    while now < until_ms {
        let mut dirty = false;
        while qi < queue.len() && queue[qi].0 <= now {
            match queue[qi].2.clone() {
                Event::StartFlow { id, spec, path } => {
                    if !flows.contains_key(&id) {
                        order.push(id);
                    }
                    flows.insert(
                        id,
                        LegacyFlow {
                            spec,
                            path,
                            rate: 0.0,
                            share: 0.0,
                        },
                    );
                }
                Event::StopFlow(id) => {
                    flows.remove(&id);
                    order.retain(|f| *f != id);
                }
                Event::SetFlowPath(id, path) => {
                    if let Some(f) = flows.get_mut(&id) {
                        f.path = path;
                    }
                }
                Event::SetLinkCapacity(link, mbps) => {
                    topo.link_mut(link).capacity_mbps = mbps;
                }
                Event::SetLinkUp(link, up) => {
                    topo.link_mut(link).up = up;
                }
                Event::SetFlowDemand(id, demand) => {
                    if let Some(f) = flows.get_mut(&id) {
                        f.spec.demand_mbps = demand;
                    }
                }
            }
            dirty = true;
            qi += 1;
        }
        if dirty {
            let alloc: Vec<AllocFlow> = order
                .iter()
                .map(|id| {
                    let f = &flows[id];
                    match directed_links(&topo, &f.path) {
                        Ok(links) => AllocFlow {
                            links,
                            demand: f.spec.demand_mbps,
                        },
                        Err(_) => AllocFlow {
                            links: Vec::new(),
                            demand: Some(0.0),
                        },
                    }
                })
                .collect();
            let rates = max_min_allocation(&topo, &alloc);
            for (id, raw) in order.iter().zip(rates) {
                flows.get_mut(id).unwrap().share = raw * EFFICIENCY;
            }
        }
        if now >= next_sample {
            for id in &order {
                let f = &flows[id];
                samples.insert((f.spec.label.clone(), now), f.rate);
            }
            next_sample += sample_ms;
        }
        for f in flows.values_mut() {
            f.rate += (f.share - f.rate) * alpha;
            f.rate = f.rate.max(0.0);
        }
        now += TICK_MS;
    }
    samples
}

fn event_run(
    topo: Topology,
    events: &[(u64, Event)],
    until_ms: u64,
    sample_ms: u64,
) -> BTreeMap<(String, u64), f64> {
    let mut sim = Simulation::new(topo, 7);
    for (at, e) in events {
        sim.schedule(*at, e.clone()).expect("generated event valid");
    }
    sim.run_until(until_ms, sample_ms);
    let mut samples = BTreeMap::new();
    for rec in sim.telemetry() {
        if let Some(label) = rec
            .key
            .strip_prefix("flow:")
            .and_then(|k| k.strip_suffix(":rate"))
        {
            samples.insert((label.to_string(), rec.at_ms), rec.value);
        }
    }
    samples
}

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Random tick-aligned scenario on a mesh: staggered greedy and
/// demand-limited arrivals, some departures, one capacity change, one
/// link failure (and possible recovery).
fn generate(topo: &Topology, seed: u64, n_flows: usize, until_ms: u64) -> Vec<(u64, Event)> {
    let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
    let nodes = topo.node_count() as u64;
    let mut events = Vec::new();
    let mut made = 0u64;
    while (made as usize) < n_flows {
        let src = NodeIdx(rng.below(nodes) as u32);
        let dst = NodeIdx(rng.below(nodes) as u32);
        if src == dst {
            continue;
        }
        let Some(path) = topo.shortest_path_by_delay(src, dst) else {
            continue;
        };
        made += 1;
        let id = FlowId(made);
        let start = rng.below(until_ms / (2 * TICK_MS)) * TICK_MS;
        let demand = if rng.below(3) == 0 {
            Some(rng.below(50) as f64 / 10.0 + 0.2)
        } else {
            None
        };
        events.push((
            start,
            Event::StartFlow {
                id,
                spec: FlowSpec {
                    src,
                    dst,
                    demand_mbps: demand,
                    tos: 0,
                    label: format!("f{made}"),
                },
                path,
            },
        ));
        if rng.below(3) == 0 {
            let stop = start + TICK_MS + rng.below(until_ms / (2 * TICK_MS)) * TICK_MS;
            if stop < until_ms {
                events.push((stop, Event::StopFlow(id)));
            }
        }
        // Mid-life demand ramp: up, down, or to greedy. May land after
        // the flow stopped — both cores must ignore that identically.
        if rng.below(3) == 0 {
            let ramp = start + TICK_MS + rng.below(until_ms / (2 * TICK_MS)) * TICK_MS;
            let new_demand = if rng.below(4) == 0 {
                None
            } else {
                Some(rng.below(60) as f64 / 10.0 + 0.1)
            };
            if ramp < until_ms {
                events.push((ramp, Event::SetFlowDemand(id, new_demand)));
            }
        }
    }
    let links = topo.link_count() as u64;
    let victim = netsim::LinkId(rng.below(links) as u32);
    let down_at = (until_ms / 4 / TICK_MS) * TICK_MS;
    events.push((down_at, Event::SetLinkUp(victim, false)));
    if rng.below(2) == 0 {
        events.push((down_at * 2, Event::SetLinkUp(victim, true)));
    }
    let squeezed = netsim::LinkId(rng.below(links) as u32);
    events.push((
        (until_ms / 3 / TICK_MS) * TICK_MS,
        Event::SetLinkCapacity(squeezed, rng.below(15) as f64 + 1.0),
    ));
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn event_core_matches_legacy_tick_core(
        seed in 1u64..4_000,
        n in 6usize..10,
        stride in 2usize..4,
        n_flows in 2usize..7,
    ) {
        let until_ms = 8_000;
        let sample_ms = 500;
        let topo = mesh(n, stride, 10.0);
        let events = generate(&topo, seed, n_flows, until_ms);

        let legacy = legacy_run(mesh(n, stride, 10.0), &events, until_ms, sample_ms);
        let evented = event_run(topo, &events, until_ms, sample_ms);

        // Same sample grid: every (flow, time) the legacy core emitted
        // must exist in the event core's telemetry and vice versa.
        let lk: Vec<_> = legacy.keys().collect();
        let ek: Vec<_> = evented.keys().collect();
        prop_assert_eq!(&lk, &ek, "telemetry sample keys diverge (seed {})", seed);

        for (key, want) in &legacy {
            let got = evented[key];
            prop_assert!(
                (got - want).abs() < 1e-6,
                "{:?}: event {} vs legacy {} (seed {})",
                key, got, want, seed
            );
        }
    }
}
