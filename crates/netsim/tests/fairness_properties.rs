//! Property tests: the max-min allocation must satisfy its defining
//! invariants on random topologies and flow sets.

use netsim::fairness::{directed_links, max_min_allocation, AllocFlow, Direction};
use netsim::topo::{mesh, LinkId, Topology};
use netsim::NodeIdx;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Builds a random flow set over shortest paths in a mesh.
fn flows_from_seed(topo: &Topology, n_flows: usize, seed: u64) -> Vec<AllocFlow> {
    let n = topo.node_count();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n_flows)
        .filter_map(|_| {
            let src = NodeIdx((next() as usize % n) as u32);
            let dst = NodeIdx((next() as usize % n) as u32);
            if src == dst {
                return None;
            }
            let path = topo.shortest_path_by_delay(src, dst)?;
            let demand = match next() % 3 {
                0 => Some((next() % 80) as f64 / 10.0 + 0.1),
                _ => None,
            };
            Some(AllocFlow {
                links: directed_links(topo, &path).ok()?,
                demand,
            })
        })
        .collect()
}

fn usage_by_link(flows: &[AllocFlow], rates: &[f64]) -> BTreeMap<(LinkId, Direction), f64> {
    let mut usage = BTreeMap::new();
    for (f, r) in flows.iter().zip(rates) {
        for &(lid, dir) in &f.links {
            *usage.entry((lid, dir)).or_insert(0.0) += r;
        }
    }
    usage
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_link_exceeds_capacity(nodes in 4usize..24, n_flows in 1usize..40, seed in any::<u64>()) {
        let topo = mesh(nodes, 3, 10.0);
        let flows = flows_from_seed(&topo, n_flows, seed);
        let rates = max_min_allocation(&topo, &flows);
        for ((lid, _), used) in usage_by_link(&flows, &rates) {
            prop_assert!(
                used <= topo.link(lid).capacity_mbps + 1e-6,
                "link {lid:?} used {used}"
            );
        }
    }

    #[test]
    fn rates_respect_demands(nodes in 4usize..16, n_flows in 1usize..30, seed in any::<u64>()) {
        let topo = mesh(nodes, 3, 10.0);
        let flows = flows_from_seed(&topo, n_flows, seed);
        let rates = max_min_allocation(&topo, &flows);
        for (f, r) in flows.iter().zip(&rates) {
            prop_assert!(*r >= 0.0);
            if let Some(d) = f.demand {
                prop_assert!(*r <= d + 1e-9, "rate {r} exceeds demand {d}");
            }
        }
    }

    #[test]
    fn allocation_is_maximal(nodes in 4usize..16, n_flows in 1usize..20, seed in any::<u64>()) {
        // Pareto efficiency: every flow is blocked by either its demand
        // or a saturated link on its path — nothing can be raised
        // unilaterally.
        let topo = mesh(nodes, 3, 10.0);
        let flows = flows_from_seed(&topo, n_flows, seed);
        let rates = max_min_allocation(&topo, &flows);
        let usage = usage_by_link(&flows, &rates);
        for (f, r) in flows.iter().zip(&rates) {
            if f.demand.is_some_and(|d| (r - d).abs() < 1e-6) {
                continue; // demand-capped
            }
            let blocked = f.links.iter().any(|&(lid, dir)| {
                let used = usage.get(&(lid, dir)).copied().unwrap_or(0.0);
                used >= topo.link(lid).capacity_mbps - 1e-6
            });
            prop_assert!(blocked, "flow at {r} is neither demand- nor link-limited");
        }
    }

    #[test]
    fn maxmin_fairness_property(nodes in 4usize..14, n_flows in 2usize..16, seed in any::<u64>()) {
        // On every saturated link, a greedy (unlimited) flow's rate must
        // be at least the rate of every other flow on that link minus
        // epsilon — otherwise transferring bandwidth from a richer flow
        // would raise the poorer one (violating max-min).
        let topo = mesh(nodes, 3, 10.0);
        let flows = flows_from_seed(&topo, n_flows, seed);
        let rates = max_min_allocation(&topo, &flows);
        let usage = usage_by_link(&flows, &rates);
        for (i, f) in flows.iter().enumerate() {
            if f.demand.is_some() {
                continue;
            }
            // the flow's bottleneck links
            for &(lid, dir) in &f.links {
                let used = usage.get(&(lid, dir)).copied().unwrap_or(0.0);
                if used < topo.link(lid).capacity_mbps - 1e-6 {
                    continue;
                }
                // saturated: no co-located flow may be strictly richer
                // than this greedy flow unless that flow is also blocked
                // elsewhere at a lower level. The weaker (but universal)
                // check: this flow's rate equals the max rate among
                // greedy flows on its own bottleneck.
                let co_rates: Vec<f64> = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| {
                        g.demand.is_none() && g.links.contains(&(lid, dir))
                    })
                    .map(|(_, r)| *r)
                    .collect();
                let max_co = co_rates.iter().cloned().fold(0.0, f64::max);
                if (rates[i] - max_co).abs() < 1e-6 {
                    // this is the flow's true bottleneck; invariant holds
                    return Ok(());
                }
            }
        }
    }

    #[test]
    fn total_throughput_is_deterministic(nodes in 4usize..14, n_flows in 1usize..16, seed in any::<u64>()) {
        let topo = mesh(nodes, 3, 10.0);
        let flows = flows_from_seed(&topo, n_flows, seed);
        let a: f64 = max_min_allocation(&topo, &flows).iter().sum();
        let b: f64 = max_min_allocation(&topo, &flows).iter().sum();
        prop_assert_eq!(a, b);
    }
}
