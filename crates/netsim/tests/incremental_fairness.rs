//! Pins incremental ≡ full: the [`FairShareEngine`]'s component-local
//! re-water-fill must land on the same allocation as a from-scratch
//! [`max_min_allocation`] after every event, over random arrival /
//! departure / reroute / capacity / failure sequences. Max-min fair
//! allocations are unique, so the two can only differ by float
//! accumulation order — hence the 1e-6 tolerance.

use netsim::fairness::{directed_links, max_min_allocation, AllocFlow, FairShareEngine};
use netsim::topo::mesh;
use netsim::{FlowId, NodeIdx, Topology};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Deterministic xorshift so each proptest case derives its own event
/// sequence from one seed.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The oracle: full water-fill over the same flow set, dead paths
/// degraded exactly as the simulator does (empty links + zero demand).
fn reference_rates(
    topo: &Topology,
    paths: &BTreeMap<FlowId, (Vec<NodeIdx>, Option<f64>)>,
) -> BTreeMap<FlowId, f64> {
    let order: Vec<FlowId> = paths.keys().copied().collect();
    let alloc: Vec<AllocFlow> = order
        .iter()
        .map(|id| {
            let (path, demand) = &paths[id];
            match directed_links(topo, path) {
                Ok(links) => AllocFlow {
                    links,
                    demand: *demand,
                },
                Err(_) => AllocFlow {
                    links: Vec::new(),
                    demand: Some(0.0),
                },
            }
        })
        .collect();
    let rates = max_min_allocation(topo, &alloc);
    order.into_iter().zip(rates).collect()
}

/// After a link up/down flip, every flow re-derives its live link set —
/// the simulator does this only for flows crossing the flipped hop (via
/// its hop index), but `set_links` no-ops on unchanged link sets, so
/// sweeping everyone is behaviorally identical.
fn rederive_all(
    engine: &mut FairShareEngine,
    topo: &Topology,
    paths: &BTreeMap<FlowId, (Vec<NodeIdx>, Option<f64>)>,
) {
    for (id, (path, _)) in paths {
        engine.set_links(topo, *id, directed_links(topo, path).ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_matches_full_recompute(
        seed in 1u64..5_000,
        n in 8usize..14,
        stride in 2usize..4,
        ops in 25usize..45,
    ) {
        let mut topo = mesh(n, stride, 10.0);
        let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let mut engine = FairShareEngine::new();
        let mut paths: BTreeMap<FlowId, (Vec<NodeIdx>, Option<f64>)> = BTreeMap::new();
        let mut next_id = 0u64;
        let nodes = topo.node_count() as u64;
        let links = topo.link_count() as u64;

        for _ in 0..ops {
            match rng.below(10) {
                // arrival (weighted heaviest)
                0..=3 => {
                    let src = NodeIdx(rng.below(nodes) as u32);
                    let dst = NodeIdx(rng.below(nodes) as u32);
                    if src == dst {
                        continue;
                    }
                    let Some(path) = topo.shortest_path_by_delay(src, dst) else {
                        continue;
                    };
                    let demand = match rng.below(3) {
                        0 => Some(rng.below(60) as f64 / 10.0 + 0.1),
                        _ => None,
                    };
                    next_id += 1;
                    let id = FlowId(next_id);
                    engine.insert_flow(&topo, id, directed_links(&topo, &path).ok(), demand);
                    paths.insert(id, (path, demand));
                }
                // departure
                4..=5 => {
                    let Some(&id) = paths.keys().nth(rng.below(paths.len().max(1) as u64) as usize)
                    else {
                        continue;
                    };
                    engine.remove_flow(&topo, id);
                    paths.remove(&id);
                }
                // reroute onto a (possibly identical) shortest path
                6 => {
                    let Some(&id) = paths.keys().next() else { continue };
                    let (old, _) = &paths[&id];
                    let (src, dst) = (old[0], *old.last().unwrap());
                    let Some(path) = topo.shortest_path_by_delay(src, dst) else {
                        continue;
                    };
                    engine.set_links(&topo, id, directed_links(&topo, &path).ok());
                    paths.get_mut(&id).unwrap().0 = path;
                }
                // capacity change
                7 => {
                    let lid = netsim::LinkId(rng.below(links) as u32);
                    let cap = rng.below(40) as f64 + 1.0;
                    if topo.link(lid).capacity_mbps != cap {
                        topo.link_mut(lid).capacity_mbps = cap;
                        engine.capacity_changed(lid);
                    }
                }
                // demand ramp: up, down, or to greedy
                8 => {
                    let Some(&id) = paths.keys().nth(rng.below(paths.len().max(1) as u64) as usize)
                    else {
                        continue;
                    };
                    let demand = match rng.below(4) {
                        0 => None,
                        _ => Some(rng.below(60) as f64 / 10.0 + 0.1),
                    };
                    engine.set_demand(&topo, id, demand);
                    paths.get_mut(&id).unwrap().1 = demand;
                }
                // link down / up
                _ => {
                    let lid = netsim::LinkId(rng.below(links) as u32);
                    let up = !topo.link(lid).up;
                    topo.link_mut(lid).up = up;
                    rederive_all(&mut engine, &topo, &paths);
                }
            }
            engine.resolve(&topo);

            let want = reference_rates(&topo, &paths);
            let got: BTreeMap<FlowId, f64> = engine.rates().into_iter().collect();
            prop_assert_eq!(got.len(), want.len());
            for (id, w) in &want {
                let g = got[id];
                prop_assert!(
                    (g - w).abs() < 1e-6,
                    "flow {:?}: incremental {} vs full {} (seed {})",
                    id, g, w, seed
                );
            }
        }
        // the incremental path must actually be exercised, not just
        // fall back to full solves every time
        let stats = engine.stats();
        prop_assert!(
            stats.incremental_solves + stats.fast_path_events > 0 || paths.len() < 3,
            "no incremental work at all: {:?}",
            stats
        );
    }
}
