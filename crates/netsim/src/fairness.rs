//! Max-min fair bandwidth allocation (progressive filling with demands).
//!
//! When several TCP flows share bottlenecks, their steady-state goodput is
//! well approximated by the max-min fair allocation: every flow gets as
//! much as possible subject to no link exceeding capacity, and no flow can
//! gain without a poorer flow losing. The classic water-filling algorithm:
//! repeatedly find the most constrained link, freeze its flows at the fair
//! share, remove the used capacity, and continue. Demand-limited flows
//! freeze at their demand as soon as the rising water level reaches it.

use crate::topo::{LinkId, NodeIdx, Topology};
use std::collections::BTreeMap;

/// One flow's view for the allocator: its links and optional demand cap.
#[derive(Debug, Clone)]
pub struct AllocFlow {
    /// Links the flow traverses (direction-collapsed; see note below).
    pub links: Vec<(LinkId, Direction)>,
    /// Demand cap in Mbps; `None` = greedy.
    pub demand: Option<f64>,
}

/// Direction of traversal over an undirected link record (full-duplex
/// links have independent capacity per direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// From `link.a` to `link.b`.
    Forward,
    /// From `link.b` to `link.a`.
    Reverse,
}

/// Derives the directed link sequence of a node path.
pub fn directed_links(
    topo: &Topology,
    path: &[NodeIdx],
) -> Result<Vec<(LinkId, Direction)>, crate::NetsimError> {
    let mut out = Vec::with_capacity(path.len().saturating_sub(1));
    for w in path.windows(2) {
        let lid = topo.link_between(w[0], w[1])?;
        let link = topo.link(lid);
        let dir = if link.a == w[0] {
            Direction::Forward
        } else {
            Direction::Reverse
        };
        out.push((lid, dir));
    }
    Ok(out)
}

/// Computes the max-min fair allocation. Returns one rate per flow, in
/// input order. Flows crossing failed links get 0.
pub fn max_min_allocation(topo: &Topology, flows: &[AllocFlow]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    // Per directed-link remaining capacity and unfrozen flow lists.
    // Sorted maps: the bottleneck scan below iterates them, and that
    // iteration order must be reproducible across processes.
    let mut remaining: BTreeMap<(LinkId, Direction), f64> = BTreeMap::new();
    let mut members: BTreeMap<(LinkId, Direction), Vec<usize>> = BTreeMap::new();
    let mut frozen = vec![false; n];
    for (i, f) in flows.iter().enumerate() {
        let dead = f.links.iter().any(|(lid, _)| !topo.link(*lid).up);
        if dead || f.links.is_empty() {
            frozen[i] = true; // rate stays 0 (or demand handled below for empty)
            if f.links.is_empty() {
                rates[i] = f.demand.unwrap_or(0.0);
            }
            continue;
        }
        for &(lid, dir) in &f.links {
            remaining
                .entry((lid, dir))
                .or_insert_with(|| topo.link(lid).capacity_mbps);
            members.entry((lid, dir)).or_default().push(i);
        }
    }
    // Water level rises; at each step the binding constraint is either a
    // link's fair share or some flow's demand.
    for _round in 0..n + remaining.len() + 1 {
        if frozen.iter().all(|f| *f) {
            break;
        }
        // Fair share offered by each still-shared link. The map
        // iterates in sorted key order, and ties still break
        // explicitly to the smallest (link, direction) key — which
        // flows freeze this round (and thus every downstream rate)
        // must be reproducible across processes.
        let mut min_share = f64::INFINITY;
        let mut min_key: Option<(LinkId, Direction)> = None;
        for (key, cap) in &remaining {
            let count = members[key].iter().filter(|&&i| !frozen[i]).count();
            if count == 0 {
                continue;
            }
            let share = *cap / count as f64;
            let better = match min_key {
                None => true,
                Some(k) => share < min_share || (share == min_share && *key < k),
            };
            if better {
                min_share = share;
                min_key = Some(*key);
            }
        }
        let Some(bottleneck) = min_key else { break };
        // Any unfrozen demand below the water level freezes at demand
        // first (its leftover capacity raises everyone else).
        let demand_limited: Vec<usize> = (0..n)
            .filter(|&i| !frozen[i] && flows[i].demand.is_some_and(|d| d <= min_share + 1e-12))
            .collect();
        let to_freeze: Vec<(usize, f64)> = if demand_limited.is_empty() {
            members[&bottleneck]
                .iter()
                .filter(|&&i| !frozen[i])
                .map(|&i| (i, min_share))
                .collect()
        } else {
            demand_limited
                .into_iter()
                .map(|i| (i, flows[i].demand.expect("checked demand-limited")))
                .collect()
        };
        for (i, rate) in to_freeze {
            frozen[i] = true;
            rates[i] = rate;
            for &(lid, dir) in &flows[i].links {
                if let Some(cap) = remaining.get_mut(&(lid, dir)) {
                    *cap = (*cap - rate).max(0.0);
                }
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{global_p4_lab, NodeKind};

    fn flow_on(topo: &Topology, names: &[&str], demand: Option<f64>) -> AllocFlow {
        let path = topo.path_by_names(names).unwrap();
        AllocFlow {
            links: directed_links(topo, &path).unwrap(),
            demand,
        }
    }

    #[test]
    fn single_flow_takes_bottleneck() {
        let t = global_p4_lab();
        let f = flow_on(&t, &["host1", "MIA", "SAO", "AMS", "host2"], None);
        let rates = max_min_allocation(&t, &[f]);
        assert!((rates[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn three_greedy_flows_share_tunnel1_equally() {
        // Experiment 2, phase 1: all flows on MIA-SAO-AMS (20 Mbps).
        let t = global_p4_lab();
        let flows: Vec<AllocFlow> = (0..3)
            .map(|_| flow_on(&t, &["host1", "MIA", "SAO", "AMS", "host2"], None))
            .collect();
        let rates = max_min_allocation(&t, &flows);
        for r in &rates {
            assert!((r - 20.0 / 3.0).abs() < 1e-9, "rates {rates:?}");
        }
    }

    #[test]
    fn split_flows_use_their_own_bottlenecks() {
        // Experiment 2, phase 2: tunnels 1 (20), 2 (10), 3 (5).
        let t = global_p4_lab();
        let flows = vec![
            flow_on(&t, &["host1", "MIA", "SAO", "AMS", "host2"], None),
            flow_on(&t, &["host1", "MIA", "CHI", "AMS", "host2"], None),
            flow_on(&t, &["host1", "MIA", "CAL", "CHI", "AMS", "host2"], None),
        ];
        let rates = max_min_allocation(&t, &flows);
        assert!((rates[0] - 20.0).abs() < 1e-9);
        assert!((rates[1] - 10.0).abs() < 1e-9);
        assert!((rates[2] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn demand_limited_flow_leaves_capacity_to_others() {
        let t = global_p4_lab();
        let flows = vec![
            flow_on(&t, &["MIA", "SAO", "AMS"], Some(4.0)),
            flow_on(&t, &["MIA", "SAO", "AMS"], None),
        ];
        let rates = max_min_allocation(&t, &flows);
        assert!((rates[0] - 4.0).abs() < 1e-9);
        assert!((rates[1] - 16.0).abs() < 1e-9);
    }

    #[test]
    fn no_link_oversubscribed() {
        let t = global_p4_lab();
        let flows = vec![
            flow_on(&t, &["host1", "MIA", "SAO", "AMS", "host2"], None),
            flow_on(&t, &["host1", "MIA", "SAO", "AMS", "host2"], Some(3.0)),
            flow_on(&t, &["host1", "MIA", "CHI", "AMS", "host2"], None),
            flow_on(&t, &["host1", "MIA", "CAL", "CHI", "AMS", "host2"], None),
        ];
        let rates = max_min_allocation(&t, &flows);
        // Recompute per-directed-link usage and compare with capacity.
        let mut usage: BTreeMap<(LinkId, Direction), f64> = BTreeMap::new();
        for (f, r) in flows.iter().zip(&rates) {
            for &(lid, dir) in &f.links {
                *usage.entry((lid, dir)).or_insert(0.0) += r;
            }
        }
        for ((lid, _), used) in usage {
            assert!(
                used <= t.link(lid).capacity_mbps + 1e-9,
                "link {lid:?} over capacity: {used}"
            );
        }
    }

    #[test]
    fn failed_link_zeroes_flows() {
        let mut t = global_p4_lab();
        let mia = t.node("MIA").unwrap();
        let sao = t.node("SAO").unwrap();
        let f = flow_on(&t, &["MIA", "SAO", "AMS"], None);
        let lid = t.link_between(mia, sao).unwrap();
        t.link_mut(lid).up = false;
        let rates = max_min_allocation(&t, &[f]);
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        // Full-duplex: a->b and b->a flows each get full capacity.
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::Host);
        t.add_link(a, b, 10.0, 1.0);
        let fwd = AllocFlow {
            links: directed_links(&t, &[a, b]).unwrap(),
            demand: None,
        };
        let rev = AllocFlow {
            links: directed_links(&t, &[b, a]).unwrap(),
            demand: None,
        };
        let rates = max_min_allocation(&t, &[fwd, rev]);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_flow_set() {
        let t = global_p4_lab();
        assert!(max_min_allocation(&t, &[]).is_empty());
    }

    #[test]
    fn classic_three_flow_two_link_example() {
        // Chain a-b-c, both links 10: long flow a-c competes on both,
        // short flows a-b and b-c. Max-min: all get 5.
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Core);
        let b = t.add_node("b", NodeKind::Core);
        let c = t.add_node("c", NodeKind::Core);
        t.add_link(a, b, 10.0, 1.0);
        t.add_link(b, c, 10.0, 1.0);
        let flows = vec![
            AllocFlow {
                links: directed_links(&t, &[a, b, c]).unwrap(),
                demand: None,
            },
            AllocFlow {
                links: directed_links(&t, &[a, b]).unwrap(),
                demand: None,
            },
            AllocFlow {
                links: directed_links(&t, &[b, c]).unwrap(),
                demand: None,
            },
        ];
        let rates = max_min_allocation(&t, &flows);
        for r in &rates {
            assert!((r - 5.0).abs() < 1e-9, "{rates:?}");
        }
    }

    #[test]
    fn heterogeneous_chain_gives_maxmin_not_equal_split() {
        // a-b at 10, b-c at 4: the long flow a-c freezes at the b-c
        // bottleneck (4), after which the short a-b flow takes the
        // leftover 6 — the defining max-min property.
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Core);
        let b = t.add_node("b", NodeKind::Core);
        let c = t.add_node("c", NodeKind::Core);
        t.add_link(a, b, 10.0, 1.0);
        t.add_link(b, c, 4.0, 1.0);
        let flows = vec![
            AllocFlow {
                links: directed_links(&t, &[a, b, c]).unwrap(),
                demand: None,
            },
            AllocFlow {
                links: directed_links(&t, &[a, b]).unwrap(),
                demand: None,
            },
        ];
        let rates = max_min_allocation(&t, &flows);
        assert!((rates[0] - 4.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 6.0).abs() < 1e-9, "{rates:?}");
    }
}
