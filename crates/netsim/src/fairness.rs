//! Max-min fair bandwidth allocation (progressive filling with demands).
//!
//! When several TCP flows share bottlenecks, their steady-state goodput is
//! well approximated by the max-min fair allocation: every flow gets as
//! much as possible subject to no link exceeding capacity, and no flow can
//! gain without a poorer flow losing. The classic water-filling algorithm:
//! repeatedly find the most constrained link, freeze its flows at the fair
//! share, remove the used capacity, and continue. Demand-limited flows
//! freeze at their demand as soon as the rising water level reaches it.

use crate::flow::FlowId;
use crate::topo::{LinkId, NodeIdx, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// One flow's view for the allocator: its links and optional demand cap.
#[derive(Debug, Clone)]
pub struct AllocFlow {
    /// Links the flow traverses (direction-collapsed; see note below).
    pub links: Vec<(LinkId, Direction)>,
    /// Demand cap in Mbps; `None` = greedy.
    pub demand: Option<f64>,
}

/// Direction of traversal over an undirected link record (full-duplex
/// links have independent capacity per direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// From `link.a` to `link.b`.
    Forward,
    /// From `link.b` to `link.a`.
    Reverse,
}

/// Derives the directed link sequence of a node path.
pub fn directed_links(
    topo: &Topology,
    path: &[NodeIdx],
) -> Result<Vec<(LinkId, Direction)>, crate::NetsimError> {
    let mut out = Vec::with_capacity(path.len().saturating_sub(1));
    for w in path.windows(2) {
        let lid = topo.link_between(w[0], w[1])?;
        let link = topo.link(lid);
        let dir = if link.a == w[0] {
            Direction::Forward
        } else {
            Direction::Reverse
        };
        out.push((lid, dir));
    }
    Ok(out)
}

/// Computes the max-min fair allocation. Returns one rate per flow, in
/// input order. Flows crossing failed links get 0.
pub fn max_min_allocation(topo: &Topology, flows: &[AllocFlow]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    // Per directed-link remaining capacity and unfrozen flow lists.
    // Sorted maps: the bottleneck scan below iterates them, and that
    // iteration order must be reproducible across processes.
    let mut remaining: BTreeMap<(LinkId, Direction), f64> = BTreeMap::new();
    let mut members: BTreeMap<(LinkId, Direction), Vec<usize>> = BTreeMap::new();
    let mut frozen = vec![false; n];
    for (i, f) in flows.iter().enumerate() {
        let dead = f.links.iter().any(|(lid, _)| !topo.link(*lid).up);
        if dead || f.links.is_empty() {
            frozen[i] = true; // rate stays 0 (or demand handled below for empty)
            if f.links.is_empty() {
                rates[i] = f.demand.unwrap_or(0.0);
            }
            continue;
        }
        for &(lid, dir) in &f.links {
            remaining
                .entry((lid, dir))
                .or_insert_with(|| topo.link(lid).capacity_mbps);
            members.entry((lid, dir)).or_default().push(i);
        }
    }
    // Water level rises; at each step the binding constraint is either a
    // link's fair share or some flow's demand.
    for _round in 0..n + remaining.len() + 1 {
        if frozen.iter().all(|f| *f) {
            break;
        }
        // Fair share offered by each still-shared link. The map
        // iterates in sorted key order, and ties still break
        // explicitly to the smallest (link, direction) key — which
        // flows freeze this round (and thus every downstream rate)
        // must be reproducible across processes.
        let mut min_share = f64::INFINITY;
        let mut min_key: Option<(LinkId, Direction)> = None;
        for (key, cap) in &remaining {
            let count = members[key].iter().filter(|&&i| !frozen[i]).count();
            if count == 0 {
                continue;
            }
            let share = *cap / count as f64;
            let better = match min_key {
                None => true,
                Some(k) => share < min_share || (share == min_share && *key < k),
            };
            if better {
                min_share = share;
                min_key = Some(*key);
            }
        }
        let Some(bottleneck) = min_key else { break };
        // Any unfrozen demand below the water level freezes at demand
        // first (its leftover capacity raises everyone else).
        let demand_limited: Vec<usize> = (0..n)
            .filter(|&i| !frozen[i] && flows[i].demand.is_some_and(|d| d <= min_share + 1e-12))
            .collect();
        let to_freeze: Vec<(usize, f64)> = if demand_limited.is_empty() {
            members[&bottleneck]
                .iter()
                .filter(|&&i| !frozen[i])
                .map(|&i| (i, min_share))
                .collect()
        } else {
            demand_limited
                .into_iter()
                .map(|i| (i, flows[i].demand.expect("checked demand-limited")))
                .collect()
        };
        for (i, rate) in to_freeze {
            frozen[i] = true;
            rates[i] = rate;
            for &(lid, dir) in &flows[i].links {
                if let Some(cap) = remaining.get_mut(&(lid, dir)) {
                    *cap = (*cap - rate).max(0.0);
                }
            }
        }
    }
    rates
}

/// Saturation / feasibility tolerance in Mbps.
const EPS: f64 = 1e-9;
/// Expansion-fixpoint iterations before falling back to a full solve.
const MAX_EXPANSIONS: usize = 8;

/// Audit counters for the incremental allocator: how often the
/// restricted solve sufficed versus escalating to a full water-fill.
///
/// This is a point-in-time *snapshot* of [`WaterfillMetrics`] — the
/// live storage is `obsv` counters, shared with any attached metrics
/// registry; this plain struct remains the stable accessor type.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WaterfillStats {
    /// Restricted (component-local) solves that converged.
    pub incremental_solves: u64,
    /// Solves that escalated to the full flow set (audited fallback).
    pub full_solves: u64,
    /// Component-expansion iterations across all solves.
    pub expansions: u64,
    /// Events absorbed with no water-fill at all (e.g. a demand-limited
    /// arrival onto links with spare capacity).
    pub fast_path_events: u64,
}

/// The live audit instruments behind [`WaterfillStats`]: `obsv`
/// counters, so a scenario's metrics registry can watch the allocator
/// without the engine knowing about snapshots or epochs.
#[derive(Debug, Clone, Default)]
pub struct WaterfillMetrics {
    /// Restricted solves that converged.
    pub incremental_solves: obsv::Counter,
    /// Escalations to the full flow set.
    pub full_solves: obsv::Counter,
    /// Component-expansion iterations.
    pub expansions: obsv::Counter,
    /// Events absorbed with no water-fill.
    pub fast_path_events: obsv::Counter,
}

impl WaterfillMetrics {
    /// Current values as a plain struct.
    pub fn snapshot(&self) -> WaterfillStats {
        WaterfillStats {
            incremental_solves: self.incremental_solves.get(),
            full_solves: self.full_solves.get(),
            expansions: self.expansions.get(),
            fast_path_events: self.fast_path_events.get(),
        }
    }

    /// Exposes the live counters in `registry` under
    /// `{prefix}.{field}` (e.g. `netsim.waterfill.expansions`).
    pub fn register(&self, registry: &obsv::Registry, prefix: &str) {
        registry.adopt_counter(
            &format!("{prefix}.incremental_solves"),
            &self.incremental_solves,
        );
        registry.adopt_counter(&format!("{prefix}.full_solves"), &self.full_solves);
        registry.adopt_counter(&format!("{prefix}.expansions"), &self.expansions);
        registry.adopt_counter(
            &format!("{prefix}.fast_path_events"),
            &self.fast_path_events,
        );
    }
}

#[derive(Debug, Clone)]
struct EngFlow {
    links: Vec<(LinkId, Direction)>,
    demand: Option<f64>,
    /// Current raw (pre-efficiency) max-min rate.
    rate: f64,
    /// True when the flow's path crosses a failed link: it holds no
    /// capacity and carries nothing until the link is restored.
    dead: bool,
}

impl EngFlow {
    fn at_demand(&self) -> bool {
        self.demand.is_some_and(|d| self.rate >= d - EPS)
    }
}

/// Incremental max-min fair allocator.
///
/// Maintains per-flow rates and per-directed-link membership sets across
/// arrival/departure/reroute/capacity events, re-water-filling only the
/// *affected component*: the event's flows plus, iteratively, any
/// outside flow whose own allocation the restricted solve would
/// invalidate (squeezed above the link's new water level, eligible to
/// grow into freed capacity, or bottlenecked at a link whose level
/// rose). The expansion fixpoint is exact — when no outside flow
/// triggers, the Bertsekas–Gallager max-min certificate (every
/// non-demand-capped flow has a saturated link where its rate is
/// maximal) still holds for all untouched flows, so the merged
/// allocation equals the full water-fill up to float rounding. A
/// proptest in `netsim/tests` pins incremental ≡ full; full solves
/// remain available as an audited fallback ([`WaterfillStats`]).
///
/// Everything iterates `BTreeMap`/`BTreeSet` so float accumulation
/// order — and therefore every rate — is reproducible bit-for-bit.
#[derive(Debug, Default)]
pub struct FairShareEngine {
    flows: BTreeMap<FlowId, EngFlow>,
    members: BTreeMap<(LinkId, Direction), BTreeSet<FlowId>>,
    live: usize,
    seeds: BTreeSet<FlowId>,
    changed: BTreeMap<FlowId, f64>,
    stats: WaterfillMetrics,
}

impl FairShareEngine {
    /// A fresh engine with no flows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a flow. `links: None` means the path crosses a failed
    /// link right now — the flow is tracked but dead (rate 0) until a
    /// restore revives it. Re-inserting an existing id replaces it.
    pub fn insert_flow(
        &mut self,
        topo: &Topology,
        id: FlowId,
        links: Option<Vec<(LinkId, Direction)>>,
        demand: Option<f64>,
    ) {
        if self.flows.contains_key(&id) {
            self.remove_flow(topo, id);
        }
        let Some(links) = links else {
            self.flows.insert(
                id,
                EngFlow {
                    links: Vec::new(),
                    demand,
                    rate: 0.0,
                    dead: true,
                },
            );
            self.changed.insert(id, 0.0);
            return;
        };
        // Fast path, proven exact by the max-min certificate: a
        // demand-limited arrival whose every link keeps spare capacity
        // even after granting the demand saturates nothing, so no other
        // flow's certificate link changes.
        let fast =
            demand.is_some_and(|d| links.iter().all(|key| self.residual(topo, *key) > d + EPS));
        let rate = if fast {
            demand.expect("fast implies demand")
        } else {
            0.0
        };
        for key in &links {
            self.members.entry(*key).or_default().insert(id);
        }
        self.flows.insert(
            id,
            EngFlow {
                links,
                demand,
                rate,
                dead: false,
            },
        );
        self.live += 1;
        if fast {
            self.stats.fast_path_events.inc();
            self.changed.insert(id, rate);
        } else {
            self.seeds.insert(id);
        }
    }

    /// Unregisters a flow, seeding neighbors that can grow into the
    /// capacity it releases.
    pub fn remove_flow(&mut self, topo: &Topology, id: FlowId) {
        let Some(f) = self.flows.get(&id).cloned() else {
            return;
        };
        if !f.dead {
            self.release_seeds(topo, &f.links, id);
            self.drop_membership(&f.links, id);
            self.live -= 1;
        }
        self.flows.remove(&id);
        self.seeds.remove(&id);
        self.changed.remove(&id);
    }

    /// Repoints a flow at a new link set (`None` = now dead). Used for
    /// reroutes and for link up/down transitions, where the caller
    /// re-derives the path's live links.
    pub fn set_links(
        &mut self,
        topo: &Topology,
        id: FlowId,
        links: Option<Vec<(LinkId, Direction)>>,
    ) {
        let Some(cur) = self.flows.get(&id) else {
            return;
        };
        let (was_dead, old_links) = (cur.dead, cur.links.clone());
        match links {
            None => {
                if was_dead {
                    return;
                }
                self.release_seeds(topo, &old_links, id);
                self.drop_membership(&old_links, id);
                self.live -= 1;
                let f = self.flows.get_mut(&id).expect("checked above");
                f.dead = true;
                f.links = Vec::new();
                f.rate = 0.0;
                self.seeds.remove(&id);
                self.changed.insert(id, 0.0);
            }
            Some(new_links) => {
                if !was_dead && new_links == old_links {
                    return;
                }
                if was_dead {
                    self.live += 1;
                } else {
                    self.release_seeds(topo, &old_links, id);
                    self.drop_membership(&old_links, id);
                }
                for key in &new_links {
                    self.members.entry(*key).or_default().insert(id);
                }
                let f = self.flows.get_mut(&id).expect("checked above");
                f.dead = false;
                f.links = new_links;
                self.seeds.insert(id);
            }
        }
    }

    /// Changes a flow's elastic demand in place (`None` = greedy).
    ///
    /// The flow re-solves from its own saturation component; when the
    /// new demand shrinks the flow below its current rate, the members
    /// bottlenecked at its saturated links are seeded first — they are
    /// the flows entitled to grow into the released capacity, exactly
    /// as on departure. A demand change on a dead flow just records
    /// the new demand; the flow re-enters the fill when it revives.
    pub fn set_demand(&mut self, topo: &Topology, id: FlowId, demand: Option<f64>) {
        let Some(f) = self.flows.get(&id) else {
            return;
        };
        if f.demand == demand {
            return;
        }
        let (dead, links, rate) = (f.dead, f.links.clone(), f.rate);
        let shrinking = demand.is_some_and(|d| d < rate - EPS);
        if !dead && shrinking {
            self.release_seeds(topo, &links, id);
        }
        let f = self.flows.get_mut(&id).expect("checked above");
        f.demand = demand;
        if !dead {
            self.seeds.insert(id);
        }
    }

    /// Marks a link's capacity as changed: all its member flows (both
    /// directions) re-solve. Call after updating the topology.
    pub fn capacity_changed(&mut self, lid: LinkId) {
        for dir in [Direction::Forward, Direction::Reverse] {
            if let Some(mem) = self.members.get(&(lid, dir)) {
                self.seeds.extend(mem.iter().copied());
            }
        }
    }

    /// Re-solves everything the batched events since the last resolve
    /// touched, returning `(flow, new raw rate)` for every flow whose
    /// rate changed — sorted by flow id, so downstream share updates
    /// replay deterministically.
    pub fn resolve(&mut self, topo: &Topology) -> Vec<(FlowId, f64)> {
        let seeds = std::mem::take(&mut self.seeds);
        let comp: BTreeSet<FlowId> = seeds
            .into_iter()
            .filter(|id| self.flows.get(id).is_some_and(|f| !f.dead))
            .collect();
        if !comp.is_empty() {
            self.solve(topo, comp);
        }
        std::mem::take(&mut self.changed).into_iter().collect()
    }

    /// Current raw rate of a flow (0 for dead flows).
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// All `(flow, raw rate)` pairs, sorted by flow id.
    pub fn rates(&self) -> Vec<(FlowId, f64)> {
        self.flows.iter().map(|(id, f)| (*id, f.rate)).collect()
    }

    /// Number of live (non-dead) flows.
    pub fn live_flows(&self) -> usize {
        self.live
    }

    /// Audit counters (a snapshot; the live instruments are
    /// [`FairShareEngine::metrics`]).
    pub fn stats(&self) -> WaterfillStats {
        self.stats.snapshot()
    }

    /// The live `obsv` instruments behind [`FairShareEngine::stats`].
    pub fn metrics(&self) -> &WaterfillMetrics {
        &self.stats
    }

    fn drop_membership(&mut self, links: &[(LinkId, Direction)], id: FlowId) {
        for key in links {
            if let Some(mem) = self.members.get_mut(key) {
                mem.remove(&id);
                if mem.is_empty() {
                    self.members.remove(key);
                }
            }
        }
    }

    /// Remaining capacity of a directed link given current rates.
    fn residual(&self, topo: &Topology, key: (LinkId, Direction)) -> f64 {
        let cap = topo.link(key.0).capacity_mbps;
        let used: f64 = self
            .members
            .get(&key)
            .map(|mem| mem.iter().map(|m| self.flows[m].rate).sum())
            .unwrap_or(0.0);
        cap - used
    }

    /// When `leaving` is about to stop holding capacity on `links`,
    /// seed the members of each *currently saturated* such link that
    /// were bottlenecked there (rate at the link's water level, not
    /// demand-capped) — they are the flows entitled to grow. A flow at
    /// rate ≤ EPS releases nothing and an unsaturated link constrains
    /// nobody, so both skip straight through — that is the departure
    /// fast path.
    fn release_seeds(&mut self, topo: &Topology, links: &[(LinkId, Direction)], leaving: FlowId) {
        if self.flows.get(&leaving).is_none_or(|f| f.rate <= EPS) {
            return;
        }
        for key in links {
            let Some(mem) = self.members.get(key) else {
                continue;
            };
            let cap = topo.link(key.0).capacity_mbps;
            let mut used = 0.0;
            let mut lambda = f64::NEG_INFINITY;
            for m in mem {
                let r = self.flows[m].rate;
                used += r;
                lambda = lambda.max(r);
            }
            if cap - used > EPS {
                continue;
            }
            for m in mem {
                if *m == leaving {
                    continue;
                }
                let mf = &self.flows[m];
                if !mf.at_demand() && mf.rate >= lambda - EPS {
                    self.seeds.insert(*m);
                }
            }
        }
    }

    fn solve(&mut self, topo: &Topology, mut comp: BTreeSet<FlowId>) {
        let mut iterations = 0usize;
        loop {
            let full = iterations >= MAX_EXPANSIONS || comp.len() * 2 > self.live;
            if full {
                comp = self
                    .flows
                    .iter()
                    .filter(|(_, f)| !f.dead)
                    .map(|(id, _)| *id)
                    .collect();
            }
            let order: Vec<FlowId> = comp.iter().copied().collect();
            // Pre-solve state of every touched link: effective capacity
            // for the restricted solve (full capacity minus what
            // outside flows hold) and the pre-solve water level of
            // saturated links (for the growth/freed expansion tests).
            let mut touched: BTreeSet<(LinkId, Direction)> = BTreeSet::new();
            for id in &order {
                touched.extend(self.flows[id].links.iter().copied());
            }
            let mut cap_eff: BTreeMap<(LinkId, Direction), f64> = BTreeMap::new();
            let mut pre_lambda: BTreeMap<(LinkId, Direction), f64> = BTreeMap::new();
            for key in &touched {
                let cap = topo.link(key.0).capacity_mbps;
                let mut used_all = 0.0;
                let mut used_out = 0.0;
                let mut lambda = f64::NEG_INFINITY;
                for m in &self.members[key] {
                    let r = self.flows[m].rate;
                    used_all += r;
                    if !comp.contains(m) {
                        used_out += r;
                    }
                    lambda = lambda.max(r);
                }
                if cap - used_all <= EPS {
                    pre_lambda.insert(*key, lambda);
                }
                cap_eff.insert(*key, (cap - used_out).max(0.0));
            }
            let (new_rates, picked_lambda) = self.waterfill_component(&order, &cap_eff);
            if full {
                self.stats.full_solves.inc();
                self.commit(&new_rates);
                return;
            }
            // Expansion scan: does any outside flow's allocation become
            // invalid under the restricted solution?
            let mut joins: BTreeSet<FlowId> = BTreeSet::new();
            for key in &touched {
                let cap = topo.link(key.0).capacity_mbps;
                let mut new_used = 0.0;
                let mut has_outside = false;
                for m in &self.members[key] {
                    new_used += new_rates.get(m).copied().unwrap_or_else(|| {
                        has_outside = true;
                        self.flows[m].rate
                    });
                }
                if !has_outside {
                    continue;
                }
                let resid = cap - new_used;
                let lam = picked_lambda.get(key).copied();
                let pre = pre_lambda.get(key).copied();
                for m in &self.members[key] {
                    if comp.contains(m) {
                        continue;
                    }
                    let mf = &self.flows[m];
                    let grow_candidate =
                        !mf.at_demand() && pre.is_some_and(|pl| mf.rate >= pl - EPS);
                    let squeezed = lam.is_some_and(|l| mf.rate > l + EPS);
                    let lifted = grow_candidate && lam.is_some_and(|l| l > mf.rate + EPS);
                    let freed = grow_candidate && resid > EPS;
                    if squeezed || lifted || freed {
                        joins.insert(*m);
                    }
                }
            }
            if joins.is_empty() {
                self.stats.incremental_solves.inc();
                self.commit(&new_rates);
                return;
            }
            self.stats.expansions.inc();
            comp.extend(joins);
            iterations += 1;
        }
    }

    fn commit(&mut self, new_rates: &BTreeMap<FlowId, f64>) {
        for (id, r) in new_rates {
            let f = self.flows.get_mut(id).expect("solved flows exist");
            if f.rate != *r {
                f.rate = *r;
                self.changed.insert(*id, *r);
            }
        }
    }

    /// The legacy progressive water-fill, restricted to a component:
    /// same round structure as [`max_min_allocation`] (global
    /// demand-limited freezing first, otherwise the bottleneck link's
    /// members freeze at the minimum share, ties to the smallest link
    /// key), over effective capacities. Returns the new rates and the
    /// water level at which each picked bottleneck froze.
    #[allow(clippy::type_complexity)]
    fn waterfill_component(
        &self,
        order: &[FlowId],
        cap_eff: &BTreeMap<(LinkId, Direction), f64>,
    ) -> (BTreeMap<FlowId, f64>, BTreeMap<(LinkId, Direction), f64>) {
        let n = order.len();
        let mut rates = vec![0.0f64; n];
        let mut frozen = vec![false; n];
        let mut remaining: BTreeMap<(LinkId, Direction), f64> = BTreeMap::new();
        let mut members: BTreeMap<(LinkId, Direction), Vec<usize>> = BTreeMap::new();
        for (i, id) in order.iter().enumerate() {
            let f = &self.flows[id];
            if f.links.is_empty() {
                frozen[i] = true;
                rates[i] = f.demand.unwrap_or(0.0);
                continue;
            }
            for key in &f.links {
                remaining.entry(*key).or_insert(cap_eff[key]);
                members.entry(*key).or_default().push(i);
            }
        }
        let mut picked_lambda: BTreeMap<(LinkId, Direction), f64> = BTreeMap::new();
        for _round in 0..n + remaining.len() + 1 {
            if frozen.iter().all(|f| *f) {
                break;
            }
            let mut min_share = f64::INFINITY;
            let mut min_key: Option<(LinkId, Direction)> = None;
            for (key, cap) in &remaining {
                let count = members[key].iter().filter(|&&i| !frozen[i]).count();
                if count == 0 {
                    continue;
                }
                let share = *cap / count as f64;
                let better = match min_key {
                    None => true,
                    Some(k) => share < min_share || (share == min_share && *key < k),
                };
                if better {
                    min_share = share;
                    min_key = Some(*key);
                }
            }
            let Some(bottleneck) = min_key else { break };
            let demand_limited: Vec<usize> = (0..n)
                .filter(|&i| {
                    !frozen[i]
                        && self.flows[&order[i]]
                            .demand
                            .is_some_and(|d| d <= min_share + 1e-12)
                })
                .collect();
            let to_freeze: Vec<(usize, f64)> = if demand_limited.is_empty() {
                picked_lambda.insert(bottleneck, min_share);
                members[&bottleneck]
                    .iter()
                    .filter(|&&i| !frozen[i])
                    .map(|&i| (i, min_share))
                    .collect()
            } else {
                demand_limited
                    .into_iter()
                    .map(|i| {
                        (
                            i,
                            self.flows[&order[i]]
                                .demand
                                .expect("checked demand-limited"),
                        )
                    })
                    .collect()
            };
            for (i, rate) in to_freeze {
                frozen[i] = true;
                rates[i] = rate;
                for key in &self.flows[&order[i]].links {
                    if let Some(cap) = remaining.get_mut(key) {
                        *cap = (*cap - rate).max(0.0);
                    }
                }
            }
        }
        (order.iter().copied().zip(rates).collect(), picked_lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{global_p4_lab, NodeKind};

    fn flow_on(topo: &Topology, names: &[&str], demand: Option<f64>) -> AllocFlow {
        let path = topo.path_by_names(names).unwrap();
        AllocFlow {
            links: directed_links(topo, &path).unwrap(),
            demand,
        }
    }

    #[test]
    fn single_flow_takes_bottleneck() {
        let t = global_p4_lab();
        let f = flow_on(&t, &["host1", "MIA", "SAO", "AMS", "host2"], None);
        let rates = max_min_allocation(&t, &[f]);
        assert!((rates[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn three_greedy_flows_share_tunnel1_equally() {
        // Experiment 2, phase 1: all flows on MIA-SAO-AMS (20 Mbps).
        let t = global_p4_lab();
        let flows: Vec<AllocFlow> = (0..3)
            .map(|_| flow_on(&t, &["host1", "MIA", "SAO", "AMS", "host2"], None))
            .collect();
        let rates = max_min_allocation(&t, &flows);
        for r in &rates {
            assert!((r - 20.0 / 3.0).abs() < 1e-9, "rates {rates:?}");
        }
    }

    #[test]
    fn split_flows_use_their_own_bottlenecks() {
        // Experiment 2, phase 2: tunnels 1 (20), 2 (10), 3 (5).
        let t = global_p4_lab();
        let flows = vec![
            flow_on(&t, &["host1", "MIA", "SAO", "AMS", "host2"], None),
            flow_on(&t, &["host1", "MIA", "CHI", "AMS", "host2"], None),
            flow_on(&t, &["host1", "MIA", "CAL", "CHI", "AMS", "host2"], None),
        ];
        let rates = max_min_allocation(&t, &flows);
        assert!((rates[0] - 20.0).abs() < 1e-9);
        assert!((rates[1] - 10.0).abs() < 1e-9);
        assert!((rates[2] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn demand_limited_flow_leaves_capacity_to_others() {
        let t = global_p4_lab();
        let flows = vec![
            flow_on(&t, &["MIA", "SAO", "AMS"], Some(4.0)),
            flow_on(&t, &["MIA", "SAO", "AMS"], None),
        ];
        let rates = max_min_allocation(&t, &flows);
        assert!((rates[0] - 4.0).abs() < 1e-9);
        assert!((rates[1] - 16.0).abs() < 1e-9);
    }

    #[test]
    fn no_link_oversubscribed() {
        let t = global_p4_lab();
        let flows = vec![
            flow_on(&t, &["host1", "MIA", "SAO", "AMS", "host2"], None),
            flow_on(&t, &["host1", "MIA", "SAO", "AMS", "host2"], Some(3.0)),
            flow_on(&t, &["host1", "MIA", "CHI", "AMS", "host2"], None),
            flow_on(&t, &["host1", "MIA", "CAL", "CHI", "AMS", "host2"], None),
        ];
        let rates = max_min_allocation(&t, &flows);
        // Recompute per-directed-link usage and compare with capacity.
        let mut usage: BTreeMap<(LinkId, Direction), f64> = BTreeMap::new();
        for (f, r) in flows.iter().zip(&rates) {
            for &(lid, dir) in &f.links {
                *usage.entry((lid, dir)).or_insert(0.0) += r;
            }
        }
        for ((lid, _), used) in usage {
            assert!(
                used <= t.link(lid).capacity_mbps + 1e-9,
                "link {lid:?} over capacity: {used}"
            );
        }
    }

    #[test]
    fn failed_link_zeroes_flows() {
        let mut t = global_p4_lab();
        let mia = t.node("MIA").unwrap();
        let sao = t.node("SAO").unwrap();
        let f = flow_on(&t, &["MIA", "SAO", "AMS"], None);
        let lid = t.link_between(mia, sao).unwrap();
        t.link_mut(lid).up = false;
        let rates = max_min_allocation(&t, &[f]);
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        // Full-duplex: a->b and b->a flows each get full capacity.
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::Host);
        t.add_link(a, b, 10.0, 1.0);
        let fwd = AllocFlow {
            links: directed_links(&t, &[a, b]).unwrap(),
            demand: None,
        };
        let rev = AllocFlow {
            links: directed_links(&t, &[b, a]).unwrap(),
            demand: None,
        };
        let rates = max_min_allocation(&t, &[fwd, rev]);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_flow_set() {
        let t = global_p4_lab();
        assert!(max_min_allocation(&t, &[]).is_empty());
    }

    #[test]
    fn classic_three_flow_two_link_example() {
        // Chain a-b-c, both links 10: long flow a-c competes on both,
        // short flows a-b and b-c. Max-min: all get 5.
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Core);
        let b = t.add_node("b", NodeKind::Core);
        let c = t.add_node("c", NodeKind::Core);
        t.add_link(a, b, 10.0, 1.0);
        t.add_link(b, c, 10.0, 1.0);
        let flows = vec![
            AllocFlow {
                links: directed_links(&t, &[a, b, c]).unwrap(),
                demand: None,
            },
            AllocFlow {
                links: directed_links(&t, &[a, b]).unwrap(),
                demand: None,
            },
            AllocFlow {
                links: directed_links(&t, &[b, c]).unwrap(),
                demand: None,
            },
        ];
        let rates = max_min_allocation(&t, &flows);
        for r in &rates {
            assert!((r - 5.0).abs() < 1e-9, "{rates:?}");
        }
    }

    #[test]
    fn heterogeneous_chain_gives_maxmin_not_equal_split() {
        // a-b at 10, b-c at 4: the long flow a-c freezes at the b-c
        // bottleneck (4), after which the short a-b flow takes the
        // leftover 6 — the defining max-min property.
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Core);
        let b = t.add_node("b", NodeKind::Core);
        let c = t.add_node("c", NodeKind::Core);
        t.add_link(a, b, 10.0, 1.0);
        t.add_link(b, c, 4.0, 1.0);
        let flows = vec![
            AllocFlow {
                links: directed_links(&t, &[a, b, c]).unwrap(),
                demand: None,
            },
            AllocFlow {
                links: directed_links(&t, &[a, b]).unwrap(),
                demand: None,
            },
        ];
        let rates = max_min_allocation(&t, &flows);
        assert!((rates[0] - 4.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 6.0).abs() < 1e-9, "{rates:?}");
    }
}
