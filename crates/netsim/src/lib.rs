//! Discrete-event, flow-level network emulator.
//!
//! The paper runs its two experiments on nine VirtualBox VMs emulating a
//! subset of the Global P4 Lab: RARE/freeRtr routers, VirtualBox
//! rate-limited NICs, `tc`-injected delay, and iperf3/ping as traffic
//! generators. This crate is the software substitute: a fluid-flow
//! simulator with
//!
//! * a capacitated, delay-annotated [`topo::Topology`] (including the
//!   Fig 9 testbed as [`topo::global_p4_lab`]);
//! * **max-min fair** bandwidth sharing recomputed whenever the flow set
//!   changes ([`fairness`]), which is the steady-state behaviour of
//!   competing TCP flows on shared bottlenecks;
//! * first-order TCP rate convergence and a protocol-efficiency factor,
//!   so throughput curves ramp like the paper's Fig 12 rather than
//!   stepping instantaneously;
//! * RTT probes with M/M/1-style queueing delay on utilized links
//!   ([`sim::Simulation::ping`]), standing in for `ping`;
//! * an event queue (start/stop/reroute flows, link capacity changes,
//!   link failure, telemetry sampling) and a telemetry recorder — the
//!   "agents \[that\] collect telemetry data from relevant network paths"
//!   of Sec. IV.
//!
//! Determinism: given the same seed and event schedule, a simulation run
//! is bit-for-bit reproducible.

pub mod fairness;
pub mod flow;
pub mod sim;
pub mod topo;

pub use fairness::{FairShareEngine, WaterfillMetrics, WaterfillStats};
pub use flow::{Flow, FlowId, FlowSpec};
pub use sim::{Event, Simulation, TelemetryRecord};
pub use topo::{LinkId, NodeIdx, Topology};

/// Errors from the emulator.
#[derive(Debug, Clone, PartialEq)]
pub enum NetsimError {
    /// Named node does not exist.
    UnknownNode(String),
    /// Node index out of range.
    BadNodeIndex(usize),
    /// Two nodes are not adjacent.
    NotAdjacent(String, String),
    /// A path was empty or disconnected.
    BadPath(String),
    /// Flow id does not exist.
    UnknownFlow(u64),
    /// Link id does not exist.
    UnknownLink(usize),
}

impl std::fmt::Display for NetsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetsimError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            NetsimError::BadNodeIndex(i) => write!(f, "node index {i} out of range"),
            NetsimError::NotAdjacent(a, b) => write!(f, "nodes {a} and {b} are not adjacent"),
            NetsimError::BadPath(m) => write!(f, "bad path: {m}"),
            NetsimError::UnknownFlow(id) => write!(f, "unknown flow {id}"),
            NetsimError::UnknownLink(id) => write!(f, "unknown link {id}"),
        }
    }
}

impl std::error::Error for NetsimError {}
