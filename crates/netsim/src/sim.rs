//! The discrete-event simulation engine: events, TCP dynamics, probes,
//! and telemetry recording.
//!
//! # Event core
//!
//! Simulated time does not march in fixed `dt` ticks. The simulator
//! keeps one priority queue of timestamped events — external ones
//! (flow arrival/departure, reroute, link capacity change, link
//! up/down) and internal rate-convergence completions — ordered by
//! `(at, seq)` so ties break deterministically in scheduling order.
//! [`Simulation::run_until`] jumps straight to the next event or
//! telemetry sample point, applies everything due at that instant, and
//! re-solves fair shares once per touched timestamp via the
//! incremental [`FairShareEngine`]. Between events every flow's rate
//! is advanced *analytically* ([`Flow::rate_at`]): the closed-form
//! exponential replaces the old per-tick `step_rate`, and is exactly
//! the same trajectory (per-tick composition of `(1 - alpha)^k` equals
//! `exp(-k dt / tau)`), so a quiescent network costs nothing to
//! simulate. When a flow's residual to its share decays below 1 neV
//! (1e-9 Mbps), a queued `RateConverged` completion snaps the rate to
//! the share exactly, guarded by a per-flow generation counter so
//! stale completions are ignored.

use crate::fairness::{directed_links, Direction, FairShareEngine, WaterfillStats};
use crate::flow::{Flow, FlowId, FlowSpec};
use crate::topo::{LinkId, NodeIdx, Topology};
use crate::NetsimError;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

/// Simulation time in integer milliseconds (deterministic ordering).
pub type SimTimeMs = u64;

/// Residual (Mbps) below which a converging rate snaps to its share.
const CONV_EPS_MBPS: f64 = 1e-9;

/// Scheduled events.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Start a flow on an explicit node path.
    StartFlow {
        /// The flow description.
        spec: FlowSpec,
        /// Explicit path (hosts/edges included).
        path: Vec<NodeIdx>,
        /// Id to assign (caller-chosen so tests/controllers can refer to it).
        id: FlowId,
    },
    /// Stop (and remove) a flow.
    StopFlow(FlowId),
    /// Atomically reroute a flow onto a new path — the PolKA path
    /// migration: one PBR rewrite at the ingress edge.
    SetFlowPath(FlowId, Vec<NodeIdx>),
    /// Change a link's capacity (trace-driven modulation).
    SetLinkCapacity(LinkId, f64),
    /// Fail or restore a link.
    SetLinkUp(LinkId, bool),
    /// Change a flow's elastic demand in place (`None` = greedy): a
    /// mouse ramping up mid-life, an elephant backing off. The flow
    /// keeps its path and identity; only the fair-share fill reflows.
    SetFlowDemand(FlowId, Option<f64>),
}

/// Everything the event queue holds: user-visible events plus internal
/// rate-convergence completions.
#[derive(Debug, Clone)]
enum SimEvent {
    External(Event),
    /// Flow `id`'s exponential has decayed to within [`CONV_EPS_MBPS`]
    /// of its share; snap it there. Only honored if `gen` still matches
    /// the flow's convergence generation (share unchanged since
    /// scheduling).
    RateConverged {
        id: FlowId,
        gen: u64,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTimeMs,
    seq: u64,
    event: SimEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // reversed for a min-heap
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One telemetry sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRecord {
    /// Sample time (ms).
    pub at_ms: SimTimeMs,
    /// Series key, e.g. `flow:f1:rate` or `link:MIA-SAO:util`.
    pub key: String,
    /// Value (Mbps, ratio, or ms depending on the series).
    pub value: f64,
}

/// The simulator.
#[derive(Debug)]
pub struct Simulation {
    /// The network graph (public: controllers read topology state).
    pub topo: Topology,
    flows: HashMap<FlowId, Flow>,
    /// Deterministic iteration order for flows: insertion order with
    /// swap-remove on departure. Any permutation is fine as long as it
    /// is a pure function of the event sequence — float folds over it
    /// must replay bit-for-bit.
    flow_order: Vec<FlowId>,
    /// Position of each flow in `flow_order` (lookup only, never
    /// iterated), so `StopFlow` is O(1) instead of an O(n) retain.
    flow_pos: HashMap<FlowId, usize>,
    /// Node-pair (canonical `(min, max)`) -> flows whose path crosses
    /// that hop: on a link up/down event only these flows re-derive
    /// their link sets.
    hop_index: BTreeMap<(u32, u32), BTreeSet<FlowId>>,
    events: BinaryHeap<Scheduled>,
    seq: u64,
    now_ms: SimTimeMs,
    /// TCP convergence time constant (seconds).
    pub tcp_tau_s: f64,
    /// Protocol efficiency: goodput = efficiency * fair share. Calibrated
    /// so three saturated tunnels (20+10+5 Mbps raw) yield the ≈30 Mbps
    /// aggregate the paper measures in Fig 12.
    pub efficiency: f64,
    /// Queueing delay scale (ms of queue at 50% utilization).
    pub queue_ms_at_half_util: f64,
    rng: StdRng,
    telemetry: Vec<TelemetryRecord>,
    engine: FairShareEngine,
    /// Flows excluded from per-flow telemetry records (bulk background
    /// traffic at scale); they still count toward link utilization.
    quiet: BTreeSet<FlowId>,
    /// Events popped and applied (external + internal), for throughput
    /// reporting.
    events_processed: u64,
    /// Bumped whenever rates/shares/topology change; keys the
    /// utilization cache.
    state_version: u64,
    /// Memoized `link_utilization` for the current `(now, version)` —
    /// probes and telemetry at one instant share one computation.
    util_cache: RefCell<Option<UtilCacheEntry>>,
    /// Sim-time trace facade (off by default; every record is stamped
    /// with the event clock, so traces replay bit-identically).
    tracer: obsv::Tracer,
}

/// Nanoseconds per simulation millisecond — the sim core keeps time in
/// ms; traces are stamped in ns to share a clock with the packet plane.
pub const NS_PER_MS: u64 = 1_000_000;

/// `(now, state_version, per-link utilization)` memo entry.
type UtilCacheEntry = (SimTimeMs, u64, BTreeMap<(LinkId, Direction), f64>);

impl Simulation {
    /// A simulation over a topology with default TCP/queue parameters.
    pub fn new(topo: Topology, seed: u64) -> Self {
        Simulation {
            topo,
            flows: HashMap::new(),
            flow_order: Vec::new(),
            flow_pos: HashMap::new(),
            hop_index: BTreeMap::new(),
            events: BinaryHeap::new(),
            seq: 0,
            now_ms: 0,
            tcp_tau_s: 1.2,
            efficiency: 0.86,
            queue_ms_at_half_util: 1.0,
            rng: StdRng::seed_from_u64(seed),
            telemetry: Vec::new(),
            engine: FairShareEngine::new(),
            quiet: BTreeSet::new(),
            events_processed: 0,
            state_version: 0,
            util_cache: RefCell::new(None),
            tracer: obsv::Tracer::off(),
        }
    }

    /// Current simulation time (ms).
    pub fn now_ms(&self) -> SimTimeMs {
        self.now_ms
    }

    /// Current simulation time (ns) — the trace clock.
    pub fn now_ns(&self) -> u64 {
        self.now_ms * NS_PER_MS
    }

    /// Attaches (or detaches, with [`obsv::Tracer::off`]) the sim-time
    /// tracer instrumenting the event loop and the water-fill.
    pub fn set_tracer(&mut self, tracer: obsv::Tracer) {
        self.tracer = tracer;
    }

    /// Exposes the water-fill audit counters in `registry` under
    /// `netsim.waterfill.*`.
    pub fn register_metrics(&self, registry: &obsv::Registry) {
        self.engine.metrics().register(registry, "netsim.waterfill");
    }

    /// Schedules an event at an absolute time.
    ///
    /// Flow-path events ([`Event::StartFlow`], [`Event::SetFlowPath`])
    /// are validated against the topology *as of now*: every
    /// consecutive pair must be adjacent over a live link, otherwise
    /// the event is rejected with a [`NetsimError`] instead of silently
    /// simulating an impossible path (a later link failure can still
    /// invalidate an admitted path — that shows up as a stalled flow,
    /// which is the physical behavior).
    pub fn schedule(&mut self, at_ms: SimTimeMs, event: Event) -> Result<(), NetsimError> {
        match &event {
            Event::StartFlow { path, .. } | Event::SetFlowPath(_, path) => {
                // `link_between` only matches live links, so this
                // checks both adjacency and link state.
                self.topo.path_links(path)?;
            }
            Event::StopFlow(_)
            | Event::SetLinkCapacity(_, _)
            | Event::SetLinkUp(_, _)
            | Event::SetFlowDemand(_, _) => {}
        }
        let at = at_ms.max(self.now_ms);
        self.seq += 1;
        self.events.push(Scheduled {
            at,
            seq: self.seq,
            event: SimEvent::External(event),
        });
        Ok(())
    }

    /// Runs the simulation until `until_ms`, sampling telemetry every
    /// `sample_ms`. Time jumps between events: each iteration applies
    /// everything due at the current instant (events fire at their
    /// *exact* timestamps), re-solves fair shares once if anything
    /// external happened, samples if on a sample point, and then leaps
    /// to the earliest of next event / next sample / the horizon.
    /// Events scheduled at `until_ms` or later stay queued for the next
    /// call, and no sample is taken at `until_ms` itself — the same
    /// boundary convention as the historical tick loop, minus its skew:
    /// events that used to land strictly between tick boundaries are no
    /// longer applied up to one tick late.
    pub fn run_until(&mut self, until_ms: SimTimeMs, sample_ms: u64) {
        assert!(sample_ms > 0, "sample interval must be positive");
        if self.now_ms >= until_ms {
            return;
        }
        let mut next_sample = if self.now_ms == 0 {
            0
        } else {
            self.now_ms.div_ceil(sample_ms) * sample_ms
        };
        loop {
            let mut external = false;
            // The dispatch span covers every event due at this instant;
            // queue depth is sampled before the batch drains. All of it
            // is behind the tracer's inline `None` check.
            let depth = self.events.len() as u64;
            let dispatch = if self.tracer.enabled()
                && self.events.peek().is_some_and(|top| top.at <= self.now_ms)
            {
                Some(self.tracer.span("sim", "sim.dispatch", self.now_ns()))
            } else {
                None
            };
            let mut batch: u64 = 0;
            while self.events.peek().is_some_and(|top| top.at <= self.now_ms) {
                let Some(due) = self.events.pop() else { break };
                self.events_processed += 1;
                batch += 1;
                match due.event {
                    SimEvent::External(e) => {
                        self.apply_external(e);
                        external = true;
                    }
                    SimEvent::RateConverged { id, gen } => self.apply_converged(id, gen),
                }
            }
            if let Some(span) = dispatch {
                span.end(self.now_ns(), || {
                    vec![
                        ("events", obsv::Value::U64(batch)),
                        ("queue_depth", obsv::Value::U64(depth)),
                    ]
                });
            }
            if external {
                if self.tracer.enabled() {
                    let before = self.engine.stats();
                    let span = self.tracer.span("sim", "sim.waterfill", self.now_ns());
                    self.resolve_shares();
                    let after = self.engine.stats();
                    if after.full_solves > before.full_solves {
                        // Escalation to the audited full recompute is
                        // exactly the event a trace reader hunts for.
                        self.tracer.instant(
                            "sim",
                            "sim.waterfill.full_recompute",
                            self.now_ns(),
                            Vec::new,
                        );
                    }
                    span.end(self.now_ns(), || {
                        vec![
                            (
                                "incremental",
                                obsv::Value::U64(
                                    after.incremental_solves - before.incremental_solves,
                                ),
                            ),
                            (
                                "full",
                                obsv::Value::U64(after.full_solves - before.full_solves),
                            ),
                            (
                                "expansions",
                                obsv::Value::U64(after.expansions - before.expansions),
                            ),
                        ]
                    });
                } else {
                    self.resolve_shares();
                }
            }
            if self.now_ms >= next_sample {
                self.tracer.counter(
                    "sim",
                    "sim.queue_depth",
                    self.now_ns(),
                    self.events.len() as u64,
                );
                self.sample_telemetry();
                next_sample += sample_ms;
            }
            let mut next = until_ms.min(next_sample);
            if let Some(top) = self.events.peek() {
                if top.at < next {
                    next = top.at;
                }
            }
            if next >= until_ms {
                self.now_ms = until_ms;
                return;
            }
            self.now_ms = next;
        }
    }

    fn apply_external(&mut self, event: Event) {
        self.state_version += 1;
        match event {
            Event::StartFlow { spec, path, id } => {
                let links = directed_links(&self.topo, &path).ok();
                if let Some(old) = self.flows.get(&id) {
                    // Replace in place: same id, fresh flow, position
                    // in `flow_order` retained.
                    let old_path = old.path.clone();
                    self.unindex_hops(&old_path, id);
                } else {
                    self.flow_pos.insert(id, self.flow_order.len());
                    self.flow_order.push(id);
                }
                self.index_hops(&path, id);
                self.engine
                    .insert_flow(&self.topo, id, links, spec.demand_mbps);
                let mut flow = Flow::new(id, spec, path);
                flow.rate_as_of_ms = self.now_ms;
                self.flows.insert(id, flow);
            }
            Event::StopFlow(id) => {
                self.engine.remove_flow(&self.topo, id);
                if let Some(f) = self.flows.remove(&id) {
                    self.unindex_hops(&f.path, id);
                    self.quiet.remove(&id);
                    if let Some(pos) = self.flow_pos.remove(&id) {
                        self.flow_order.swap_remove(pos);
                        if pos < self.flow_order.len() {
                            let moved = self.flow_order[pos];
                            self.flow_pos.insert(moved, pos);
                        }
                    }
                }
            }
            Event::SetFlowPath(id, path) => {
                let links = directed_links(&self.topo, &path).ok();
                if let Some(f) = self.flows.get_mut(&id) {
                    let old_path = std::mem::replace(&mut f.path, path.clone());
                    self.unindex_hops(&old_path, id);
                    self.index_hops(&path, id);
                    self.engine.set_links(&self.topo, id, links);
                }
            }
            Event::SetLinkCapacity(lid, cap) => {
                if self.topo.link(lid).capacity_mbps != cap {
                    self.topo.link_mut(lid).capacity_mbps = cap;
                    self.engine.capacity_changed(lid);
                }
            }
            Event::SetFlowDemand(id, demand) => {
                if let Some(f) = self.flows.get_mut(&id) {
                    f.spec.demand_mbps = demand;
                    self.engine.set_demand(&self.topo, id, demand);
                }
            }
            Event::SetLinkUp(lid, up) => {
                if self.topo.link(lid).up != up {
                    self.topo.link_mut(lid).up = up;
                    let link = self.topo.link(lid);
                    let key = canonical_pair(link.a, link.b);
                    // Only flows with a hop over this node pair can
                    // gain or lose a live link set.
                    if let Some(ids) = self.hop_index.get(&key).cloned() {
                        for id in ids {
                            let path = &self.flows[&id].path;
                            let links = directed_links(&self.topo, path).ok();
                            self.engine.set_links(&self.topo, id, links);
                        }
                    }
                }
            }
        }
    }

    /// Applies the engine's batched share changes: each touched flow's
    /// trajectory is materialized at `now`, its share updated, and a
    /// convergence completion queued for when the new exponential has
    /// effectively flattened.
    fn resolve_shares(&mut self) {
        let changes = self.engine.resolve(&self.topo);
        let now = self.now_ms;
        let tau = self.tcp_tau_s;
        for (id, raw) in changes {
            let Some(f) = self.flows.get_mut(&id) else {
                continue;
            };
            f.materialize(now, tau);
            f.fair_share_mbps = raw * self.efficiency;
            f.conv_gen += 1;
            let gen = f.conv_gen;
            let dt = f.convergence_in_ms(tau, CONV_EPS_MBPS);
            if dt == 0 {
                f.rate_mbps = f.fair_share_mbps;
                f.converged = true;
            } else {
                f.converged = false;
                self.seq += 1;
                self.events.push(Scheduled {
                    at: now + dt,
                    seq: self.seq,
                    event: SimEvent::RateConverged { id, gen },
                });
            }
        }
    }

    fn apply_converged(&mut self, id: FlowId, gen: u64) {
        let now = self.now_ms;
        if let Some(f) = self.flows.get_mut(&id) {
            if f.conv_gen == gen && !f.converged {
                f.rate_mbps = f.fair_share_mbps;
                f.rate_as_of_ms = now;
                f.converged = true;
                self.state_version += 1;
            }
        }
    }

    fn index_hops(&mut self, path: &[NodeIdx], id: FlowId) {
        for w in path.windows(2) {
            self.hop_index
                .entry(canonical_pair(w[0], w[1]))
                .or_default()
                .insert(id);
        }
    }

    fn unindex_hops(&mut self, path: &[NodeIdx], id: FlowId) {
        for w in path.windows(2) {
            let key = canonical_pair(w[0], w[1]);
            if let Some(set) = self.hop_index.get_mut(&key) {
                set.remove(&id);
                if set.is_empty() {
                    self.hop_index.remove(&key);
                }
            }
        }
    }

    /// Per-directed-link utilization implied by current flow rates.
    ///
    /// Folds flows in `flow_order` (a deterministic function of the
    /// event sequence), **not** map order: float accumulation is
    /// order-sensitive at the ULP level, and hash-map iteration order
    /// varies per process — enough to flip a downstream
    /// forecast-driven routing decision and break bit-for-bit replay.
    /// The result is a sorted map, so consumers that enumerate it
    /// inherit a deterministic (link, direction) order for free. The
    /// computation is memoized per `(now, state_version)` — probes and
    /// samples at one instant share it.
    fn link_utilization(&self) -> BTreeMap<(LinkId, Direction), f64> {
        if let Some((t, v, map)) = self.util_cache.borrow().as_ref() {
            if *t == self.now_ms && *v == self.state_version {
                return map.clone();
            }
        }
        let mut used: BTreeMap<(LinkId, Direction), f64> = BTreeMap::new();
        for f in self.flow_order.iter().filter_map(|id| self.flows.get(id)) {
            if let Ok(links) = directed_links(&self.topo, &f.path) {
                let r = f.rate_at(self.now_ms, self.tcp_tau_s);
                for (lid, dir) in links {
                    *used.entry((lid, dir)).or_insert(0.0) += r;
                }
            }
        }
        for ((lid, _), mbps) in used.iter_mut() {
            let cap = self.topo.link(*lid).capacity_mbps.max(1e-9);
            *mbps = (*mbps / cap).min(1.0);
        }
        *self.util_cache.borrow_mut() = Some((self.now_ms, self.state_version, used.clone()));
        used
    }

    fn sample_telemetry(&mut self) {
        let at = self.now_ms;
        // Sorted-map iteration: recorded telemetry replays
        // byte-for-byte without an explicit sort.
        let utils: Vec<((LinkId, Direction), f64)> = self.link_utilization().into_iter().collect();
        let mut records = Vec::new();
        for f in self
            .flow_order
            .iter()
            .filter(|id| !self.quiet.contains(id))
            .filter_map(|id| self.flows.get(id))
        {
            records.push(TelemetryRecord {
                at_ms: at,
                key: format!("flow:{}:rate", f.spec.label),
                value: f.rate_at(at, self.tcp_tau_s),
            });
        }
        for ((lid, dir), u) in utils {
            let link = self.topo.link(lid);
            let (from, to) = match dir {
                Direction::Forward => (link.a, link.b),
                Direction::Reverse => (link.b, link.a),
            };
            records.push(TelemetryRecord {
                at_ms: at,
                key: format!(
                    "link:{}-{}:util",
                    self.topo.node_name(from),
                    self.topo.node_name(to)
                ),
                value: u,
            });
        }
        self.telemetry.extend(records);
    }

    /// Drives a link's capacity from a bandwidth trace: sample `i` of
    /// `values` becomes the link's capacity at
    /// `start_ms + i * interval_ms`. This is how the UQ wireless traces
    /// are attached to the emulated access links in the trace-driven
    /// steering extension.
    pub fn schedule_capacity_trace(
        &mut self,
        link: LinkId,
        start_ms: SimTimeMs,
        interval_ms: u64,
        values: &[f64],
    ) {
        for (i, &v) in values.iter().enumerate() {
            self.schedule(
                start_ms + i as u64 * interval_ms,
                Event::SetLinkCapacity(link, v.max(0.0)),
            )
            // detlint: allow(bare-panic) — SetLinkCapacity carries no
            // path, so schedule's adjacency validation cannot fail; a
            // panic here means schedule() itself changed contract.
            .expect("capacity events are always schedulable");
        }
    }

    /// Excludes a flow from per-flow telemetry records — bulk
    /// background traffic at scale would otherwise drown the recorder.
    /// The flow still contributes to link utilization and fair-share
    /// competition. Call before the flow's `StartFlow` fires.
    pub fn mark_background(&mut self, id: FlowId) {
        self.quiet.insert(id);
    }

    /// Number of queue events applied so far (external + internal) —
    /// the numerator of events/sec throughput reporting.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Live flow count (excluding flows stalled on failed links).
    pub fn live_flow_count(&self) -> usize {
        self.engine.live_flows()
    }

    /// Incremental-allocator audit counters.
    pub fn waterfill_stats(&self) -> WaterfillStats {
        self.engine.stats()
    }

    /// All telemetry so far.
    pub fn telemetry(&self) -> &[TelemetryRecord] {
        &self.telemetry
    }

    /// Extracts one telemetry series as `(t_ms, value)` pairs.
    pub fn series(&self, key: &str) -> Vec<(SimTimeMs, f64)> {
        self.telemetry
            .iter()
            .filter(|r| r.key == key)
            .map(|r| (r.at_ms, r.value))
            .collect()
    }

    /// A live flow's current goodput.
    pub fn flow_rate(&self, id: FlowId) -> Result<f64, NetsimError> {
        self.flows
            .get(&id)
            .map(|f| f.rate_at(self.now_ms, self.tcp_tau_s))
            .ok_or(NetsimError::UnknownFlow(id.0))
    }

    /// A live flow's current path.
    pub fn flow_path(&self, id: FlowId) -> Result<&[NodeIdx], NetsimError> {
        self.flows
            .get(&id)
            .map(|f| f.path.as_slice())
            .ok_or(NetsimError::UnknownFlow(id.0))
    }

    /// ICMP-style round-trip time measurement along a path **right now**:
    /// propagation both ways plus utilization-dependent queueing and a
    /// small seeded jitter. Stands in for the paper's `ping` runs.
    pub fn ping(&mut self, path: &[NodeIdx]) -> Result<f64, NetsimError> {
        let links = self.topo.path_links(path)?;
        let utils = self.link_utilization();
        let mut rtt = 0.0;
        for lid in links {
            let link = self.topo.link(lid);
            if !link.up {
                return Err(NetsimError::BadPath(format!("link {:?} is down", lid)));
            }
            // both directions' propagation
            rtt += 2.0 * link.delay_ms;
            // queueing per direction: M/M/1-style growth u/(1-u),
            // normalized so u=0.5 costs `queue_ms_at_half_util`.
            for dir in [Direction::Forward, Direction::Reverse] {
                let u = utils.get(&(lid, dir)).copied().unwrap_or(0.0).min(0.99);
                rtt += self.queue_ms_at_half_util * (u / (1.0 - u));
            }
        }
        // measurement jitter: +/- 3%
        let jitter: f64 = self.rng.gen_range(-0.03..0.03);
        Ok(rtt * (1.0 + jitter))
    }

    /// Available bandwidth estimate for a path: bottleneck residual
    /// capacity given current flow rates (what the telemetry service
    /// feeds Hecate).
    pub fn path_available_mbps(&self, path: &[NodeIdx]) -> Result<f64, NetsimError> {
        let links = directed_links(&self.topo, path)?;
        let utils = self.link_utilization();
        let mut avail = f64::INFINITY;
        for (lid, dir) in links {
            let cap = self.topo.link(lid).capacity_mbps;
            let u = utils.get(&(lid, dir)).copied().unwrap_or(0.0);
            avail = avail.min(cap * (1.0 - u));
        }
        Ok(avail)
    }
}

fn canonical_pair(a: NodeIdx, b: NodeIdx) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::global_p4_lab;

    fn tunnel1(t: &Topology) -> Vec<NodeIdx> {
        t.path_by_names(&["host1", "MIA", "SAO", "AMS", "host2"])
            .unwrap()
    }
    fn tunnel2(t: &Topology) -> Vec<NodeIdx> {
        t.path_by_names(&["host1", "MIA", "CHI", "AMS", "host2"])
            .unwrap()
    }

    fn greedy_spec(t: &Topology, label: &str, tos: u8) -> FlowSpec {
        FlowSpec {
            src: t.node("host1").unwrap(),
            dst: t.node("host2").unwrap(),
            demand_mbps: None,
            tos,
            label: label.to_string(),
        }
    }

    #[test]
    fn single_flow_ramps_to_bottleneck() {
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let spec = greedy_spec(&topo, "f1", 0);
        let mut sim = Simulation::new(topo, 1);
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.run_until(20_000, 1000);
        let r = sim.flow_rate(FlowId(1)).unwrap();
        // 20 Mbps bottleneck * 0.86 efficiency
        assert!((r - 20.0 * 0.86).abs() < 0.2, "rate {r}");
    }

    #[test]
    fn rate_ramps_gradually_not_instantly() {
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let spec = greedy_spec(&topo, "f1", 0);
        let mut sim = Simulation::new(topo, 1);
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.run_until(500, 100);
        let early = sim.flow_rate(FlowId(1)).unwrap();
        sim.run_until(10_000, 1000);
        let late = sim.flow_rate(FlowId(1)).unwrap();
        assert!(
            early < late * 0.5,
            "early {early} should be well below {late}"
        );
    }

    #[test]
    fn migration_changes_rate_cap() {
        // Start on tunnel 2 (10 Mbps), migrate to tunnel 1 (20 Mbps).
        let topo = global_p4_lab();
        let p2 = tunnel2(&topo);
        let p1 = tunnel1(&topo);
        let spec = greedy_spec(&topo, "f1", 0);
        let mut sim = Simulation::new(topo, 1);
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path: p2,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.schedule(30_000, Event::SetFlowPath(FlowId(1), p1))
            .unwrap();
        sim.run_until(29_000, 1000);
        let before = sim.flow_rate(FlowId(1)).unwrap();
        sim.run_until(60_000, 1000);
        let after = sim.flow_rate(FlowId(1)).unwrap();
        assert!((before - 10.0 * 0.86).abs() < 0.2, "before {before}");
        assert!((after - 20.0 * 0.86).abs() < 0.2, "after {after}");
    }

    #[test]
    fn stop_flow_releases_capacity() {
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let mut sim = Simulation::new(topo, 1);
        let s1 = greedy_spec(&sim.topo, "f1", 0);
        let s2 = greedy_spec(&sim.topo, "f2", 4);
        sim.schedule(
            0,
            Event::StartFlow {
                spec: s1,
                path: path.clone(),
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.schedule(
            0,
            Event::StartFlow {
                spec: s2,
                path,
                id: FlowId(2),
            },
        )
        .unwrap();
        sim.run_until(20_000, 1000);
        let shared = sim.flow_rate(FlowId(1)).unwrap();
        assert!((shared - 10.0 * 0.86).abs() < 0.3, "shared {shared}");
        sim.schedule(20_000, Event::StopFlow(FlowId(2))).unwrap();
        sim.run_until(45_000, 1000);
        let alone = sim.flow_rate(FlowId(1)).unwrap();
        assert!((alone - 20.0 * 0.86).abs() < 0.3, "alone {alone}");
    }

    #[test]
    fn ping_reflects_path_delay_and_load() {
        let topo = global_p4_lab();
        let p1 = topo.path_by_names(&["MIA", "SAO", "AMS"]).unwrap();
        let p2 = topo.path_by_names(&["MIA", "CHI", "AMS"]).unwrap();
        let mut sim = Simulation::new(topo, 7);
        let rtt1 = sim.ping(&p1).unwrap();
        let rtt2 = sim.ping(&p2).unwrap();
        // idle RTTs ~ 2*(20+9)=58 and 2*(3+5)=16, +-3% jitter
        assert!((rtt1 - 58.0).abs() < 3.0, "rtt1 {rtt1}");
        assert!((rtt2 - 16.0).abs() < 1.0, "rtt2 {rtt2}");
    }

    #[test]
    fn ping_grows_under_load() {
        let topo = global_p4_lab();
        let probe_path = topo.path_by_names(&["MIA", "SAO", "AMS"]).unwrap();
        let flow_path = tunnel1(&topo);
        let mut sim = Simulation::new(topo, 7);
        let idle: f64 = (0..20).map(|_| sim.ping(&probe_path).unwrap()).sum::<f64>() / 20.0;
        let spec = greedy_spec(&sim.topo, "f1", 0);
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path: flow_path,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.run_until(20_000, 1000);
        let loaded: f64 = (0..20).map(|_| sim.ping(&probe_path).unwrap()).sum::<f64>() / 20.0;
        assert!(loaded > idle + 2.0, "idle {idle} vs loaded {loaded}");
    }

    #[test]
    fn link_failure_stalls_flow_and_fails_ping() {
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let mia = topo.node("MIA").unwrap();
        let sao = topo.node("SAO").unwrap();
        let lid = topo.link_between(mia, sao).unwrap();
        let mut sim = Simulation::new(topo, 1);
        let spec = greedy_spec(&sim.topo, "f1", 0);
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path: path.clone(),
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.run_until(10_000, 1000);
        sim.schedule(10_000, Event::SetLinkUp(lid, false)).unwrap();
        sim.run_until(30_000, 1000);
        let r = sim.flow_rate(FlowId(1)).unwrap();
        assert!(r < 0.1, "flow should stall, rate {r}");
        assert!(sim.ping(&path).is_err());
    }

    #[test]
    fn link_failure_stalls_demand_declared_flow_too() {
        // Regression: a failed link used to stall only greedy flows —
        // a demand-declared flow's dead path degenerated to an empty
        // link list, which the allocator reads as a zero-hop path that
        // delivers its demand.
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let mia = topo.node("MIA").unwrap();
        let sao = topo.node("SAO").unwrap();
        let lid = topo.link_between(mia, sao).unwrap();
        let mut sim = Simulation::new(topo, 1);
        let spec = FlowSpec {
            demand_mbps: Some(5.0),
            ..greedy_spec(&sim.topo, "f1", 0)
        };
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.run_until(10_000, 1000);
        assert!(sim.flow_rate(FlowId(1)).unwrap() > 3.0);
        sim.schedule(10_000, Event::SetLinkUp(lid, false)).unwrap();
        sim.run_until(30_000, 1000);
        let r = sim.flow_rate(FlowId(1)).unwrap();
        assert!(r < 0.1, "demand flow must stall on failure, rate {r}");
        // Restoration recovers the demand.
        sim.schedule(30_000, Event::SetLinkUp(lid, true)).unwrap();
        sim.run_until(50_000, 1000);
        let r = sim.flow_rate(FlowId(1)).unwrap();
        assert!((r - 5.0 * 0.86).abs() < 0.3, "recovered rate {r}");
    }

    #[test]
    fn telemetry_sampling_cadence() {
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let mut sim = Simulation::new(topo, 1);
        let spec = greedy_spec(&sim.topo, "f1", 0);
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.run_until(10_000, 1000);
        let series = sim.series("flow:f1:rate");
        assert_eq!(series.len(), 10, "one sample per second");
        assert!(series.windows(2).all(|w| w[1].0 - w[0].0 == 1000));
        // the ramp is visible in telemetry
        assert!(series.first().unwrap().1 < series.last().unwrap().1);
    }

    #[test]
    fn available_bandwidth_shrinks_under_load() {
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let inner = topo.path_by_names(&["MIA", "SAO", "AMS"]).unwrap();
        let mut sim = Simulation::new(topo, 1);
        let before = sim.path_available_mbps(&inner).unwrap();
        let spec = greedy_spec(&sim.topo, "f1", 0);
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.run_until(20_000, 1000);
        let after = sim.path_available_mbps(&inner).unwrap();
        assert_eq!(before, 20.0);
        assert!(after < 5.0, "loaded available {after}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let topo = global_p4_lab();
            let path = tunnel1(&topo);
            let mut sim = Simulation::new(topo, seed);
            let spec = greedy_spec(&sim.topo, "f1", 0);
            sim.schedule(
                0,
                Event::StartFlow {
                    spec,
                    path,
                    id: FlowId(1),
                },
            )
            .unwrap();
            sim.run_until(5_000, 1000);
            let p = sim.topo.path_by_names(&["MIA", "SAO", "AMS"]).unwrap();
            (sim.flow_rate(FlowId(1)).unwrap(), sim.ping(&p).unwrap())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1); // jitter differs across seeds
    }

    #[test]
    fn unknown_flow_is_error() {
        let sim = Simulation::new(global_p4_lab(), 1);
        assert!(sim.flow_rate(FlowId(99)).is_err());
    }

    #[test]
    fn impossible_paths_are_rejected_at_schedule_time() {
        let topo = global_p4_lab();
        let mia = topo.node("MIA").unwrap();
        let ams = topo.node("AMS").unwrap(); // not adjacent to MIA
        let sao = topo.node("SAO").unwrap();
        let mut sim = Simulation::new(topo, 1);
        let spec = greedy_spec(&sim.topo, "f1", 0);
        // Non-adjacent hop pair.
        assert!(sim
            .schedule(
                0,
                Event::StartFlow {
                    spec: spec.clone(),
                    path: vec![mia, ams],
                    id: FlowId(1),
                },
            )
            .is_err());
        // Reroute onto a non-adjacent pair.
        assert!(sim
            .schedule(0, Event::SetFlowPath(FlowId(1), vec![mia, ams]))
            .is_err());
        // Degenerate single-node path.
        assert!(sim
            .schedule(0, Event::SetFlowPath(FlowId(1), vec![mia]))
            .is_err());
        // A path over a failed link is rejected too.
        let lid = sim.topo.link_between(mia, sao).unwrap();
        sim.topo.link_mut(lid).up = false;
        assert!(sim
            .schedule(
                0,
                Event::StartFlow {
                    spec,
                    path: vec![mia, sao],
                    id: FlowId(1),
                },
            )
            .is_err());
        // Non-path events are untouched by validation.
        sim.schedule(0, Event::SetLinkUp(lid, true)).unwrap();
    }

    #[test]
    fn capacity_trace_modulates_flow_rate() {
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let mia = topo.node("MIA").unwrap();
        let sao = topo.node("SAO").unwrap();
        let lid = topo.link_between(mia, sao).unwrap();
        let mut sim = Simulation::new(topo, 1);
        // capacity drops to 4 Mbps between t=10s and t=20s, then recovers
        let trace = [20.0, 4.0, 20.0];
        sim.schedule_capacity_trace(lid, 0, 10_000, &trace);
        let spec = greedy_spec(&sim.topo, "f1", 0);
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.run_until(9_000, 1000);
        let high = sim.flow_rate(FlowId(1)).unwrap();
        sim.run_until(19_000, 1000);
        let low = sim.flow_rate(FlowId(1)).unwrap();
        sim.run_until(35_000, 1000);
        let recovered = sim.flow_rate(FlowId(1)).unwrap();
        assert!(high > 15.0, "high {high}");
        assert!(low < 5.0, "low {low}");
        assert!(recovered > 15.0, "recovered {recovered}");
    }

    #[test]
    fn events_fire_at_exact_timestamps() {
        // Regression for the tick-era skew: an event due strictly
        // between 100 ms tick boundaries was applied up to one tick
        // late. The event core must anchor the flow's trajectory at
        // exactly t = 12_345 ms.
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let spec = greedy_spec(&topo, "f1", 0);
        let mut sim = Simulation::new(topo, 1);
        sim.schedule(
            12_345,
            Event::StartFlow {
                spec,
                path,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.run_until(20_000, 1000);
        let r = sim.flow_rate(FlowId(1)).unwrap();
        let expected = 17.2 * (1.0 - (-((20_000.0_f64 - 12_345.0) / 1000.0) / 1.2).exp());
        assert!((r - expected).abs() < 1e-9, "r {r} expected {expected}");
    }

    #[test]
    fn link_failure_fires_at_exact_timestamp() {
        // SetLinkUp at t = 13_371 ms (off any tick grid): the flow's
        // decay toward 0 must start exactly there.
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let mia = topo.node("MIA").unwrap();
        let sao = topo.node("SAO").unwrap();
        let lid = topo.link_between(mia, sao).unwrap();
        let spec = greedy_spec(&topo, "f1", 0);
        let mut sim = Simulation::new(topo, 1);
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.schedule(13_371, Event::SetLinkUp(lid, false)).unwrap();
        sim.run_until(15_000, 1000);
        let r = sim.flow_rate(FlowId(1)).unwrap();
        let tau_ms = 1.2 * 1000.0;
        let at_down = 17.2 * (1.0 - (-13_371.0_f64 / tau_ms).exp());
        let expected = at_down * (-(15_000.0_f64 - 13_371.0) / tau_ms).exp();
        assert!((r - expected).abs() < 1e-9, "r {r} expected {expected}");
    }

    #[test]
    fn stop_flow_swap_remove_keeps_replay_deterministic() {
        // flow_order uses swap-remove on StopFlow; the resulting order
        // must be a pure function of the event sequence. Pin both the
        // exact order (via telemetry record sequence) and bitwise
        // replay equality across two identical runs.
        let run = || {
            let topo = global_p4_lab();
            let path = tunnel1(&topo);
            let mut sim = Simulation::new(topo, 9);
            for i in 1..=8u64 {
                let spec = greedy_spec(&sim.topo, &format!("f{i}"), 0);
                sim.schedule(
                    0,
                    Event::StartFlow {
                        spec,
                        path: path.clone(),
                        id: FlowId(i),
                    },
                )
                .unwrap();
            }
            for (t, id) in [(1_000, 3u64), (2_000, 5), (3_000, 2)] {
                sim.schedule(t, Event::StopFlow(FlowId(id))).unwrap();
            }
            sim.run_until(5_000, 1000);
            sim.telemetry().to_vec()
        };
        let a = run();
        assert_eq!(a, run(), "bitwise replay");
        let last_at = a.last().unwrap().at_ms;
        let final_flow_keys: Vec<&str> = a
            .iter()
            .filter(|r| r.at_ms == last_at && r.key.starts_with("flow:"))
            .map(|r| r.key.as_str())
            .collect();
        // [1..8], swap-remove 3 -> [1,2,8,4,5,6,7], 5 -> [1,2,8,4,7,6],
        // 2 -> [1,6,8,4,7]
        assert_eq!(
            final_flow_keys,
            vec![
                "flow:f1:rate",
                "flow:f6:rate",
                "flow:f8:rate",
                "flow:f4:rate",
                "flow:f7:rate"
            ]
        );
    }

    #[test]
    fn quiescent_network_processes_no_events() {
        // The point of the event core: idle spans cost nothing but the
        // sample points, regardless of horizon.
        let topo = global_p4_lab();
        let path = tunnel1(&topo);
        let spec = greedy_spec(&topo, "f1", 0);
        let mut sim = Simulation::new(topo, 1);
        sim.schedule(
            0,
            Event::StartFlow {
                spec,
                path,
                id: FlowId(1),
            },
        )
        .unwrap();
        sim.run_until(3_600_000, 1_000_000);
        // one StartFlow + one RateConverged, nothing else in an hour
        assert_eq!(sim.events_processed(), 2);
        let r = sim.flow_rate(FlowId(1)).unwrap();
        assert_eq!(r, 17.2, "converged rate snaps exactly to the share");
    }
}
