//! Flows: demands, paths, and TCP-like rate state.

use crate::topo::NodeIdx;

/// Unique flow identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A flow request, as the Scheduler hands to the Controller.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Ingress node (host or edge).
    pub src: NodeIdx,
    /// Egress node.
    pub dst: NodeIdx,
    /// Offered load in Mbps; `None` = greedy TCP (take whatever the
    /// network gives, like an iperf3 run).
    pub demand_mbps: Option<f64>,
    /// DiffServ/ToS marking — the paper differentiates its three
    /// Experiment-2 flows by ToS.
    pub tos: u8,
    /// Human-readable label for telemetry and dashboards.
    pub label: String,
}

/// A live flow inside the simulator.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Identifier.
    pub id: FlowId,
    /// Specification.
    pub spec: FlowSpec,
    /// Node path currently assigned (edge-to-edge, hosts included).
    pub path: Vec<NodeIdx>,
    /// Instantaneous goodput (Mbps) after TCP convergence dynamics.
    pub rate_mbps: f64,
    /// The max-min fair allocation the flow is converging toward.
    pub fair_share_mbps: f64,
}

impl Flow {
    /// Creates a flow at rate 0 (slow start).
    pub fn new(id: FlowId, spec: FlowSpec, path: Vec<NodeIdx>) -> Self {
        Flow {
            id,
            spec,
            path,
            rate_mbps: 0.0,
            fair_share_mbps: 0.0,
        }
    }

    /// First-order convergence toward the fair share: a fluid stand-in
    /// for TCP's ramp (slow start + congestion avoidance). `tau` is the
    /// convergence time constant in seconds.
    pub fn step_rate(&mut self, dt_s: f64, tau_s: f64) {
        let alpha = 1.0 - (-dt_s / tau_s).exp();
        self.rate_mbps += (self.fair_share_mbps - self.rate_mbps) * alpha;
        if self.rate_mbps < 0.0 {
            self.rate_mbps = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FlowSpec {
        FlowSpec {
            src: NodeIdx(0),
            dst: NodeIdx(1),
            demand_mbps: None,
            tos: 0,
            label: "test".into(),
        }
    }

    #[test]
    fn rate_converges_to_fair_share() {
        let mut f = Flow::new(FlowId(1), spec(), vec![NodeIdx(0), NodeIdx(1)]);
        f.fair_share_mbps = 10.0;
        for _ in 0..100 {
            f.step_rate(0.1, 1.0);
        }
        assert!((f.rate_mbps - 10.0).abs() < 0.01);
    }

    #[test]
    fn rate_tracks_reduced_share_downward() {
        let mut f = Flow::new(FlowId(1), spec(), vec![NodeIdx(0), NodeIdx(1)]);
        f.fair_share_mbps = 10.0;
        for _ in 0..100 {
            f.step_rate(0.1, 1.0);
        }
        f.fair_share_mbps = 2.0;
        for _ in 0..100 {
            f.step_rate(0.1, 1.0);
        }
        assert!((f.rate_mbps - 2.0).abs() < 0.01);
    }

    #[test]
    fn convergence_speed_scales_with_tau() {
        let mut fast = Flow::new(FlowId(1), spec(), vec![]);
        let mut slow = Flow::new(FlowId(2), spec(), vec![]);
        fast.fair_share_mbps = 10.0;
        slow.fair_share_mbps = 10.0;
        fast.step_rate(1.0, 0.5);
        slow.step_rate(1.0, 5.0);
        assert!(fast.rate_mbps > slow.rate_mbps);
    }

    #[test]
    fn rate_never_negative() {
        let mut f = Flow::new(FlowId(1), spec(), vec![]);
        f.rate_mbps = 1.0;
        f.fair_share_mbps = 0.0;
        for _ in 0..200 {
            f.step_rate(0.5, 1.0);
        }
        assert!(f.rate_mbps >= 0.0);
    }
}
