//! Flows: demands, paths, and TCP-like rate state.
//!
//! Rate dynamics are *analytic*: a flow stores the rate it had the last
//! time its fair share changed (`rate_mbps` as of `rate_as_of_ms`) and
//! the share it is converging toward; the instantaneous rate at any
//! later time is the closed-form first-order response
//! `share + (r0 - share) * exp(-dt / tau)`. The simulator never steps
//! flows tick by tick — it materializes a flow's trajectory only at the
//! events that change its share.

use crate::topo::NodeIdx;

/// Unique flow identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A flow request, as the Scheduler hands to the Controller.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Ingress node (host or edge).
    pub src: NodeIdx,
    /// Egress node.
    pub dst: NodeIdx,
    /// Offered load in Mbps; `None` = greedy TCP (take whatever the
    /// network gives, like an iperf3 run).
    pub demand_mbps: Option<f64>,
    /// DiffServ/ToS marking — the paper differentiates its three
    /// Experiment-2 flows by ToS.
    pub tos: u8,
    /// Human-readable label for telemetry and dashboards.
    pub label: String,
}

/// A live flow inside the simulator.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Identifier.
    pub id: FlowId,
    /// Specification.
    pub spec: FlowSpec,
    /// Node path currently assigned (edge-to-edge, hosts included).
    pub path: Vec<NodeIdx>,
    /// Goodput (Mbps) at `rate_as_of_ms` — the anchor of the analytic
    /// trajectory, **not** necessarily the current rate; use
    /// [`Flow::rate_at`] for the rate at a given time.
    pub rate_mbps: f64,
    /// The max-min fair allocation the flow is converging toward.
    pub fair_share_mbps: f64,
    /// Simulation time (ms) at which `rate_mbps` was materialized.
    pub rate_as_of_ms: u64,
    /// True once the residual `|rate - share|` is negligible: the
    /// trajectory is flat and `rate_at` short-circuits to the share.
    pub converged: bool,
    /// Generation counter for rate-convergence events: bumped on every
    /// share change so stale queued completions are ignored.
    pub conv_gen: u64,
}

impl Flow {
    /// Creates a flow at rate 0 (slow start).
    pub fn new(id: FlowId, spec: FlowSpec, path: Vec<NodeIdx>) -> Self {
        Flow {
            id,
            spec,
            path,
            rate_mbps: 0.0,
            fair_share_mbps: 0.0,
            rate_as_of_ms: 0,
            converged: true,
            conv_gen: 0,
        }
    }

    /// Instantaneous goodput at `at_ms >= rate_as_of_ms`: first-order
    /// convergence toward the fair share, a fluid stand-in for TCP's
    /// ramp (slow start + congestion avoidance). `tau_s` is the
    /// convergence time constant in seconds.
    pub fn rate_at(&self, at_ms: u64, tau_s: f64) -> f64 {
        if self.converged {
            return self.fair_share_mbps;
        }
        let dt_s = at_ms.saturating_sub(self.rate_as_of_ms) as f64 / 1000.0;
        let decay = (-dt_s / tau_s).exp();
        let r = self.fair_share_mbps + (self.rate_mbps - self.fair_share_mbps) * decay;
        r.max(0.0)
    }

    /// Pins the analytic trajectory at `at_ms`: evaluates the current
    /// rate and re-anchors there. Called right before the fair share
    /// changes, so the new exponential starts from the rate the flow
    /// actually had.
    pub fn materialize(&mut self, at_ms: u64, tau_s: f64) {
        self.rate_mbps = self.rate_at(at_ms, tau_s);
        self.rate_as_of_ms = at_ms;
    }

    /// Milliseconds from `rate_as_of_ms` until the residual
    /// `|rate - share|` first drops below `eps_mbps` (0 when already
    /// there). This is when the simulator schedules the flow's
    /// rate-convergence completion event.
    pub fn convergence_in_ms(&self, tau_s: f64, eps_mbps: f64) -> u64 {
        let gap = (self.rate_mbps - self.fair_share_mbps).abs();
        if gap <= eps_mbps {
            0
        } else {
            (tau_s * (gap / eps_mbps).ln() * 1000.0).ceil() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FlowSpec {
        FlowSpec {
            src: NodeIdx(0),
            dst: NodeIdx(1),
            demand_mbps: None,
            tos: 0,
            label: "test".into(),
        }
    }

    fn converging(share: f64) -> Flow {
        let mut f = Flow::new(FlowId(1), spec(), vec![NodeIdx(0), NodeIdx(1)]);
        f.fair_share_mbps = share;
        f.converged = false;
        f
    }

    #[test]
    fn rate_converges_to_fair_share() {
        let f = converging(10.0);
        assert!((f.rate_at(10_000, 1.0) - 10.0).abs() < 0.01);
    }

    #[test]
    fn rate_tracks_reduced_share_downward() {
        let mut f = converging(10.0);
        f.materialize(10_000, 1.0);
        f.fair_share_mbps = 2.0;
        assert!((f.rate_at(20_000, 1.0) - 2.0).abs() < 0.01);
    }

    #[test]
    fn analytic_rate_matches_iterated_ticks() {
        // The old per-tick stepper composed (1 - alpha)^k with
        // alpha = 1 - exp(-dt/tau); that is exactly exp(-k*dt/tau), so
        // the closed form must agree at every tick boundary.
        let f = converging(10.0);
        let tau = 1.2;
        let mut iterated = 0.0f64;
        let alpha = 1.0 - (-0.1f64 / tau).exp();
        for k in 1..=50 {
            iterated += (10.0 - iterated) * alpha;
            let analytic = f.rate_at(k * 100, tau);
            assert!(
                (analytic - iterated).abs() < 1e-9,
                "tick {k}: {analytic} vs {iterated}"
            );
        }
    }

    #[test]
    fn convergence_speed_scales_with_tau() {
        let fast = converging(10.0);
        let slow = converging(10.0);
        assert!(fast.rate_at(1_000, 0.5) > slow.rate_at(1_000, 5.0));
    }

    #[test]
    fn rate_never_negative() {
        let mut f = converging(0.0);
        f.rate_mbps = 1.0;
        for t in [0, 100, 1_000, 100_000] {
            assert!(f.rate_at(t, 1.0) >= 0.0);
        }
    }

    #[test]
    fn materialize_is_idempotent_at_fixed_time() {
        let mut f = converging(8.0);
        f.materialize(3_000, 1.2);
        let r = f.rate_mbps;
        f.materialize(3_000, 1.2);
        assert_eq!(f.rate_mbps, r);
        assert_eq!(f.rate_as_of_ms, 3_000);
    }

    #[test]
    fn convergence_time_is_zero_once_within_eps() {
        let mut f = converging(10.0);
        f.rate_mbps = 10.0;
        assert_eq!(f.convergence_in_ms(1.2, 1e-9), 0);
        f.rate_mbps = 0.0;
        let ms = f.convergence_in_ms(1.2, 1e-9);
        // tau * ln(10/1e-9) seconds, a bit under 28 s
        assert!(ms > 25_000 && ms < 30_000, "ms {ms}");
        // and the analytic rate really is within eps there
        assert!((f.rate_at(ms, 1.2) - 10.0).abs() <= 1e-9 * 1.01);
    }
}
