//! Topology: nodes, capacitated/delayed links, and path computation.

use crate::NetsimError;
use std::collections::{BinaryHeap, HashMap};

/// Index of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub u32);

/// Index of an (undirected) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Node role, mirroring the testbed: hosts sit at the edge, routers
/// run PolKA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// End host (traffic source/sink).
    Host,
    /// Edge router (classifies, encapsulates PolKA headers).
    Edge,
    /// Core router (stateless PolKA forwarding).
    Core,
}

#[derive(Debug, Clone)]
pub(crate) struct NodeInfo {
    pub name: String,
    pub kind: NodeKind,
}

/// A full-duplex link: `capacity_mbps` applies independently to each
/// direction; `delay_ms` is the one-way propagation delay.
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint.
    pub a: NodeIdx,
    /// Other endpoint.
    pub b: NodeIdx,
    /// Per-direction capacity in Mbps.
    pub capacity_mbps: f64,
    /// One-way propagation delay in milliseconds.
    pub delay_ms: f64,
    /// False once failed.
    pub up: bool,
}

/// The network graph.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    names: HashMap<String, NodeIdx>,
    links: Vec<Link>,
    /// adjacency: node -> (neighbor, link id), in link-insertion order
    adj: Vec<Vec<(NodeIdx, LinkId)>>,
    /// Prebuilt port table: node -> (neighbor, link id) sorted by
    /// ascending neighbor index (ties keep insertion order). Position
    /// `p` is physical port `p + 1`, exactly the numbering
    /// [`Topology::neighbor_port`] defines — maintained incrementally on
    /// [`Topology::add_link`] so per-hop lookups never sort or scan the
    /// whole link list.
    ports: Vec<Vec<(NodeIdx, LinkId)>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node; names must be unique.
    ///
    /// # Panics
    /// Panics on duplicate names — topology construction is programmatic
    /// and a duplicate is a bug in the caller.
    pub fn add_node(&mut self, name: &str, kind: NodeKind) -> NodeIdx {
        assert!(
            !self.names.contains_key(name),
            "duplicate node name {name:?}"
        );
        let idx = NodeIdx(self.nodes.len() as u32);
        self.nodes.push(NodeInfo {
            name: name.to_string(),
            kind,
        });
        self.names.insert(name.to_string(), idx);
        self.adj.push(Vec::new());
        self.ports.push(Vec::new());
        idx
    }

    /// Adds a full-duplex link.
    pub fn add_link(
        &mut self,
        a: NodeIdx,
        b: NodeIdx,
        capacity_mbps: f64,
        delay_ms: f64,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            capacity_mbps,
            delay_ms,
            up: true,
        });
        self.adj[a.0 as usize].push((b, id));
        self.adj[b.0 as usize].push((a, id));
        // Upper-bound insertion keeps the table sorted by neighbor with
        // parallel links staying in insertion order (what a stable sort
        // of the adjacency list would produce).
        for (node, nb) in [(a, b), (b, a)] {
            let table = &mut self.ports[node.0 as usize];
            let pos = table.partition_point(|(n, _)| n.0 <= nb.0);
            table.insert(pos, (nb, id));
        }
        id
    }

    /// The sorted port range of `a`'s entries facing neighbor `b`:
    /// contiguous in the port table because it is sorted by neighbor.
    fn port_range(&self, a: NodeIdx, b: NodeIdx) -> std::ops::Range<usize> {
        let table = &self.ports[a.0 as usize];
        let lo = table.partition_point(|(n, _)| n.0 < b.0);
        let hi = table.partition_point(|(n, _)| n.0 <= b.0);
        lo..hi
    }

    /// Node index by name.
    pub fn node(&self, name: &str) -> Result<NodeIdx, NetsimError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| NetsimError::UnknownNode(name.to_string()))
    }

    /// Node name by index.
    pub fn node_name(&self, idx: NodeIdx) -> &str {
        &self.nodes[idx.0 as usize].name
    }

    /// Node kind by index.
    pub fn node_kind(&self, idx: NodeIdx) -> NodeKind {
        self.nodes[idx.0 as usize].kind
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Mutable link by id (capacity changes, failures).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link between two adjacent nodes. Served from the prebuilt
    /// port table (binary search on the node's degree, not a scan of
    /// the link list) — this sits on the per-hop path of route
    /// compilation and path validation.
    pub fn link_between(&self, a: NodeIdx, b: NodeIdx) -> Result<LinkId, NetsimError> {
        self.ports[a.0 as usize][self.port_range(a, b)]
            .iter()
            .find(|(_, l)| self.links[l.0 as usize].up)
            .map(|(_, l)| *l)
            .ok_or_else(|| {
                NetsimError::NotAdjacent(
                    self.node_name(a).to_string(),
                    self.node_name(b).to_string(),
                )
            })
    }

    /// Resolves a node-name path to indices, validating adjacency.
    pub fn path_by_names(&self, names: &[&str]) -> Result<Vec<NodeIdx>, NetsimError> {
        if names.len() < 2 {
            return Err(NetsimError::BadPath("need at least two nodes".into()));
        }
        let idx: Vec<NodeIdx> = names
            .iter()
            .map(|n| self.node(n))
            .collect::<Result<_, _>>()?;
        for w in idx.windows(2) {
            self.link_between(w[0], w[1])?;
        }
        Ok(idx)
    }

    /// The links along a node path.
    pub fn path_links(&self, path: &[NodeIdx]) -> Result<Vec<LinkId>, NetsimError> {
        if path.len() < 2 {
            return Err(NetsimError::BadPath("need at least two nodes".into()));
        }
        path.windows(2)
            .map(|w| self.link_between(w[0], w[1]))
            .collect()
    }

    /// One-way propagation delay of a path in milliseconds.
    pub fn path_delay_ms(&self, path: &[NodeIdx]) -> Result<f64, NetsimError> {
        Ok(self
            .path_links(path)?
            .iter()
            .map(|l| self.link(*l).delay_ms)
            .sum())
    }

    /// Bottleneck (minimum) capacity along a path in Mbps.
    pub fn path_capacity_mbps(&self, path: &[NodeIdx]) -> Result<f64, NetsimError> {
        Ok(self
            .path_links(path)?
            .iter()
            .map(|l| self.link(*l).capacity_mbps)
            .fold(f64::INFINITY, f64::min))
    }

    /// The 1-based physical port on `a` that faces neighbor `b`. Ports
    /// are numbered by ascending neighbor index, so the mapping is
    /// deterministic for a given topology — this is what the PolKA
    /// resolver encodes into routeIDs. Port 0 is reserved for "deliver
    /// locally".
    pub fn neighbor_port(&self, a: NodeIdx, b: NodeIdx) -> Option<u16> {
        let r = self.port_range(a, b);
        if r.is_empty() {
            None
        } else {
            Some((r.start + 1) as u16)
        }
    }

    /// Inverse of [`Topology::neighbor_port`]: which neighbor a 1-based
    /// port faces. O(1) — direct index into the prebuilt port table.
    pub fn neighbor_by_port(&self, a: NodeIdx, port: u16) -> Option<NodeIdx> {
        if port == 0 {
            return None;
        }
        self.ports[a.0 as usize]
            .get(port as usize - 1)
            .map(|(n, _)| *n)
    }

    /// Number of links incident to a node (counting parallel links and
    /// failed links — the physical port count).
    pub fn degree(&self, a: NodeIdx) -> usize {
        self.ports[a.0 as usize].len()
    }

    /// A node's `(neighbor, link)` pairs in ascending physical-port
    /// order (the same ordering [`Topology::neighbor_port`] numbers):
    /// entry `p` sits behind port `p + 1`. Includes failed links.
    pub fn neighbors(&self, a: NodeIdx) -> &[(NodeIdx, LinkId)] {
        &self.ports[a.0 as usize]
    }

    /// Maximum port number used anywhere in the topology (sizes the
    /// PolKA node-ID degree).
    pub fn max_port(&self) -> u16 {
        self.ports.iter().map(|n| n.len() as u16).max().unwrap_or(0)
    }

    /// Dijkstra shortest path by propagation delay. Returns `None` when
    /// disconnected. Failed links are skipped.
    pub fn shortest_path_by_delay(&self, src: NodeIdx, dst: NodeIdx) -> Option<Vec<NodeIdx>> {
        #[derive(PartialEq)]
        struct State {
            cost: f64,
            node: NodeIdx,
        }
        impl Eq for State {}
        impl Ord for State {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .cost
                    .total_cmp(&self.cost)
                    .then_with(|| other.node.0.cmp(&self.node.0))
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<NodeIdx>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src.0 as usize] = 0.0;
        heap.push(State {
            cost: 0.0,
            node: src,
        });
        while let Some(State { cost, node }) = heap.pop() {
            if node == dst {
                break;
            }
            if cost > dist[node.0 as usize] {
                continue;
            }
            for &(next, lid) in &self.adj[node.0 as usize] {
                let link = &self.links[lid.0 as usize];
                if !link.up {
                    continue;
                }
                let nd = cost + link.delay_ms;
                if nd < dist[next.0 as usize] {
                    dist[next.0 as usize] = nd;
                    prev[next.0 as usize] = Some(node);
                    heap.push(State {
                        cost: nd,
                        node: next,
                    });
                }
            }
        }
        if dist[dst.0 as usize].is_infinite() {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = prev[cur.0 as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Yen's algorithm: the `k` loop-free shortest paths by propagation
    /// delay, in increasing delay order. Used by the framework to
    /// discover candidate tunnels automatically on topologies where the
    /// operator has not pre-declared them (the paper's continent-wide
    /// future-work scenario).
    pub fn k_shortest_paths(&self, src: NodeIdx, dst: NodeIdx, k: usize) -> Vec<Vec<NodeIdx>> {
        let Some(first) = self.shortest_path_by_delay(src, dst) else {
            return Vec::new();
        };
        let mut confirmed: Vec<Vec<NodeIdx>> = vec![first];
        let mut candidates: Vec<(f64, Vec<NodeIdx>)> = Vec::new();
        while confirmed.len() < k {
            let last = confirmed.last().expect("non-empty").clone();
            // Spur from every node of the previous path.
            for spur_idx in 0..last.len() - 1 {
                let spur_node = last[spur_idx];
                let root = &last[..=spur_idx];
                // Temporarily remove edges that would recreate confirmed
                // paths sharing this root, and the root's interior nodes.
                let mut removed_links: Vec<LinkId> = Vec::new();
                let mut scratch = self.clone();
                for path in confirmed.iter() {
                    if path.len() > spur_idx + 1 && path[..=spur_idx] == *root {
                        if let Ok(lid) = scratch.link_between(path[spur_idx], path[spur_idx + 1]) {
                            scratch.link_mut(lid).up = false;
                            removed_links.push(lid);
                        }
                    }
                }
                for &n in &root[..spur_idx] {
                    // knock out all links of interior root nodes
                    let neighbors: Vec<(NodeIdx, LinkId)> = scratch.adj[n.0 as usize].clone();
                    for (_, lid) in neighbors {
                        scratch.link_mut(lid).up = false;
                    }
                }
                if let Some(spur) = scratch.shortest_path_by_delay(spur_node, dst) {
                    let mut total: Vec<NodeIdx> = root[..spur_idx].to_vec();
                    total.extend(spur);
                    // discard paths with repeated nodes (loops)
                    let mut seen = std::collections::HashSet::new();
                    if total.iter().all(|n| seen.insert(*n))
                        && !confirmed.contains(&total)
                        && !candidates.iter().any(|(_, p)| *p == total)
                    {
                        if let Ok(delay) = self.path_delay_ms(&total) {
                            candidates.push((delay, total));
                        }
                    }
                }
            }
            candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
            if candidates.is_empty() {
                break;
            }
            confirmed.push(candidates.remove(0).1);
        }
        confirmed
    }

    /// Up to `k` **link-disjoint** shortest paths by propagation delay,
    /// in increasing delay order: the shortest path is taken, its links
    /// removed, and the search repeated on the residual graph. Returns
    /// fewer than `k` paths when the cut between the endpoints is
    /// smaller.
    ///
    /// This is how the scenario engine provisions candidate tunnels:
    /// disjoint tunnels make the optimizer's
    /// bottleneck-per-tunnel capacity model sound (tunnels never steal
    /// each other's links, and one link failure never kills two
    /// tunnels) — matching the paper's hand-built testbed tunnels.
    pub fn k_disjoint_shortest_paths(
        &self,
        src: NodeIdx,
        dst: NodeIdx,
        k: usize,
    ) -> Vec<Vec<NodeIdx>> {
        let mut scratch = self.clone();
        let mut out = Vec::new();
        while out.len() < k {
            let Some(path) = scratch.shortest_path_by_delay(src, dst) else {
                break;
            };
            let Ok(links) = scratch.path_links(&path) else {
                break;
            };
            for lid in links {
                scratch.link_mut(lid).up = false;
            }
            out.push(path);
        }
        out
    }

    /// All simple paths from `src` to `dst` with at most `max_hops` links,
    /// in DFS order. Used to enumerate candidate tunnels.
    pub fn simple_paths(&self, src: NodeIdx, dst: NodeIdx, max_hops: usize) -> Vec<Vec<NodeIdx>> {
        let mut out = Vec::new();
        let mut stack = vec![src];
        let mut visited = vec![false; self.nodes.len()];
        visited[src.0 as usize] = true;
        self.dfs_paths(dst, max_hops, &mut stack, &mut visited, &mut out);
        out
    }

    fn dfs_paths(
        &self,
        dst: NodeIdx,
        max_hops: usize,
        stack: &mut Vec<NodeIdx>,
        visited: &mut Vec<bool>,
        out: &mut Vec<Vec<NodeIdx>>,
    ) {
        let cur = *stack.last().expect("non-empty stack");
        if cur == dst {
            out.push(stack.clone());
            return;
        }
        if stack.len() > max_hops {
            return;
        }
        // deterministic neighbor order
        let mut neighbors = self.adj[cur.0 as usize].clone();
        neighbors.sort_by_key(|(n, _)| n.0);
        for (next, lid) in neighbors {
            if visited[next.0 as usize] || !self.links[lid.0 as usize].up {
                continue;
            }
            visited[next.0 as usize] = true;
            stack.push(next);
            self.dfs_paths(dst, max_hops, stack, visited, out);
            stack.pop();
            visited[next.0 as usize] = false;
        }
    }
}

/// The emulated Global P4 Lab subset of Fig 9: five experiment routers
/// (MIA, CHI, CAL, SAO, AMS), two GÉANT-side routers that complete the
/// European ring (PAR, POZ), and the two measurement hosts.
///
/// Capacities and delays follow the paper's Experiment 2 setup: "we
/// restricted the bandwidths of the links: MIA-SAO, SAO-AMS, and CHI-AMS
/// to 20 Mbps, MIA-CHI to 10 Mbps, and MIA-CAL and CAL-CHI to 5 Mbps",
/// plus the 20 ms delay injected between MIA and SAO for Experiment 1.
pub fn global_p4_lab() -> Topology {
    let mut t = Topology::new();
    let host1 = t.add_node("host1", NodeKind::Host);
    let host2 = t.add_node("host2", NodeKind::Host);
    let mia = t.add_node("MIA", NodeKind::Edge);
    let ams = t.add_node("AMS", NodeKind::Edge);
    let chi = t.add_node("CHI", NodeKind::Core);
    let cal = t.add_node("CAL", NodeKind::Core);
    let sao = t.add_node("SAO", NodeKind::Core);
    let par = t.add_node("PAR", NodeKind::Core);
    let poz = t.add_node("POZ", NodeKind::Core);

    // host attachments (fast, negligible delay)
    t.add_link(host1, mia, 1000.0, 0.05);
    t.add_link(host2, ams, 1000.0, 0.05);
    // experiment links (Fig 9 / Sec V-C-2)
    t.add_link(mia, sao, 20.0, 20.0); // tc-injected 20 ms
    t.add_link(sao, ams, 20.0, 9.0);
    t.add_link(mia, chi, 10.0, 3.0);
    t.add_link(chi, ams, 20.0, 5.0);
    t.add_link(mia, cal, 5.0, 2.0);
    t.add_link(cal, chi, 5.0, 2.0);
    // European ring completion (not used by the experiments, but present
    // in the Global P4 Lab subset the VMs emulate)
    t.add_link(ams, par, 100.0, 4.0);
    t.add_link(par, poz, 100.0, 6.0);
    t.add_link(poz, ams, 100.0, 5.0);
    t
}

/// The 3-node illustration topology of Fig 2: source, intermediate,
/// destination, with a direct s-d link and an s-i-d detour.
pub fn simple3(capacity_mbps: f64) -> Topology {
    let mut t = Topology::new();
    let s = t.add_node("s", NodeKind::Edge);
    let i = t.add_node("i", NodeKind::Core);
    let d = t.add_node("d", NodeKind::Edge);
    t.add_link(s, d, capacity_mbps, 5.0);
    t.add_link(s, i, capacity_mbps, 3.0);
    t.add_link(i, d, capacity_mbps, 3.0);
    t
}

/// A deterministic random-ish mesh for scaling benches: `n` core nodes,
/// ring plus chords every `chord_stride`, uniform capacity/delay.
pub fn mesh(n: usize, chord_stride: usize, capacity_mbps: f64) -> Topology {
    let mut t = Topology::new();
    let nodes: Vec<NodeIdx> = (0..n)
        .map(|i| t.add_node(&format!("n{i}"), NodeKind::Core))
        .collect();
    for i in 0..n {
        t.add_link(nodes[i], nodes[(i + 1) % n], capacity_mbps, 1.0);
    }
    if chord_stride >= 2 {
        for i in (0..n).step_by(chord_stride) {
            let j = (i + n / 2) % n;
            if j != i && t.link_between(nodes[i], nodes[j]).is_err() {
                t.add_link(nodes[i], nodes[j], capacity_mbps, 1.0);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_topology_inventory() {
        let t = global_p4_lab();
        assert_eq!(t.node_count(), 9, "paper used 9 VMs");
        for name in ["host1", "host2", "MIA", "AMS", "CHI", "CAL", "SAO"] {
            assert!(t.node(name).is_ok(), "{name} must exist");
        }
        // Experiment 2 capacities
        let mia = t.node("MIA").unwrap();
        let sao = t.node("SAO").unwrap();
        let chi = t.node("CHI").unwrap();
        let cal = t.node("CAL").unwrap();
        assert_eq!(
            t.link(t.link_between(mia, sao).unwrap()).capacity_mbps,
            20.0
        );
        assert_eq!(
            t.link(t.link_between(mia, chi).unwrap()).capacity_mbps,
            10.0
        );
        assert_eq!(t.link(t.link_between(mia, cal).unwrap()).capacity_mbps, 5.0);
        // Experiment 1 delay
        assert_eq!(t.link(t.link_between(mia, sao).unwrap()).delay_ms, 20.0);
    }

    #[test]
    fn tunnel_paths_resolve() {
        let t = global_p4_lab();
        // The paper's three tunnels.
        for tunnel in [
            vec!["MIA", "SAO", "AMS"],
            vec!["MIA", "CHI", "AMS"],
            vec!["MIA", "CAL", "CHI", "AMS"],
        ] {
            let p = t.path_by_names(&tunnel).unwrap();
            assert_eq!(p.len(), tunnel.len());
        }
    }

    #[test]
    fn tunnel_capacities_match_paper() {
        let t = global_p4_lab();
        let t1 = t.path_by_names(&["MIA", "SAO", "AMS"]).unwrap();
        let t2 = t.path_by_names(&["MIA", "CHI", "AMS"]).unwrap();
        let t3 = t.path_by_names(&["MIA", "CAL", "CHI", "AMS"]).unwrap();
        assert_eq!(t.path_capacity_mbps(&t1).unwrap(), 20.0);
        assert_eq!(t.path_capacity_mbps(&t2).unwrap(), 10.0);
        assert_eq!(t.path_capacity_mbps(&t3).unwrap(), 5.0);
    }

    #[test]
    fn tunnel1_is_high_latency_tunnel2_low() {
        let t = global_p4_lab();
        let t1 = t.path_by_names(&["MIA", "SAO", "AMS"]).unwrap();
        let t2 = t.path_by_names(&["MIA", "CHI", "AMS"]).unwrap();
        let d1 = t.path_delay_ms(&t1).unwrap();
        let d2 = t.path_delay_ms(&t2).unwrap();
        assert!(d1 > 3.0 * d2, "tunnel1 {d1}ms vs tunnel2 {d2}ms");
    }

    #[test]
    fn dijkstra_finds_low_delay_route() {
        let t = global_p4_lab();
        let mia = t.node("MIA").unwrap();
        let ams = t.node("AMS").unwrap();
        let p = t.shortest_path_by_delay(mia, ams).unwrap();
        // MIA-CHI-AMS (8 ms) beats MIA-SAO-AMS (29 ms) and the CAL detour.
        let names: Vec<&str> = p.iter().map(|&i| t.node_name(i)).collect();
        assert_eq!(names, vec!["MIA", "CHI", "AMS"]);
    }

    #[test]
    fn dijkstra_reroutes_around_failure() {
        let mut t = global_p4_lab();
        let mia = t.node("MIA").unwrap();
        let chi = t.node("CHI").unwrap();
        let ams = t.node("AMS").unwrap();
        let lid = t.link_between(mia, chi).unwrap();
        t.link_mut(lid).up = false;
        let p = t.shortest_path_by_delay(mia, ams).unwrap();
        let names: Vec<&str> = p.iter().map(|&i| t.node_name(i)).collect();
        assert_ne!(names[1], "CHI", "failed link must be avoided: {names:?}");
    }

    #[test]
    fn disconnected_returns_none() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::Host);
        assert!(t.shortest_path_by_delay(a, b).is_none());
    }

    #[test]
    fn k_shortest_orders_the_experiment_tunnels() {
        let t = global_p4_lab();
        let mia = t.node("MIA").unwrap();
        let ams = t.node("AMS").unwrap();
        let paths = t.k_shortest_paths(mia, ams, 3);
        assert_eq!(paths.len(), 3);
        let names: Vec<Vec<&str>> = paths
            .iter()
            .map(|p| p.iter().map(|&i| t.node_name(i)).collect())
            .collect();
        // Increasing delay: CHI (8 ms) < CAL-CHI (9 ms) < SAO (29 ms).
        assert_eq!(names[0], vec!["MIA", "CHI", "AMS"]);
        assert_eq!(names[1], vec!["MIA", "CAL", "CHI", "AMS"]);
        assert_eq!(names[2], vec!["MIA", "SAO", "AMS"]);
        // Delays strictly increase.
        let d: Vec<f64> = paths.iter().map(|p| t.path_delay_ms(p).unwrap()).collect();
        assert!(d.windows(2).all(|w| w[0] <= w[1]), "{d:?}");
    }

    #[test]
    fn k_shortest_paths_are_loop_free_and_distinct() {
        let t = mesh(12, 3, 10.0);
        let paths = t.k_shortest_paths(NodeIdx(0), NodeIdx(6), 5);
        assert!(!paths.is_empty());
        for (i, p) in paths.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            assert!(p.iter().all(|n| seen.insert(*n)), "loop in {p:?}");
            for q in paths.iter().skip(i + 1) {
                assert_ne!(p, q, "duplicate path");
            }
        }
    }

    #[test]
    fn k_shortest_on_disconnected_is_empty() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::Host);
        assert!(t.k_shortest_paths(a, b, 3).is_empty());
    }

    #[test]
    fn disjoint_paths_share_no_links_and_order_by_delay() {
        let t = global_p4_lab();
        let mia = t.node("MIA").unwrap();
        let ams = t.node("AMS").unwrap();
        let paths = t.k_disjoint_shortest_paths(mia, ams, 3);
        // The CAL detour shares MIA-CHI/CHI-AMS with the shortest path,
        // so only two disjoint MIA->AMS paths exist.
        assert_eq!(paths.len(), 2);
        let mut used = std::collections::HashSet::new();
        for p in &paths {
            for l in t.path_links(p).unwrap() {
                assert!(used.insert(l), "link {l:?} reused across paths");
            }
        }
        let d: Vec<f64> = paths.iter().map(|p| t.path_delay_ms(p).unwrap()).collect();
        assert!(d.windows(2).all(|w| w[0] <= w[1]), "{d:?}");
        // Asking for more than the cut yields the cut.
        assert_eq!(t.k_disjoint_shortest_paths(mia, ams, 10).len(), 2);
        // Original topology untouched (scratch copy).
        assert!(t.links().iter().all(|l| l.up));
    }

    #[test]
    fn simple_paths_enumerates_tunnels() {
        let t = global_p4_lab();
        let mia = t.node("MIA").unwrap();
        let ams = t.node("AMS").unwrap();
        let paths = t.simple_paths(mia, ams, 4);
        // Must include all three experiment tunnels.
        let as_names: Vec<Vec<&str>> = paths
            .iter()
            .map(|p| p.iter().map(|&i| t.node_name(i)).collect())
            .collect();
        assert!(as_names.contains(&vec!["MIA", "SAO", "AMS"]));
        assert!(as_names.contains(&vec!["MIA", "CHI", "AMS"]));
        assert!(as_names.contains(&vec!["MIA", "CAL", "CHI", "AMS"]));
    }

    #[test]
    fn path_validation_rejects_non_adjacent() {
        let t = global_p4_lab();
        assert!(t.path_by_names(&["MIA", "AMS"]).is_err()); // no direct link
        assert!(t.path_by_names(&["MIA"]).is_err());
        assert!(t.path_by_names(&["MIA", "NOPE"]).is_err());
    }

    #[test]
    fn simple3_matches_fig2() {
        let t = simple3(10.0);
        let s = t.node("s").unwrap();
        let d = t.node("d").unwrap();
        let paths = t.simple_paths(s, d, 3);
        assert_eq!(paths.len(), 2, "direct and via-i");
    }

    #[test]
    fn mesh_scales() {
        let t = mesh(50, 5, 10.0);
        assert_eq!(t.node_count(), 50);
        assert!(t.link_count() >= 50);
        let p = t.shortest_path_by_delay(NodeIdx(0), NodeIdx(25));
        assert!(p.is_some());
    }

    #[test]
    fn port_index_matches_sorted_adjacency_reference() {
        // The prebuilt port table must reproduce the reference numbering:
        // stable-sort the adjacency list by neighbor index, position p is
        // port p + 1.
        let t = mesh(40, 3, 10.0);
        for a in 0..t.node_count() {
            let a = NodeIdx(a as u32);
            let mut reference: Vec<NodeIdx> = t.adj[a.0 as usize].iter().map(|(n, _)| *n).collect();
            reference.sort_by_key(|n| n.0);
            assert_eq!(t.degree(a), reference.len());
            for (p, n) in reference.iter().enumerate() {
                assert_eq!(t.neighbor_by_port(a, (p + 1) as u16), Some(*n));
            }
            for &(n, lid) in t.neighbors(a) {
                let port = t.neighbor_port(a, n).unwrap();
                assert_eq!(t.neighbor_by_port(a, port), Some(n));
                let l = t.link(t.link_between(a, n).unwrap());
                assert!(l.a == a && l.b == n || l.a == n && l.b == a);
                let l = t.link(lid);
                assert!(l.a == a && l.b == n || l.a == n && l.b == a);
            }
            assert_eq!(t.neighbor_by_port(a, 0), None);
            assert_eq!(t.neighbor_by_port(a, (reference.len() + 1) as u16), None);
        }
    }

    #[test]
    fn link_between_skips_failed_but_finds_parallel() {
        // Two parallel links a-b: failing the first must make
        // link_between fall through to the second, in insertion order.
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Core);
        let b = t.add_node("b", NodeKind::Core);
        let c = t.add_node("c", NodeKind::Core);
        let l1 = t.add_link(a, b, 10.0, 1.0);
        let l2 = t.add_link(a, b, 20.0, 2.0);
        t.add_link(a, c, 5.0, 1.0);
        assert_eq!(t.link_between(a, b).unwrap(), l1);
        t.link_mut(l1).up = false;
        assert_eq!(t.link_between(a, b).unwrap(), l2);
        t.link_mut(l2).up = false;
        assert!(t.link_between(a, b).is_err());
        // Ports stay physical: both parallel links keep their ports and
        // the degree counts failed links.
        assert_eq!(t.degree(a), 3);
        assert_eq!(t.neighbor_port(a, b), Some(1));
        assert_eq!(t.neighbor_port(a, c), Some(3));
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_panic() {
        let mut t = Topology::new();
        t.add_node("x", NodeKind::Host);
        t.add_node("x", NodeKind::Host);
    }
}
