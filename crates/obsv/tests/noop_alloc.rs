//! Pins the disabled-path contract: a `Tracer::off()` facade emits
//! nothing and allocates nothing, no matter how hot the call site.
//!
//! This is its own integration-test binary so it can install a
//! counting global allocator without affecting any other test. The
//! counter is thread-local (const-init TLS, so counting itself never
//! allocates): harness threads allocating concurrently must not bleed
//! into the measurement.

use obsv::{Tracer, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: TLS is unavailable during thread teardown; those
    // allocations are not ours to count.
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn my_allocs() -> u64 {
    TL_ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracer_emits_nothing_and_allocates_nothing() {
    // Emission check first (this part allocates its sink freely).
    let sink = obsv::RecordingSink::shared();
    let on = Tracer::to(sink.clone());
    let off = Tracer::off();
    off.instant("c", "n", 1, Vec::new);
    let s = off.span("c", "s", 2);
    s.end(3, Vec::new);
    off.counter("c", "k", 4, 5);
    assert!(sink.is_empty(), "the off tracer fed no sink");
    on.instant("c", "n", 1, Vec::new);
    assert_eq!(sink.len(), 1);

    // Now the allocation-free contract on this thread only.
    let t = Tracer::off();
    assert!(!t.enabled());

    let before = my_allocs();
    for i in 0..10_000u64 {
        t.instant("sim", "sim.event", i, || {
            vec![("i", Value::U64(i)), ("tag", Value::Str(i.to_string()))]
        });
        let span = t.span("decide", "decide.forecast", i);
        span.end(i + 1, || vec![("paths", Value::U64(8))]);
        t.counter("sim", "sim.queue_depth", i, i);
    }
    let after = my_allocs();
    assert_eq!(
        after - before,
        0,
        "disabled tracing must not allocate (arg closures must not run)"
    );
}
