//! Deterministic metrics: counters, gauges, fixed-bucket histograms,
//! and a registry with sorted, bit-replayable snapshots.
//!
//! Instruments are `Arc`-shared atomics — a component keeps a cheap
//! clone for its hot path while the registry retains another for
//! snapshotting. All updates are `Relaxed`: instruments are
//! monotone-ish telemetry, never synchronization.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A last-value-wins gauge (f64 stored as bits).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A fixed-bucket histogram. Bucket `i` counts observations `v <=
/// bounds[i]`; one implicit overflow bucket counts the rest. Bounds
/// are fixed at construction — no dynamic rebinning, so two runs bin
/// identically.
#[derive(Clone)]
pub struct Histogram {
    bounds: Arc<[f64]>,
    counts: Arc<[AtomicU64]>,
}

impl Histogram {
    /// Builds a histogram over `bounds` (must be sorted ascending).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts: Vec<AtomicU64> = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.into(),
            counts: counts.into(),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is
    /// overflow).
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.bounds)
            .field("counts", &self.counts())
            .finish()
    }
}

#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The value of one instrument at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram `(bound, count)` rows plus the overflow count keyed
    /// under `f64::INFINITY`.
    Histogram(Vec<(f64, u64)>),
}

impl SnapshotValue {
    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            SnapshotValue::Counter(v) => Some(*v),
            _ => None,
        }
    }
}

/// A point-in-time, name-sorted view of every registered instrument.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` rows in ascending name order.
    pub entries: Vec<(String, SnapshotValue)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        self.get(name)
            .and_then(SnapshotValue::as_counter)
            .unwrap_or(0)
    }

    /// Looks up any instrument by name.
    pub fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter-wise difference `self - earlier` (gauges and histograms
    /// keep `self`'s value). Used for per-epoch deltas.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, v)| {
                let v = match v {
                    SnapshotValue::Counter(now) => {
                        SnapshotValue::Counter(now.saturating_sub(earlier.counter(name)))
                    }
                    other => other.clone(),
                };
                (name.clone(), v)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// A shared registry of named instruments. Get-or-create semantics:
/// asking twice for the same name yields handles on the same atomic.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Instrument>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} instruments)", self.lock().len())
    }
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Instrument>> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Gets or creates a counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter::default()))
        {
            Instrument::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a counter"),
        }
    }

    /// Adopts an existing counter under `name`, so a component's
    /// already-live instrument becomes visible to snapshots. Replaces
    /// any previous registration of the name.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        self.lock()
            .insert(name.to_string(), Instrument::Counter(counter.clone()));
    }

    /// Gets or creates a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge::default()))
        {
            Instrument::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a gauge"),
        }
    }

    /// Gets or creates a fixed-bucket histogram. Bounds are taken from
    /// the first registration.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram::new(bounds)))
        {
            Instrument::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a histogram"),
        }
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A name-sorted snapshot of every instrument. `BTreeMap` order is
    /// the sort; byte-identical across runs that updated instruments
    /// identically.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self
            .lock()
            .iter()
            .map(|(name, inst)| {
                let v = match inst {
                    Instrument::Counter(c) => SnapshotValue::Counter(c.get()),
                    Instrument::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Instrument::Histogram(h) => {
                        let mut rows: Vec<(f64, u64)> =
                            h.bounds().iter().copied().zip(h.counts()).collect();
                        rows.push((f64::INFINITY, *h.counts().last().unwrap_or(&0)));
                        SnapshotValue::Histogram(rows)
                    }
                };
                (name.clone(), v)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_clones_and_names() {
        let reg = Registry::default();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("x.hits"), 5);
    }

    #[test]
    fn adopt_counter_exposes_a_live_instrument() {
        let reg = Registry::default();
        let c = Counter::default();
        c.add(3);
        reg.adopt_counter("pre.existing", &c);
        assert_eq!(reg.snapshot().counter("pre.existing"), 3);
        c.inc();
        assert_eq!(reg.snapshot().counter("pre.existing"), 4);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let reg = Registry::default();
        let g = reg.gauge("depth");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        assert_eq!(
            reg.snapshot().get("depth"),
            Some(&SnapshotValue::Gauge(2.5))
        );
    }

    #[test]
    fn histogram_bins_deterministically_with_overflow() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 3.0, 50.0, 1e6] {
            h.observe(v);
        }
        assert_eq!(h.counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn snapshot_is_name_sorted_and_delta_subtracts_counters() {
        let reg = Registry::default();
        reg.counter("b").add(10);
        reg.counter("a").add(1);
        let before = reg.snapshot();
        let names: Vec<&str> = before.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        reg.counter("b").add(5);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.counter("a"), 0);
        assert_eq!(d.counter("b"), 5);
    }
}
