//! The tracing facade: sim-time spans and instant events.
//!
//! Design constraints, in priority order:
//!
//! - **Determinism.** Records carry a caller-supplied simulation-time
//!   stamp (`at_ns`); this module never reads a clock. Given the same
//!   seed and config, the record stream is byte-identical.
//! - **Zero cost when off.** [`Tracer`] is an `Option<Arc<dyn
//!   TraceSink>>`; every entry point is `#[inline]` and returns before
//!   touching its lazily-evaluated argument closure when the sink is
//!   `None`. No allocation, no atomic, no branch beyond the `Option`
//!   check.
//! - **No allocation for names.** Span/event names and categories are
//!   `&'static str`; dynamic detail goes in args, built only when a
//!   sink is attached.

use std::fmt;
use std::sync::{Arc, Mutex};

/// Simulation-time nanoseconds. The sim core runs in ms (×1e6 to get
/// here); the packet plane is already ns-native.
pub type SimNs = u64;

/// A dynamic argument value on a record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter-like value.
    U64(u64),
    /// Signed value.
    I64(i64),
    /// Floating-point value (formatted via Rust's shortest-roundtrip
    /// `Display`, which is deterministic).
    F64(f64),
    /// Owned string detail (flow names, tunnel labels).
    Str(String),
}

/// What a record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Span open.
    Begin,
    /// Span close (matches the most recent unclosed `Begin` of the
    /// same name — spans are emitted from structured code, so pairing
    /// is lexical).
    End,
    /// A point event.
    Instant,
    /// A sampled counter value (renders as a counter track in
    /// Perfetto).
    Counter,
}

impl RecordKind {
    /// The Chrome trace-event phase letter.
    pub fn phase(self) -> char {
        match self {
            RecordKind::Begin => 'B',
            RecordKind::End => 'E',
            RecordKind::Instant => 'i',
            RecordKind::Counter => 'C',
        }
    }
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time stamp.
    pub at_ns: SimNs,
    /// Record kind.
    pub kind: RecordKind,
    /// Category (e.g. `"decide"`, `"sim"`, `"packet"`, `"runner"`).
    pub cat: &'static str,
    /// Event name (e.g. `"decide.forecast"`).
    pub name: &'static str,
    /// Dynamic arguments, in caller order.
    pub args: Vec<(&'static str, Value)>,
}

/// Where records go. Sinks must tolerate being called from the hot
/// path: implementations buffer; exporting happens after the run.
pub trait TraceSink: Send + Sync {
    /// Accept one record.
    fn emit(&self, rec: TraceRecord);
}

/// The tracing facade handed to instrumented components. `Tracer::off`
/// (also `Default`) is the no-op: a `None` sink, checked inline.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Tracer {
    /// The disabled tracer. All calls are inlined no-ops.
    pub fn off() -> Self {
        Tracer { sink: None }
    }

    /// A tracer feeding `sink`.
    pub fn to(sink: Arc<dyn TraceSink>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Whether a sink is attached. Use to gate arg computation that
    /// cannot be expressed as a closure (e.g. diffing counters around
    /// a call).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an instant event. `args` runs only when enabled.
    #[inline]
    pub fn instant(
        &self,
        cat: &'static str,
        name: &'static str,
        at_ns: SimNs,
        args: impl FnOnce() -> Vec<(&'static str, Value)>,
    ) {
        if let Some(sink) = &self.sink {
            sink.emit(TraceRecord {
                at_ns,
                kind: RecordKind::Instant,
                cat,
                name,
                args: args(),
            });
        }
    }

    /// Emits a counter sample (a value track in Perfetto).
    #[inline]
    pub fn counter(&self, cat: &'static str, name: &'static str, at_ns: SimNs, value: u64) {
        if let Some(sink) = &self.sink {
            sink.emit(TraceRecord {
                at_ns,
                kind: RecordKind::Counter,
                cat,
                name,
                args: vec![("value", Value::U64(value))],
            });
        }
    }

    /// Opens a span at `at_ns`. Close it with [`Span::end`], passing
    /// the (possibly later) sim time; sim time often does not advance
    /// while the controller thinks, so zero-length spans are normal
    /// and valid trace-event JSON.
    #[inline]
    pub fn span(&self, cat: &'static str, name: &'static str, at_ns: SimNs) -> Span {
        if let Some(sink) = &self.sink {
            sink.emit(TraceRecord {
                at_ns,
                kind: RecordKind::Begin,
                cat,
                name,
                args: Vec::new(),
            });
            Span {
                sink: Some(Arc::clone(sink)),
                cat,
                name,
            }
        } else {
            Span {
                sink: None,
                cat,
                name,
            }
        }
    }
}

/// An open span. Explicitly ended (an end needs a sim-time stamp, so
/// `Drop` cannot supply one); dropping without `end` leaks the open
/// `Begin`, which exporters tolerate.
#[must_use = "end the span with `.end(at_ns, ..)` so the trace pairs up"]
pub struct Span {
    sink: Option<Arc<dyn TraceSink>>,
    cat: &'static str,
    name: &'static str,
}

impl Span {
    /// Closes the span at `at_ns`. `args` runs only when enabled and
    /// lands on the `End` record.
    #[inline]
    pub fn end(self, at_ns: SimNs, args: impl FnOnce() -> Vec<(&'static str, Value)>) {
        if let Some(sink) = &self.sink {
            sink.emit(TraceRecord {
                at_ns,
                kind: RecordKind::End,
                cat: self.cat,
                name: self.name,
                args: args(),
            });
        }
    }
}

/// A shared simulation-time cell for instrumenting components that do
/// not own a clock (the ML pipeline, the forecast cache): the layer
/// that *does* know sim time stores it here before handing control
/// down, and the instrumented callee stamps its spans from the cell.
/// Reads and writes are relaxed atomics — the value only ever moves
/// between deterministic points of a single logical control flow, so
/// stamped records stay bit-replayable.
#[derive(Clone, Debug, Default)]
pub struct SimClock(Arc<std::sync::atomic::AtomicU64>);

impl SimClock {
    /// A clock reading 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Stores the current simulation time.
    #[inline]
    pub fn set(&self, at_ns: SimNs) {
        self.0.store(at_ns, std::sync::atomic::Ordering::Relaxed);
    }

    /// The last stored simulation time.
    #[inline]
    pub fn get(&self) -> SimNs {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A sink that buffers every record in memory, in emission order.
#[derive(Default)]
pub struct RecordingSink {
    records: Mutex<Vec<TraceRecord>>,
}

impl RecordingSink {
    /// A fresh, shareable recorder.
    pub fn shared() -> Arc<Self> {
        Arc::new(RecordingSink::default())
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A copy of the buffered records.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.lock().clone()
    }

    /// Drains the buffer.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TraceRecord>> {
        // A poisoned buffer is still a valid buffer: recover it.
        self.records
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl TraceSink for RecordingSink {
    fn emit(&self, rec: TraceRecord) {
        self.lock().push(rec);
    }
}

/// Duplicates records to several sinks (e.g. full recording + flight
/// recorder).
pub struct Fanout(pub Vec<Arc<dyn TraceSink>>);

impl TraceSink for Fanout {
    fn emit(&self, rec: TraceRecord) {
        if let Some((last, rest)) = self.0.split_last() {
            for s in rest {
                s.emit(rec.clone());
            }
            last.emit(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(recs: &[TraceRecord], i: usize) -> &TraceRecord {
        &recs[i]
    }

    #[test]
    fn off_tracer_emits_nothing_and_skips_arg_closures() {
        let t = Tracer::off();
        assert!(!t.enabled());
        let mut ran = false;
        t.instant("c", "n", 1, || {
            ran = true;
            vec![]
        });
        let span = t.span("c", "s", 2);
        span.end(3, || {
            ran = true;
            vec![]
        });
        assert!(!ran, "arg closures must not run when disabled");
    }

    #[test]
    fn records_arrive_in_order_with_stamps() {
        let sink = RecordingSink::shared();
        let t = Tracer::to(sink.clone());
        assert!(t.enabled());
        let s = t.span("sim", "sim.dispatch", 1_000);
        t.instant("sim", "sim.full_recompute", 1_000, || {
            vec![("why", Value::Str("audit".into()))]
        });
        s.end(1_000, || vec![("events", Value::U64(3))]);
        t.counter("sim", "sim.queue_depth", 2_000, 7);

        let recs = sink.snapshot();
        assert_eq!(recs.len(), 4);
        assert_eq!(
            (at(&recs, 0).kind, at(&recs, 0).name, at(&recs, 0).at_ns),
            (RecordKind::Begin, "sim.dispatch", 1_000)
        );
        assert_eq!(at(&recs, 1).kind, RecordKind::Instant);
        assert_eq!(at(&recs, 2).args, vec![("events", Value::U64(3))]);
        assert_eq!(
            (at(&recs, 3).kind, at(&recs, 3).at_ns),
            (RecordKind::Counter, 2_000)
        );
    }

    #[test]
    fn fanout_duplicates_to_every_sink() {
        let a = RecordingSink::shared();
        let b = RecordingSink::shared();
        let t = Tracer::to(Arc::new(Fanout(vec![a.clone(), b.clone()])));
        t.instant("c", "n", 5, Vec::new);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn record_kind_phases_match_trace_event_spec() {
        assert_eq!(RecordKind::Begin.phase(), 'B');
        assert_eq!(RecordKind::End.phase(), 'E');
        assert_eq!(RecordKind::Instant.phase(), 'i');
        assert_eq!(RecordKind::Counter.phase(), 'C');
    }
}
