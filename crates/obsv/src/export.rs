//! Trace exporters: JSONL and Chrome trace-event JSON, plus a tiny
//! JSON parser used to validate emitted artifacts in CI.
//!
//! All formatting is deterministic: args render in emission order,
//! floats via Rust's shortest-roundtrip `Display`, names escaped with
//! a fixed table. Byte-identical records ⇒ byte-identical output.

use crate::trace::{RecordKind, TraceRecord, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            // JSON has no NaN/Infinity; stringify the rare oddball.
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                let _ = write!(out, "\"{x}\"");
            }
        }
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

fn args_into(out: &mut String, args: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        value_into(out, v);
    }
    out.push('}');
}

/// Renders records as JSONL: one deterministic JSON object per line.
///
/// ```text
/// {"at_ns":1000000,"ph":"B","cat":"sim","name":"sim.dispatch","args":{}}
/// ```
pub fn jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 80);
    for r in records {
        let _ = write!(
            out,
            "{{\"at_ns\":{},\"ph\":\"{}\",\"cat\":\"{}\",\"name\":\"",
            r.at_ns,
            r.kind.phase(),
            r.cat
        );
        escape_into(&mut out, r.name);
        out.push_str("\",\"args\":");
        args_into(&mut out, &r.args);
        out.push_str("}\n");
    }
    out
}

/// Renders records as Chrome trace-event JSON (the object form, with a
/// `traceEvents` array), loadable in Perfetto / `chrome://tracing`.
/// `ts` is microseconds with ns precision kept as a fraction.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 120 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":1,\"cat\":\"{}\",\"name\":\"",
            r.kind.phase(),
            r.at_ns / 1_000,
            r.at_ns % 1_000,
            r.cat
        );
        escape_into(&mut out, r.name);
        out.push('"');
        // Instant events need a scope; counters carry their value in
        // args like everything else.
        if r.kind == RecordKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":");
        args_into(&mut out, &r.args);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// A parsed JSON value — just enough structure for artifact
/// validation (no numbers-as-anything-but-f64, no serde).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted by key; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage. Errors
/// carry a byte offset. This exists so `repro trace` / CI can assert
/// "the Chrome trace is valid trace-event JSON" without serde.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are not expected in our own
                            // output; map them to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{RecordingSink, TraceSink, Tracer};
    use std::sync::Arc;

    fn sample() -> Vec<TraceRecord> {
        let sink = RecordingSink::shared();
        let t = Tracer::to(sink.clone() as Arc<dyn TraceSink>);
        let s = t.span("decide", "decide.forecast", 1_000_000);
        s.end(1_000_000, || {
            vec![
                ("paths", Value::U64(8)),
                ("hit_rate", Value::F64(0.75)),
                ("pair", Value::Str("p0\"x".into())),
            ]
        });
        t.instant("packet", "packet.drop", 2_500_500, || {
            vec![("reason", Value::Str("queue_full".into()))]
        });
        t.counter("sim", "sim.queue_depth", 3_000_000, 42);
        sink.take()
    }

    #[test]
    fn jsonl_lines_are_parseable_and_stable() {
        let recs = sample();
        let text = jsonl(&recs);
        assert_eq!(text, jsonl(&recs), "formatting is a pure function");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v = parse_json(line).expect("every JSONL line parses");
            assert!(v.get("at_ns").is_some());
            assert!(v.get("ph").is_some());
        }
        assert!(lines[0].contains("\"name\":\"decide.forecast\""));
        assert!(lines[1].contains("\\\"x"), "quotes are escaped");
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let recs = sample();
        let text = chrome_trace(&recs);
        let v = parse_json(&text).expect("chrome trace parses");
        let events = v
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 4);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(phases, ["B", "E", "i", "C"]);
        // ts is µs: 1_000_000 ns -> 1000.000 µs.
        assert_eq!(events[0].get("ts"), Some(&Json::Num(1000.0)));
        assert_eq!(
            events[2].get("s").and_then(Json::as_str),
            Some("t"),
            "instants carry a scope"
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("{\"a\"}").is_err());
        assert!(parse_json("nul").is_err());
        assert_eq!(parse_json(" null ").unwrap(), Json::Null);
        assert_eq!(
            parse_json("{\"k\":[1,-2.5e1,\"s\\u0041\"]}")
                .unwrap()
                .get("k"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-25.0),
                Json::Str("sA".into())
            ]))
        );
    }

    #[test]
    fn non_finite_floats_are_stringified() {
        let recs = vec![TraceRecord {
            at_ns: 0,
            kind: RecordKind::Instant,
            cat: "t",
            name: "x",
            args: vec![("v", Value::F64(f64::NAN))],
        }];
        let line = jsonl(&recs);
        parse_json(line.trim()).expect("NaN must not break JSON");
    }
}
