//! Deterministic sim-time observability for the control loop.
//!
//! Three pillars, all dependency-free and all stamped in **simulation
//! nanoseconds** (never wall-clock, so the workspace determinism
//! contract holds by construction):
//!
//! 1. **Structured tracing** ([`Tracer`], [`TraceSink`]) — spans and
//!    instant events with `&'static str` names and lazily-built
//!    arguments. The disabled tracer is a `None` sink: every call is an
//!    inlined branch that emits nothing and allocates nothing.
//! 2. **Metrics** ([`Registry`], [`Counter`], [`Gauge`],
//!    [`Histogram`]) — deterministic instruments with sorted,
//!    bit-replayable [`Registry::snapshot`]s. The hand-rolled stats
//!    structs that used to live in `netsim::fairness` and
//!    `framework::hecate` are now thin snapshots over these counters.
//! 3. **Exporters + flight recorder** ([`export`], [`FlightRecorder`])
//!    — JSONL and Chrome trace-event (Perfetto-loadable) writers, plus
//!    a bounded ring of the most recent records for post-mortem dumps
//!    on SLO violations and panics.
//!
//! A separate opt-in wall-clock profiling sink lives behind the
//! `profiling` cargo feature (bench-only; see [`profile`]).
//!
//! Two runs of the same scenario with the same seed produce
//! byte-identical JSONL traces — traces are testable artifacts, pinned
//! by proptests in `crates/scenarios`.

pub mod export;
mod flight;
mod metrics;
#[cfg(feature = "profiling")]
pub mod profile;
mod trace;

pub use flight::{install_panic_dump, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry, SnapshotValue};
pub use trace::{
    Fanout, RecordKind, RecordingSink, SimClock, SimNs, Span, TraceRecord, TraceSink, Tracer, Value,
};

/// The observability bundle a component is handed: a tracer plus a
/// metrics registry. Cloning is cheap (two `Arc` handles); the default
/// is fully off — a no-op tracer and an empty registry.
#[derive(Debug, Clone, Default)]
pub struct Obsv {
    /// Structured trace facade (may be off).
    pub tracer: Tracer,
    /// Shared instrument registry.
    pub metrics: Registry,
}

impl Obsv {
    /// A disabled bundle: no-op tracer, fresh registry. Metrics are
    /// still live (they are cheap atomics); only tracing is gated.
    pub fn off() -> Self {
        Obsv::default()
    }

    /// A bundle tracing into `sink`.
    pub fn to(sink: std::sync::Arc<dyn TraceSink>) -> Self {
        Obsv {
            tracer: Tracer::to(sink),
            metrics: Registry::default(),
        }
    }
}
