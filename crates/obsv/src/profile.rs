//! Opt-in **wall-clock** profiling sink (cargo feature `profiling`).
//!
//! Everything else in this crate is sim-time-native; this sink is the
//! one deliberate exception. It pairs `Begin`/`End` records by name on
//! a stack and accumulates *wall* nanoseconds per span name, so bench
//! harnesses (`repro sim`) can answer "where does the wall time go —
//! water-fill or event dispatch?". It is bench-only by construction:
//! the feature is enabled solely by `crates/bench`, and the sink is
//! attached only when a harness explicitly asks for a profile.
//!
//! Sim-time records pass through untouched — attaching this sink in a
//! [`crate::Fanout`] never perturbs the deterministic trace artifacts.

#![allow(clippy::disallowed_methods)] // Instant::now is the point here; bench-only.

use crate::trace::{RecordKind, TraceRecord, TraceSink};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

#[derive(Default)]
struct State {
    /// Open spans: (name, wall start). Pairing is lexical — spans come
    /// from structured code — so a name-matched pop from the top is
    /// enough.
    stack: Vec<(&'static str, Instant)>,
    totals: BTreeMap<&'static str, SpanTotal>,
}

/// Accumulated wall time for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanTotal {
    /// Completed spans.
    pub calls: u64,
    /// Total wall nanoseconds across those spans (inclusive of nested
    /// spans' time).
    pub wall_ns: u64,
}

impl SpanTotal {
    /// Total wall seconds.
    pub fn wall_s(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }
}

/// The profiling sink. Attach via [`crate::Fanout`] (or alone) and
/// read [`ProfilingSink::totals`] after the run.
#[derive(Default)]
pub struct ProfilingSink {
    state: Mutex<State>,
}

impl ProfilingSink {
    /// A fresh, shareable sink.
    pub fn shared() -> std::sync::Arc<Self> {
        std::sync::Arc::new(ProfilingSink::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Wall totals per span name, name-sorted.
    pub fn totals(&self) -> Vec<(&'static str, SpanTotal)> {
        self.lock().totals.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// The total for one span name.
    pub fn total(&self, name: &str) -> SpanTotal {
        self.lock().totals.get(name).copied().unwrap_or_default()
    }
}

impl TraceSink for ProfilingSink {
    fn emit(&self, rec: TraceRecord) {
        match rec.kind {
            RecordKind::Begin => {
                // detlint: allow(wall-clock) — this is the opt-in
                // profiling sink; wall time is a reported measurement,
                // never fed back into any decision or trace artifact.
                let now = Instant::now();
                self.lock().stack.push((rec.name, now));
            }
            RecordKind::End => {
                let mut st = self.lock();
                // Pop the nearest open span with this name; unmatched
                // Ends (span leaked across a panic) are ignored.
                if let Some(pos) = st.stack.iter().rposition(|(n, _)| *n == rec.name) {
                    let (name, start) = st.stack.remove(pos);
                    let wall_ns = start.elapsed().as_nanos() as u64;
                    let t = st.totals.entry(name).or_default();
                    t.calls += 1;
                    t.wall_ns += wall_ns;
                }
            }
            RecordKind::Instant | RecordKind::Counter => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn accumulates_wall_time_per_span_name() {
        let sink = ProfilingSink::shared();
        let t = Tracer::to(sink.clone());
        for i in 0..3u64 {
            let s = t.span("sim", "sim.dispatch", i);
            s.end(i, Vec::new);
        }
        let s = t.span("sim", "sim.waterfill", 10);
        s.end(10, Vec::new);
        let totals = sink.totals();
        let names: Vec<&str> = totals.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["sim.dispatch", "sim.waterfill"]);
        assert_eq!(sink.total("sim.dispatch").calls, 3);
        assert_eq!(sink.total("sim.waterfill").calls, 1);
        assert_eq!(sink.total("absent").calls, 0);
    }

    #[test]
    fn nested_spans_pair_by_name() {
        let sink = ProfilingSink::shared();
        let t = Tracer::to(sink.clone());
        let outer = t.span("r", "epoch", 0);
        let inner = t.span("r", "consult", 0);
        inner.end(0, Vec::new);
        outer.end(1, Vec::new);
        assert_eq!(sink.total("epoch").calls, 1);
        assert_eq!(sink.total("consult").calls, 1);
        assert!(sink.lock().stack.is_empty());
    }
}
