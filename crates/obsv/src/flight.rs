//! The flight recorder: a bounded ring of the most recent trace
//! records, dumped on SLO-violation epochs or panics. The ring is the
//! black box — always cheap enough to leave on, holding just enough
//! history to explain "what was the loop doing right before this".

use crate::export;
use crate::trace::{TraceRecord, TraceSink};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

struct Ring {
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

/// A bounded-ring [`TraceSink`]. Usually one arm of a
/// [`crate::Fanout`] next to a full [`crate::RecordingSink`], or the
/// sole sink when only post-mortems matter.
pub struct FlightRecorder {
    cap: usize,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` records (min 1).
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(FlightRecorder {
            cap: cap.max(1),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                dropped: 0,
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.ring
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records evicted so far (how much history scrolled off).
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// The retained records, oldest first. The ring keeps recording.
    pub fn dump(&self) -> Vec<TraceRecord> {
        self.lock().buf.iter().cloned().collect()
    }

    /// The retained records as JSONL, ready to write or print.
    pub fn dump_jsonl(&self) -> String {
        export::jsonl(&self.dump())
    }
}

impl TraceSink for FlightRecorder {
    fn emit(&self, rec: TraceRecord) {
        let mut ring = self.lock();
        if ring.buf.len() == self.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(rec);
    }
}

/// Installs a panic hook that dumps the flight recorder to stderr
/// (JSONL, prefixed with a marker line) before delegating to the
/// previous hook. Call once, from a binary (`repro`), not a library.
pub fn install_panic_dump(recorder: Arc<FlightRecorder>) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let dump = recorder.dump_jsonl();
        eprintln!(
            "--- obsv flight recorder ({} records, {} evicted) ---",
            dump.lines().count(),
            recorder.dropped()
        );
        eprint!("{dump}");
        eprintln!("--- end flight recorder ---");
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Tracer, Value};

    #[test]
    fn ring_keeps_only_the_most_recent_records() {
        let fr = FlightRecorder::new(3);
        let t = Tracer::to(fr.clone());
        for i in 0..5u64 {
            t.instant("c", "tick", i, || vec![("i", Value::U64(i))]);
        }
        let dump = fr.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let stamps: Vec<u64> = dump.iter().map(|r| r.at_ns).collect();
        assert_eq!(stamps, [2, 3, 4], "oldest records are evicted first");
        assert_eq!(fr.dump_jsonl().lines().count(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let fr = FlightRecorder::new(0);
        let t = Tracer::to(fr.clone());
        t.instant("c", "tick", 1, Vec::new);
        assert_eq!(fr.capacity(), 1);
        assert_eq!(fr.dump().len(), 1);
    }
}
