//! Generic bandwidth workload generators for the extension experiments
//! (lag-window sweeps, policy ablations, netsim trace-driven links).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Workload shapes beyond the UQ walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Flat mean with Gaussian noise.
    Constant {
        /// Mean level (Mbps).
        mean: f64,
        /// Noise standard deviation.
        std: f64,
    },
    /// Slow sinusoid (diurnal-style) plus noise.
    Diurnal {
        /// Baseline level.
        base: f64,
        /// Peak-to-baseline amplitude.
        amplitude: f64,
        /// Period in samples.
        period: f64,
        /// Noise standard deviation.
        std: f64,
    },
    /// Calm baseline with occasional multiplicative bursts.
    Bursty {
        /// Baseline level.
        base: f64,
        /// Burst multiplier.
        burst_gain: f64,
        /// Per-sample probability a burst starts.
        burst_prob: f64,
        /// Mean burst duration in samples.
        burst_len: usize,
    },
}

/// Generates `len` samples of the shape, deterministically from `seed`.
/// Values are clamped at zero.
pub fn generate(shape: Shape, len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let gauss = move |rng: &mut StdRng| {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    match shape {
        Shape::Constant { mean, std } => (0..len)
            .map(|_| (mean + std * gauss(&mut rng)).max(0.0))
            .collect(),
        Shape::Diurnal {
            base,
            amplitude,
            period,
            std,
        } => (0..len)
            .map(|t| {
                let s = base
                    + amplitude * (2.0 * std::f64::consts::PI * t as f64 / period).sin()
                    + std * gauss(&mut rng);
                s.max(0.0)
            })
            .collect(),
        Shape::Bursty {
            base,
            burst_gain,
            burst_prob,
            burst_len,
        } => {
            let mut out = Vec::with_capacity(len);
            let mut remaining = 0usize;
            for _ in 0..len {
                if remaining == 0 && rng.gen_range(0.0..1.0) < burst_prob {
                    remaining = 1 + rng.gen_range(0..burst_len.max(1) * 2);
                }
                let level = if remaining > 0 {
                    remaining -= 1;
                    base * burst_gain
                } else {
                    base
                };
                let jitter = 1.0 + 0.05 * gauss(&mut rng);
                out.push((level * jitter).max(0.0));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::stats::{mean, std_dev};

    #[test]
    fn constant_shape_statistics() {
        let s = generate(
            Shape::Constant {
                mean: 20.0,
                std: 2.0,
            },
            2000,
            1,
        );
        assert!((mean(&s) - 20.0).abs() < 0.5);
        assert!((std_dev(&s) - 2.0).abs() < 0.5);
    }

    #[test]
    fn diurnal_shape_oscillates() {
        let s = generate(
            Shape::Diurnal {
                base: 30.0,
                amplitude: 10.0,
                period: 100.0,
                std: 0.1,
            },
            200,
            2,
        );
        // Peak near t=25, trough near t=75.
        assert!(s[25] > s[75] + 10.0);
    }

    #[test]
    fn bursty_shape_has_two_levels() {
        let s = generate(
            Shape::Bursty {
                base: 5.0,
                burst_gain: 8.0,
                burst_prob: 0.05,
                burst_len: 10,
            },
            3000,
            3,
        );
        let high = s.iter().filter(|v| **v > 20.0).count();
        let low = s.iter().filter(|v| **v < 10.0).count();
        assert!(high > 50, "bursts present: {high}");
        assert!(low > 1000, "baseline dominates: {low}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(
            Shape::Constant {
                mean: 1.0,
                std: 0.5,
            },
            100,
            9,
        );
        let b = generate(
            Shape::Constant {
                mean: 1.0,
                std: 0.5,
            },
            100,
            9,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn values_never_negative() {
        let s = generate(
            Shape::Constant {
                mean: 0.5,
                std: 5.0,
            },
            1000,
            4,
        );
        assert!(s.iter().all(|v| *v >= 0.0));
    }
}
