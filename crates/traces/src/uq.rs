//! Synthetic UQ wireless dataset (Fig 5 substitution).
//!
//! Real 802.11/LTE iperf traces are not Gaussian wiggle: radios adapt
//! their modulation-and-coding scheme (MCS) to SNR, so measured
//! bandwidth hops between **discrete rate plateaus**, with occasional
//! deep fades and regime changes as the user moves. That quantized,
//! piecewise structure is exactly what makes tree ensembles shine in the
//! paper's Fig 6 while linear models blur across the steps.
//!
//! The generator is therefore a hidden-SNR model:
//!
//! 1. a latent SNR follows an AR(1) walk whose mean tracks the walk's
//!    regime (indoors → outdoors → arrival building, Fig 5a);
//! 2. the SNR is quantized onto a per-technology rate ladder
//!    (802.11n-like for WiFi, CQI-like for LTE);
//! 3. measured goodput is the plateau rate times a small measurement
//!    efficiency jitter, with occasional multi-step fades (obstruction,
//!    handover).
//!
//! Calibration targets Fig 5b: WiFi strong indoors (t < 100 s) and weak
//! outdoors; LTE complementary; WiFi variance ≫ LTE variance.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Generation parameters for the synthetic UQ traces.
#[derive(Debug, Clone)]
pub struct UqSpec {
    /// Number of 1 Hz samples (paper: 500 s).
    pub len: usize,
    /// Second at which the experimenter walks outdoors.
    pub outdoor_at: usize,
    /// Second at which the destination building is reached.
    pub arrival_at: usize,
    /// RNG seed (traces are fully deterministic given the seed).
    pub seed: u64,
}

impl Default for UqSpec {
    fn default() -> Self {
        UqSpec {
            len: 500,
            outdoor_at: 100,
            arrival_at: 420,
            seed: 2017, // the capture year, for flavour
        }
    }
}

/// The two-path wireless dataset.
#[derive(Debug, Clone)]
pub struct UqDataset {
    /// Path 1: WiFi bandwidth in Mbps, one sample per second.
    pub wifi: Vec<f64>,
    /// Path 2: LTE bandwidth in Mbps, one sample per second.
    pub lte: Vec<f64>,
}

impl UqDataset {
    /// Generates the dataset for a spec.
    pub fn generate(spec: &UqSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let wifi = gen_series(&mut rng, spec, &WIFI_PROFILE);
        let lte = gen_series(&mut rng, spec, &LTE_PROFILE);
        UqDataset { wifi, lte }
    }

    /// The default 500 s dataset used by the figure reproductions.
    pub fn default_dataset() -> Self {
        Self::generate(&UqSpec::default())
    }

    /// Series by paper path index (1 = WiFi, 2 = LTE).
    pub fn path(&self, index: usize) -> Option<&[f64]> {
        match index {
            1 => Some(&self.wifi),
            2 => Some(&self.lte),
            _ => None,
        }
    }
}

/// Per-technology radio profile.
struct Profile {
    /// Discrete rate ladder in Mbps (ascending), MCS/CQI style.
    ladder: &'static [f64],
    /// Mean ladder position (fractional index) indoors / outdoors / at
    /// the arrival building.
    idx_indoor: f64,
    idx_outdoor: f64,
    idx_arrival: f64,
    /// AR(1) coefficient of the latent SNR walk.
    ar: f64,
    /// Std of the SNR innovations, in ladder-index units.
    sigma: f64,
    /// Per-second probability a fade starts.
    fade_prob: f64,
    /// How many ladder steps a fade drops.
    fade_steps: f64,
    /// Mean fade duration in seconds (geometric).
    fade_mean_s: f64,
}

/// 802.11n-like single-stream rates.
const WIFI_LADDER: [f64; 8] = [6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0];
/// LTE CQI-like goodput steps for one UE.
const LTE_LADDER: [f64; 8] = [1.5, 3.0, 6.0, 9.0, 13.0, 18.0, 24.0, 30.0];

const WIFI_PROFILE: Profile = Profile {
    ladder: &WIFI_LADDER,
    idx_indoor: 6.3,
    idx_outdoor: 1.4,
    idx_arrival: 4.0,
    ar: 0.85,
    sigma: 0.5,
    // WiFi at walking speed fades hard and often (multipath,
    // obstructions), then snaps back to the pre-fade plateau: U-shaped
    // events a lag-window tree can learn but a linear model smears.
    fade_prob: 0.18,
    fade_steps: 4.5,
    fade_mean_s: 6.0,
};

const LTE_PROFILE: Profile = Profile {
    ladder: &LTE_LADDER,
    idx_indoor: 1.0,
    idx_outdoor: 5.6,
    idx_arrival: 4.3,
    ar: 0.92,
    sigma: 0.5,
    fade_prob: 0.04,
    fade_steps: 1.8,
    fade_mean_s: 2.0,
};

fn gen_series(rng: &mut StdRng, spec: &UqSpec, p: &Profile) -> Vec<f64> {
    let transition = 25usize; // seconds walking through the doorway area
    let mut out = Vec::with_capacity(spec.len);
    let mut snr_idx = regime_index(0, spec, p, transition);
    // Obstruction fades at walking speed have a characteristic duration:
    // drop hard, stay down for ~fade_mean_s, then ramp out over the final
    // second. The recovery timing is readable from the lag window — a
    // nonlinear (pattern) signal that separates tree ensembles from
    // linear models, as in the real capture.
    let mut fade_left = 0usize;
    let mut fade_total = 0usize;
    for t in 0..spec.len {
        let target = regime_index(t, spec, p, transition);
        // latent SNR walk toward the regime's ladder position
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        snr_idx = p.ar * snr_idx + (1.0 - p.ar) * target + p.sigma * (1.0 - p.ar).sqrt() * gauss;
        // Obstruction fades start preferentially when the latent SNR is
        // already below its regime mean (the radio is near the edge of
        // its plateau): a *threshold* trigger that tree splits represent
        // exactly and linear models cannot.
        let below_mean = snr_idx < target - 0.15;
        let onset_prob = if below_mean {
            3.0 * p.fade_prob
        } else {
            p.fade_prob / 3.0
        };
        if fade_left == 0 && rng.gen_range(0.0..1.0) < onset_prob {
            fade_total = (p.fade_mean_s as usize).max(2);
            fade_left = fade_total;
        }
        let mut effective_idx = snr_idx;
        if fade_left > 0 {
            fade_left -= 1;
            // full depth in the trough, half depth on the way out — a
            // U-shape whose exit timing is readable from the lag window
            effective_idx -= if fade_left == 0 {
                p.fade_steps * 0.5
            } else {
                p.fade_steps
            };
        }
        // quantize onto the rate ladder
        let max_idx = (p.ladder.len() - 1) as f64;
        let level = effective_idx.round().clamp(0.0, max_idx) as usize;
        // measurement efficiency jitter (MAC overhead, iperf granularity)
        let eff = rng.gen_range(0.92..0.96);
        out.push(p.ladder[level] * eff);
    }
    let _ = fade_total;
    out
}

/// Target ladder index for the walk position, with linear blending
/// through the transition windows.
fn regime_index(t: usize, spec: &UqSpec, p: &Profile, transition: usize) -> f64 {
    let blend = |from: f64, to: f64, k: f64| from + (to - from) * k.clamp(0.0, 1.0);
    if t < spec.outdoor_at {
        p.idx_indoor
    } else if t < spec.outdoor_at + transition {
        let k = (t - spec.outdoor_at) as f64 / transition as f64;
        blend(p.idx_indoor, p.idx_outdoor, k)
    } else if t < spec.arrival_at {
        p.idx_outdoor
    } else if t < spec.arrival_at + transition {
        let k = (t - spec.arrival_at) as f64 / transition as f64;
        blend(p.idx_outdoor, p.idx_arrival, k)
    } else {
        p.idx_arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::stats::mean;

    #[test]
    fn default_dataset_shape() {
        let d = UqDataset::default_dataset();
        assert_eq!(d.wifi.len(), 500);
        assert_eq!(d.lte.len(), 500);
        assert!(d.wifi.iter().all(|v| *v >= 0.0));
        assert!(d.lte.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = UqDataset::generate(&UqSpec::default());
        let b = UqDataset::generate(&UqSpec::default());
        assert_eq!(a.wifi, b.wifi);
        assert_eq!(a.lte, b.lte);
        let c = UqDataset::generate(&UqSpec {
            seed: 7,
            ..UqSpec::default()
        });
        assert_ne!(a.wifi, c.wifi);
    }

    #[test]
    fn wifi_dominates_indoors_lte_dominates_outdoors() {
        // The paper's core observation: "The WiFi channel supports better
        // bandwidth if the experiment is conducted indoors (from time 0 to
        // 100); on the contrary, the LTE wireless network measured very
        // low bandwidth during the same time."
        let d = UqDataset::default_dataset();
        let wifi_in = mean(&d.wifi[..100]);
        let lte_in = mean(&d.lte[..100]);
        assert!(
            wifi_in > 3.0 * lte_in,
            "indoors WiFi {wifi_in} should dwarf LTE {lte_in}"
        );
        let wifi_out = mean(&d.wifi[150..400]);
        let lte_out = mean(&d.lte[150..400]);
        assert!(
            lte_out > wifi_out,
            "outdoors LTE {lte_out} should beat WiFi {wifi_out}"
        );
    }

    #[test]
    fn wifi_variance_exceeds_lte_variance() {
        // This asymmetry drives WiFi RMSE > LTE RMSE in Fig 6.
        let d = UqDataset::default_dataset();
        let wifi_std = linalg::stats::std_dev(&d.wifi);
        let lte_std = linalg::stats::std_dev(&d.lte);
        assert!(
            wifi_std > lte_std,
            "WiFi std {wifi_std} must exceed LTE std {lte_std}"
        );
    }

    #[test]
    fn values_sit_on_quantized_plateaus() {
        // Rate adaptation: most consecutive samples stay within one
        // plateau's efficiency band rather than drifting continuously.
        let d = UqDataset::default_dataset();
        // every sample is <= max ladder rate
        assert!(d.wifi.iter().all(|v| *v <= 65.0));
        assert!(d.lte.iter().all(|v| *v <= 30.0));
        // plateau persistence: the underlying level (value / efficiency
        // midpoint) repeats across neighbours often
        let mut persist = 0;
        for w in d.wifi.windows(2) {
            let lvl = |v: f64| {
                WIFI_LADDER
                    .iter()
                    .enumerate()
                    .min_by(|a, b| (v / 0.925 - a.1).abs().total_cmp(&(v / 0.925 - b.1).abs()))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            };
            if lvl(w[0]) == lvl(w[1]) {
                persist += 1;
            }
        }
        assert!(
            persist > 250,
            "plateaus persist across seconds ({persist}/499)"
        );
    }

    #[test]
    fn path_indexing_matches_paper() {
        let d = UqDataset::default_dataset();
        assert_eq!(d.path(1).unwrap(), &d.wifi[..]);
        assert_eq!(d.path(2).unwrap(), &d.lte[..]);
        assert!(d.path(0).is_none());
        assert!(d.path(3).is_none());
    }

    #[test]
    fn series_are_autocorrelated() {
        // lag-1 autocorrelation should be clearly positive (AR model).
        let d = UqDataset::default_dataset();
        for s in [&d.wifi, &d.lte] {
            let m = mean(s);
            let num: f64 = s.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum();
            let den: f64 = s.iter().map(|v| (v - m) * (v - m)).sum();
            let rho = num / den;
            assert!(rho > 0.5, "lag-1 autocorrelation {rho} too weak");
        }
    }

    #[test]
    fn custom_spec_lengths() {
        let d = UqDataset::generate(&UqSpec {
            len: 50,
            outdoor_at: 20,
            arrival_at: 40,
            seed: 1,
        });
        assert_eq!(d.wifi.len(), 50);
    }
}
