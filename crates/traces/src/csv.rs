//! Minimal CSV reading/writing for bandwidth traces (no third-party
//! parser: traces are plain `time,value[,value...]` numeric tables).

use crate::TraceError;
use std::io::{BufReader, Write};
use std::path::Path;

/// A named multi-column numeric table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column names from the header row.
    pub columns: Vec<String>,
    /// Row-major values; every row has `columns.len()` entries.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Builds a table, checking that all rows are rectangular.
    pub fn new(columns: Vec<String>, rows: Vec<Vec<f64>>) -> Result<Self, TraceError> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != columns.len() {
                return Err(TraceError::Parse {
                    line: i + 2,
                    message: format!("expected {} fields, found {}", columns.len(), r.len()),
                });
            }
        }
        Ok(Table { columns, rows })
    }

    /// Extracts a column by name.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Serializes to CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for r in &self.rows {
            let line: Vec<String> = r.iter().map(|v| format!("{v}")).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes CSV to a file.
    pub fn save(&self, path: &Path) -> Result<(), TraceError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(())
    }

    /// Parses CSV text (header row required).
    pub fn from_csv(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(TraceError::Parse {
            line: 1,
            message: "empty file".into(),
        })?;
        let columns: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
        let mut rows = Vec::new();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let row: Result<Vec<f64>, _> = line
                .split(',')
                .map(|tok| tok.trim().parse::<f64>())
                .collect();
            let row = row.map_err(|e| TraceError::Parse {
                line: i + 1,
                message: e.to_string(),
            })?;
            if row.len() != columns.len() {
                return Err(TraceError::Parse {
                    line: i + 1,
                    message: format!("expected {} fields, found {}", columns.len(), row.len()),
                });
            }
            rows.push(row);
        }
        Ok(Table { columns, rows })
    }

    /// Reads CSV from a file.
    pub fn load(path: &Path) -> Result<Self, TraceError> {
        let f = std::fs::File::open(path)?;
        let mut reader = BufReader::new(f);
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        Table::from_csv(&text)
    }
}

use std::io::Read;

/// Convenience: the UQ dataset as a `time,wifi,lte` table.
pub fn uq_to_table(d: &crate::UqDataset) -> Table {
    let rows = d
        .wifi
        .iter()
        .zip(&d.lte)
        .enumerate()
        .map(|(t, (w, l))| vec![t as f64, *w, *l])
        .collect();
    Table::new(
        vec!["time_s".into(), "wifi_mbps".into(), "lte_mbps".into()],
        rows,
    )
    .expect("rectangular by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_text() {
        let t = Table::new(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.5], vec![-3.0, 4.0]],
        )
        .unwrap();
        let back = Table::from_csv(&t.to_csv()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("polka_hecate_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let t = uq_to_table(&crate::UqDataset::default_dataset());
        t.save(&path).unwrap();
        let back = Table::load(&path).unwrap();
        assert_eq!(back.columns, t.columns);
        assert_eq!(back.rows.len(), 500);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn column_extraction() {
        let t = uq_to_table(&crate::UqDataset::default_dataset());
        let wifi = t.column("wifi_mbps").unwrap();
        assert_eq!(wifi.len(), 500);
        assert!(t.column("nope").is_none());
    }

    #[test]
    fn ragged_rows_rejected() {
        let e = Table::from_csv("a,b\n1.0\n").unwrap_err();
        match e {
            TraceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn non_numeric_rejected() {
        assert!(Table::from_csv("a\nhello\n").is_err());
    }

    #[test]
    fn empty_file_rejected() {
        assert!(Table::from_csv("").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let t = Table::from_csv("a\n1\n\n2\n").unwrap();
        assert_eq!(t.rows.len(), 2);
    }
}
