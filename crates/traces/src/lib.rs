//! Bandwidth-trace substrate: a synthetic stand-in for the UQ wireless
//! dataset plus generic workload generators.
//!
//! The paper trains Hecate on a real dataset: LTE and WiFi bandwidth
//! measured with iperf once per second for 500 s along a walking path at
//! The University of Queensland (June 2017). The experimenter starts
//! indoors (building 78) and finishes outdoors (building 50); WiFi is
//! strong indoors and degrades outdoors, LTE behaves complementarily
//! (Fig 5b).
//!
//! The real capture is not redistributable, so [`uq`] generates a
//! calibrated synthetic equivalent: two 1 Hz series of 500 samples with a
//! mid-trace regime switch, WiFi having the larger mean and variance.
//! Everything the paper's evaluation consumes — two nonstationary series
//! with path-dependent variance — is preserved; see DESIGN.md §4 for the
//! substitution rationale.
//!
//! [`csv`] provides dependency-free load/save so traces can be inspected
//! or swapped for real captures, and [`synth`] adds extra workload shapes
//! (diurnal, bursty, constant) used by the extension benches.

pub mod csv;
pub mod synth;
pub mod uq;

pub use uq::{UqDataset, UqSpec};

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// Malformed CSV content.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
