//! Pins the sharded multi-pair consultation's determinism contract:
//! [`decide_flows_pairs_sharded`] returns decisions **bit-identical**
//! to the sequential [`decide_flows_pairs`] at any shard count, for
//! every objective, warm or cold, across random telemetry shapes.
//!
//! The guarantee is by construction — workers forecast disjoint
//! per-pair series sets, the merge re-establishes the global candidate
//! order, and the placement tail is the same code — but the pin is
//! what keeps a future "optimization" from quietly breaking it.
//!
//! [`decide_flows_pairs`]: framework::controller::decide_flows_pairs
//! [`decide_flows_pairs_sharded`]: framework::controller::decide_flows_pairs_sharded

use framework::controller::{decide_flows_pairs, decide_flows_pairs_sharded, SequenceLog};
use framework::optimizer::{SharedLinkModel, SolverKind};
use framework::scheduler::FlowRequest;
use framework::telemetry::{Metric, SeriesKey};
use framework::{HecateService, Objective, OptimizerConfig, PairId, TelemetryService};

/// Deterministic xorshift (same idiom as the waterfill proptest).
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn level(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.below(10_000) as f64 / 10_000.0) * (hi - lo)
    }
}

/// `pairs` pairs, two tunnels each: a private access link per tunnel
/// plus a trunk shared by groups of three pairs.
fn pair_model(pairs: usize, rng: &mut Rng) -> (SharedLinkModel, Vec<String>) {
    let trunks = pairs.div_ceil(3);
    let mut headroom: Vec<f64> = (0..trunks).map(|_| rng.level(8.0, 40.0)).collect();
    let mut tunnel_links = Vec::new();
    let mut candidates = Vec::new();
    let mut names = Vec::new();
    for p in 0..pairs {
        let mut cand = Vec::new();
        for t in 0..2usize {
            let access = headroom.len();
            headroom.push(rng.level(4.0, 25.0));
            cand.push(tunnel_links.len());
            tunnel_links.push(vec![(p / 3 + t) % trunks, access]);
            names.push(format!("p{p}/tunnel{t}"));
        }
        candidates.push(cand);
    }
    (
        SharedLinkModel::new(headroom, tunnel_links, candidates),
        names,
    )
}

/// Warm telemetry for a random subset of the series (cold series
/// exercise the partial-forecastability merge path), under `metric`.
fn seeded_store(names: &[String], metric: Metric, rng: &mut Rng) -> TelemetryService {
    let ts = TelemetryService::new(1000);
    for name in names {
        if rng.below(5) == 0 {
            continue; // leave this series cold
        }
        let level = rng.level(3.0, 30.0);
        for t in 0..40u64 {
            ts.insert(
                &SeriesKey::new(name, metric),
                t * 1000,
                level + (t as f64 / 7.0).sin() * 0.5,
            );
        }
    }
    ts
}

fn requests(pairs: usize, n: usize, rng: &mut Rng) -> Vec<FlowRequest> {
    (0..n)
        .map(|i| FlowRequest {
            label: format!("f{i}"),
            tos: 32,
            demand_mbps: match rng.below(3) {
                0 => None,
                _ => Some(rng.level(0.5, 10.0)),
            },
            start_ms: 0,
            pair: PairId(rng.below(pairs as u64) as usize),
        })
        .collect()
}

/// Bitwise decision comparison: name + flag exact, score compared on
/// the f64 bit pattern (stricter than the derived `PartialEq`).
fn assert_decisions_bitwise(
    seq: &[framework::controller::PathDecision],
    sharded: &[framework::controller::PathDecision],
    ctx: &str,
) {
    assert_eq!(seq.len(), sharded.len(), "{ctx}: length");
    for (i, (a, b)) in seq.iter().zip(sharded).enumerate() {
        assert_eq!(a.tunnel, b.tunnel, "{ctx}: decision {i} tunnel");
        assert_eq!(a.used_forecast, b.used_forecast, "{ctx}: decision {i} flag");
        assert_eq!(
            a.score.map(f64::to_bits),
            b.score.map(f64::to_bits),
            "{ctx}: decision {i} score bits ({:?} vs {:?})",
            a.score,
            b.score
        );
    }
}

#[test]
fn sharded_is_bitwise_identical_at_every_shard_count() {
    for seed in 1u64..13 {
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let pairs = 4 + rng.below(5) as usize; // 4..=8
        let (model, names) = pair_model(pairs, &mut rng);
        for objective in [Objective::MaxBandwidth, Objective::MinLatency] {
            let metric = match objective {
                Objective::MinLatency => Metric::Rtt,
                _ => Metric::AvailableBandwidth,
            };
            let ts = seeded_store(&names, metric, &mut rng);
            let reqs = requests(pairs, 8 + rng.below(16) as usize, &mut rng);
            let hecate = HecateService::new();
            let mut seq_log = SequenceLog::default();
            let seq =
                decide_flows_pairs(&hecate, &ts, &reqs, &names, &model, objective, &mut seq_log)
                    .unwrap();
            for shards in [1usize, 2, 4] {
                let config = OptimizerConfig {
                    decision_shards: shards,
                    ..OptimizerConfig::default()
                };
                let mut log = SequenceLog::default();
                let out = decide_flows_pairs_sharded(
                    &hecate, &ts, &reqs, &names, &model, objective, &config, &mut log,
                )
                .unwrap();
                let ctx = format!("seed {seed}, {objective:?}, {shards} shards");
                assert_decisions_bitwise(&seq, &out.decisions, &ctx);
                assert_eq!(
                    seq_log.steps(),
                    log.steps(),
                    "{ctx}: Fig 4 sequence must not depend on sharding"
                );
                let effective = shards.min(pairs);
                assert_eq!(out.shards.len(), effective, "{ctx}: shard reports");
                assert_eq!(
                    out.shards.iter().map(|r| r.series).sum::<usize>(),
                    names.len(),
                    "{ctx}: every candidate series forecast exactly once"
                );
                for (i, r) in out.shards.iter().enumerate() {
                    assert_eq!(r.shard, i, "{ctx}: reports in shard order");
                }
            }
        }
    }
}

#[test]
fn cold_start_shards_fall_back_identically() {
    let mut rng = Rng(99);
    let (model, names) = pair_model(5, &mut rng);
    let ts = TelemetryService::new(10);
    let reqs = requests(5, 7, &mut rng);
    let hecate = HecateService::new();
    let mut seq_log = SequenceLog::default();
    let seq = decide_flows_pairs(
        &hecate,
        &ts,
        &reqs,
        &names,
        &model,
        Objective::MaxBandwidth,
        &mut seq_log,
    )
    .unwrap();
    let config = OptimizerConfig {
        decision_shards: 3,
        ..OptimizerConfig::default()
    };
    let mut log = SequenceLog::default();
    let out = decide_flows_pairs_sharded(
        &hecate,
        &ts,
        &reqs,
        &names,
        &model,
        Objective::MaxBandwidth,
        &config,
        &mut log,
    )
    .unwrap();
    assert_decisions_bitwise(&seq, &out.decisions, "cold start");
    assert!(out.decisions.iter().all(|d| !d.used_forecast));
    assert_eq!(out.solver, None, "cold start never reaches the solver");
    assert!(log.steps().contains(&"fallbackArbitraryPath".to_string()));
}

#[test]
fn solver_kind_reports_the_configured_cutoff() {
    let mut rng = Rng(7);
    let (model, names) = pair_model(4, &mut rng);
    let ts = seeded_store(&names, Metric::AvailableBandwidth, &mut Rng(3));
    let reqs = requests(4, 5, &mut rng);
    let hecate = HecateService::new();
    // Default cutoff: 2^5 assignments fit the exhaustive search.
    let mut log = SequenceLog::default();
    let out = decide_flows_pairs_sharded(
        &hecate,
        &ts,
        &reqs,
        &names,
        &model,
        Objective::MaxBandwidth,
        &OptimizerConfig::default(),
        &mut log,
    )
    .unwrap();
    assert_eq!(out.solver, Some(SolverKind::Exhaustive));
    // Cutoff forced to zero: the same batch goes greedy.
    let config = OptimizerConfig {
        exhaustive_bound: 0,
        ..OptimizerConfig::default()
    };
    let mut log = SequenceLog::default();
    let out = decide_flows_pairs_sharded(
        &hecate,
        &ts,
        &reqs,
        &names,
        &model,
        Objective::MaxBandwidth,
        &config,
        &mut log,
    )
    .unwrap();
    assert_eq!(out.solver, Some(SolverKind::Greedy));
}
