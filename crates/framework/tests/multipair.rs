//! Multi-pair traffic-matrix control, end to end: N managed
//! ingress/egress pairs over one shared substrate, pair-scoped
//! telemetry, per-pair candidate sets, and the shared-link optimizer's
//! no-oversubscription invariant — on both planes.

use framework::dataloop::DataplaneConfig;
use framework::optimizer::{assign_flows_shared, FlowDemand, Objective};
use framework::scheduler::FlowRequest;
use framework::telemetry::{Metric, SeriesKey};
use framework::{PairId, SelfDrivingNetwork};

fn two_pair_mesh() -> SelfDrivingNetwork {
    // Ring of 12 with chords: plenty of disjoint paths for both pairs.
    let topo = netsim::topo::mesh(12, 3, 10.0);
    SelfDrivingNetwork::over_topology_pairs(topo, &[("n0", "n6"), ("n3", "n9")], 2, 1).unwrap()
}

fn req(label: &str, pair: usize, demand: Option<f64>) -> FlowRequest {
    FlowRequest {
        label: label.to_string(),
        tos: 32,
        demand_mbps: demand,
        start_ms: 0,
        pair: PairId(pair),
    }
}

#[test]
fn pairs_get_scoped_walkable_tunnels_and_private_namespaces() {
    let sdn = two_pair_mesh();
    assert_eq!(sdn.pair_count(), 2);
    // Pair-scoped tunnel names, both pairs, global order = pair order.
    assert_eq!(
        sdn.tunnel_names(),
        vec!["p0/tunnel1", "p0/tunnel2", "p1/tunnel1", "p1/tunnel2"]
    );
    assert_eq!(
        sdn.pair_tunnel_names(PairId(1)).unwrap(),
        &["p1/tunnel1".to_string(), "p1/tunnel2".to_string()]
    );
    assert_eq!(sdn.pair_endpoints(PairId(0)), Some(("n0", "n6")));
    assert_eq!(sdn.pair_scope(PairId(0)), Some("p0"));
    // Every tunnel's PolKA route walks the emulated data plane.
    for name in sdn.tunnel_names() {
        let compiled = sdn.tunnel(&name).unwrap();
        let visited =
            freertr::resolve::walk_route(compiled, &sdn.sim.topo, sdn.allocator()).unwrap();
        assert_eq!(visited, compiled.node_path, "{name}");
        // The owning pair's edge knows the tunnel.
        let pair = if name.starts_with("p0") { 0 } else { 1 };
        let edge = sdn.pair_edge(PairId(pair)).unwrap();
        assert!(edge.running_config().tunnel(&name).is_some());
    }
}

#[test]
fn one_agent_per_distinct_ingress() {
    // Two pairs sharing an ingress share one freeRtr agent; their
    // scoped tunnel ids coexist on it without collision.
    let topo = netsim::topo::mesh(12, 3, 10.0);
    let sdn =
        SelfDrivingNetwork::over_topology_pairs(topo, &[("n0", "n6"), ("n0", "n4")], 2, 1).unwrap();
    let e0 = sdn.pair_edge(PairId(0)).unwrap();
    let e1 = sdn.pair_edge(PairId(1)).unwrap();
    assert_eq!(e0.name(), e1.name());
    let cfg = e0.running_config();
    assert!(cfg.tunnel("p0/tunnel1").is_some());
    assert!(cfg.tunnel("p1/tunnel1").is_some());
}

#[test]
fn telemetry_is_keyed_pair_tunnel_metric_without_aliasing() {
    let mut sdn = two_pair_mesh();
    sdn.advance(10_000).unwrap();
    // Both pairs' series exist under their scoped names and are
    // distinct stores (the collision regression: same local tunnel id,
    // different pair, different series).
    let k0 = SeriesKey::new("p0/tunnel1", Metric::AvailableBandwidth);
    let k1 = SeriesKey::new("p1/tunnel1", Metric::AvailableBandwidth);
    assert!(
        sdn.telemetry.len(&k0) >= 9,
        "have {}",
        sdn.telemetry.len(&k0)
    );
    assert!(sdn.telemetry.len(&k1) >= 9);
    // The legacy bare name must NOT exist on a multi-pair network.
    let bare = SeriesKey::new("tunnel1", Metric::AvailableBandwidth);
    assert!(sdn.telemetry.is_empty(&bare));
}

#[test]
fn flows_admit_migrate_and_reoptimize_across_pairs() {
    let mut sdn = two_pair_mesh();
    sdn.advance(30_000).unwrap(); // warm telemetry for both pairs
    let decisions = sdn
        .admit_flows(
            &[req("a", 0, None), req("b", 1, Some(3.0)), req("c", 1, None)],
            Objective::MaxBandwidth,
        )
        .unwrap();
    // Every flow lands on a tunnel of its own pair.
    assert!(decisions[0].tunnel.starts_with("p0/"));
    assert!(decisions[1].tunnel.starts_with("p1/"));
    assert!(decisions[2].tunnel.starts_with("p1/"));
    assert_eq!(sdn.flow_pair("a"), Some(PairId(0)));
    assert_eq!(sdn.flow_pair("b"), Some(PairId(1)));
    sdn.advance(45_000).unwrap();
    assert!(sdn.flow_rate("a").unwrap() > 1.0);
    assert!(sdn.flow_rate("b").unwrap() > 2.0);
    // Migration to a foreign pair's tunnel is refused (it would
    // connect the wrong endpoints)...
    assert!(sdn.migrate_flow("a", "p1/tunnel1").is_err());
    // ...while migration within the pair is one PBR rewrite.
    sdn.migrate_flow("a", "p0/tunnel2").unwrap();
    assert_eq!(sdn.flow_tunnel("a"), Some("p0/tunnel2"));
    // Reoptimization over the whole matrix keeps every flow on its
    // own pair.
    sdn.advance(60_000).unwrap();
    let moves = sdn.reoptimize_bandwidth().unwrap();
    assert_eq!(moves.len(), 3);
    for (label, tunnel) in &moves {
        let pair = sdn.flow_pair(label).unwrap();
        let scope = format!("p{}/", pair.index());
        assert!(tunnel.starts_with(&scope), "{label} -> {tunnel}");
    }
}

#[test]
fn shared_link_model_never_oversubscribes() {
    // The SDN-built model + the shared engine: assigned rates must
    // respect every physical directed link's headroom.
    let mut sdn = two_pair_mesh();
    sdn.advance(20_000).unwrap();
    sdn.admit_flows(
        &[req("a", 0, None), req("b", 1, None), req("c", 1, Some(4.0))],
        Objective::MaxBandwidth,
    )
    .unwrap();
    sdn.advance(30_000).unwrap();
    let model = sdn.link_model(true);
    let flows = [
        FlowDemand {
            pair: PairId(0),
            demand: None,
        },
        FlowDemand {
            pair: PairId(1),
            demand: None,
        },
        FlowDemand {
            pair: PairId(1),
            demand: Some(4.0),
        },
    ];
    let a = assign_flows_shared(&model, &flows).unwrap();
    let mut used = vec![0.0; model.headroom.len()];
    for (i, &t) in a.tunnel_of_flow.iter().enumerate() {
        for &l in &model.tunnel_links[t] {
            used[l] += a.rate_of_flow[i];
        }
    }
    for (l, (&u, &h)) in used.iter().zip(&model.headroom).enumerate() {
        assert!(u <= h + 1e-9, "directed link {l}: {u} > {h}");
    }
}

#[test]
fn packet_plane_probes_every_pairs_tunnels() {
    // The packet plane attaches one probe per tunnel of *every* pair
    // and managed sources per pair; counters feed the scoped series.
    let mut sdn = two_pair_mesh();
    sdn.attach_dataplane(DataplaneConfig::default()).unwrap();
    sdn.admit_flows(
        &[req("a", 0, Some(2.0)), req("b", 1, Some(2.0))],
        Objective::MaxBandwidth,
    )
    .unwrap();
    sdn.packet_epoch().unwrap();
    let r = sdn.packet_epoch().unwrap();
    assert_eq!(r.tunnel_available.len(), 4, "{r:?}");
    for (name, avail) in &r.tunnel_available {
        assert!(
            name.starts_with("p0/") || name.starts_with("p1/"),
            "unscoped tunnel {name}"
        );
        assert!(*avail >= 0.0);
    }
    for label in ["a", "b"] {
        let g = r
            .flow_goodput
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, g)| *g)
            .unwrap();
        assert!((g - 2.0).abs() < 0.5, "{label} delivered {g}");
        // Measured goodput lands in the store under the flow label.
        assert!(sdn
            .telemetry
            .last(&SeriesKey::new(label, Metric::FlowRate))
            .is_some());
    }
    assert_eq!(r.pot_rejected, 0);
    assert!(r.delivered > 0);
}

#[test]
fn batch_with_an_unknown_pair_is_rejected_before_any_install() {
    // A bad pair index must fail the whole batch up front — not after
    // the earlier requests were already installed and started.
    let mut sdn = two_pair_mesh();
    let err = sdn.admit_flows(
        &[req("ok", 0, None), req("bad", 7, None)],
        Objective::MaxBandwidth,
    );
    assert!(err.is_err());
    assert_eq!(sdn.flow_pair("ok"), None, "no partial installation");
    assert!(sdn.flow_rate("ok").is_none());
}

#[test]
fn single_flow_admission_goes_through_the_shared_engine() {
    // admit_flow on a multi-pair network is admit_flows with a batch
    // of one: the decision comes from the shared-link model, lands on
    // the request's own pair, and a bad pair index is refused.
    let mut sdn = two_pair_mesh();
    sdn.advance(30_000).unwrap();
    let d0 = sdn
        .admit_flow(&req("a", 0, None), Objective::MaxBandwidth)
        .unwrap();
    let d1 = sdn
        .admit_flow(&req("b", 1, None), Objective::MaxBandwidth)
        .unwrap();
    assert!(d0.tunnel.starts_with("p0/"), "{d0:?}");
    assert!(d1.tunnel.starts_with("p1/"), "{d1:?}");
    assert!(sdn
        .admit_flow(&req("c", 9, None), Objective::MaxBandwidth)
        .is_err());
}

#[test]
#[should_panic(expected = "already folded")]
fn tunnel_caps_cannot_be_stacked_twice() {
    let sdn = two_pair_mesh();
    let caps = vec![1.0; sdn.tunnel_names().len()];
    let _ = sdn
        .link_model(false)
        .with_tunnel_caps(&caps)
        .with_tunnel_caps(&caps);
}

#[test]
fn discovery_lands_in_the_owning_pairs_candidate_set() {
    let mut sdn = two_pair_mesh();
    // Discovery for pair 1's exact endpoints joins pair 1's candidate
    // set, under its namespace and on its edge agent.
    let created = sdn.discover_tunnels("n3", "n9", 4).unwrap();
    assert!(!created.is_empty());
    for id in &created {
        assert!(id.starts_with("p1/auto"), "{id}");
        assert!(sdn
            .pair_tunnel_names(PairId(1))
            .unwrap()
            .contains(&id.to_string()));
        assert!(!sdn
            .pair_tunnel_names(PairId(0))
            .unwrap()
            .contains(&id.to_string()));
        assert!(sdn
            .pair_edge(PairId(1))
            .unwrap()
            .running_config()
            .tunnel(id)
            .is_some());
    }
    // Endpoints no pair owns are refused on a multi-pair network: no
    // pair could ever route a flow onto such a tunnel.
    assert!(sdn.discover_tunnels("n1", "n5", 2).is_err());
}

#[test]
fn single_pair_keeps_legacy_names_through_the_pairs_constructor() {
    // over_topology == over_topology_pairs with one pair: bare tunnel
    // names, PairId(0) everywhere — the N=1 compatibility shim.
    let topo = netsim::topo::mesh(12, 3, 10.0);
    let sdn = SelfDrivingNetwork::over_topology_pairs(topo, &[("n0", "n6")], 3, 1).unwrap();
    assert_eq!(sdn.tunnel_names(), vec!["tunnel1", "tunnel2", "tunnel3"]);
    assert_eq!(sdn.pair_scope(PairId(0)), Some(""));
}
