//! End-to-end: the self-driving network driving the *packet-level* data
//! plane. The control loop under test is the paper's own:
//!
//!   decide → compile routeID → forward packets → observe telemetry
//!     → forecast → re-decide
//!
//! with failure recovery exercised exactly as PolKA promises: a link
//! failure is healed by **one ingress routeID swap**, and the
//! post-migration telemetry that feeds the next forecast comes from
//! forwarded packets, not from the fluid model.

use framework::dataloop::DataplaneConfig;
use framework::optimizer::Objective;
use framework::scheduler::FlowRequest;
use framework::telemetry::{Metric, SeriesKey};
use framework::SelfDrivingNetwork;

#[test]
fn failure_recovery_is_one_ingress_rewrite_and_refuels_the_forecast() {
    let mut sdn = SelfDrivingNetwork::testbed(11).unwrap();
    sdn.attach_dataplane(DataplaneConfig::default()).unwrap();

    // One managed flow, admitted cold: phase (i) lands it on tunnel1.
    sdn.admit_flow(
        &FlowRequest {
            label: "user".into(),
            tos: 32,
            demand_mbps: Some(6.0),
            start_ms: 0,
            pair: framework::PairId::default(),
        },
        Objective::MaxBandwidth,
    )
    .unwrap();
    assert_eq!(sdn.flow_tunnel("user"), Some("tunnel1"));

    // Warm-up: enough packet epochs that every tunnel's series can feed
    // a forecast (min history = lags + 2 = 12).
    for _ in 0..14 {
        let r = sdn.packet_epoch().unwrap();
        assert_eq!(r.pot_rejected, 0, "clean traffic must verify PoT");
    }
    let plane = sdn.dataplane().unwrap();
    assert_eq!(plane.ingress_rewrites(), 0, "no migration yet");
    let f1 = sdn
        .hecate
        .forecast_path(&sdn.telemetry, "tunnel1", Metric::AvailableBandwidth)
        .expect("warm series forecasts");
    assert!(f1.mean() > 15.0, "tunnel1 forecast {}", f1.mean());

    // Fail tunnel1's bottleneck. The next epochs measure the outage
    // from dropped packets: tunnel1's series collapses to zero.
    sdn.set_link_state("MIA", "SAO", false).unwrap();
    for _ in 0..3 {
        let r = sdn.packet_epoch().unwrap();
        assert!(r.dropped > 0, "failed link must drop packets");
    }
    let key1 = SeriesKey::new("tunnel1", Metric::AvailableBandwidth);
    assert_eq!(sdn.telemetry.last(&key1), Some(0.0));

    // Re-decide: the optimizer moves the flow off the dead tunnel.
    let moves = sdn.reoptimize_bandwidth().unwrap();
    let after = moves.iter().find(|(l, _)| l == "user").unwrap().1.clone();
    assert_ne!(after, "tunnel1", "flow must leave the failed tunnel");
    assert_eq!(sdn.flow_tunnel("user"), Some(after.as_str()));

    // The migration reaches the data plane as exactly ONE ingress
    // routeID swap, performed at the next epoch's ingress sync.
    let r = sdn.packet_epoch().unwrap();
    assert_eq!(r.rewrites, 1, "one PBR rewrite, core nodes untouched");
    let plane = sdn.dataplane().unwrap();
    assert_eq!(plane.ingress_rewrites(), 1);
    assert_eq!(plane.stamped_tunnel("user"), Some(after.as_str()));

    // Post-migration: packets flow again and their counters feed a
    // successful re-forecast of the new tunnel.
    let mut delivered_after = 0;
    for _ in 0..14 {
        let r = sdn.packet_epoch().unwrap();
        assert_eq!(r.rewrites, 0, "no further rewrites");
        assert_eq!(r.pot_rejected, 0, "migrated packets verify PoT");
        delivered_after += r.delivered;
    }
    assert!(delivered_after > 1000, "delivered {delivered_after}");
    let goodput = sdn
        .telemetry
        .last(&SeriesKey::new("user", Metric::FlowRate))
        .unwrap();
    assert!((goodput - 6.0).abs() < 0.6, "post-migration {goodput}");
    let f2 = sdn
        .hecate
        .forecast_path(&sdn.telemetry, &after, Metric::AvailableBandwidth)
        .expect("packet-fed series re-forecasts");
    assert!(f2.mean() > 5.0, "{} forecast {}", after, f2.mean());
}

#[test]
fn packet_and_fluid_telemetry_agree_on_idle_capacity() {
    // Same testbed measured two ways: the fluid collector's computed
    // available bandwidth and the packet plane's measured one must tell
    // the optimizer the same story (within header overhead).
    let mut fluid = SelfDrivingNetwork::testbed(3).unwrap();
    fluid.advance(5_000).unwrap();
    let mut packet = SelfDrivingNetwork::testbed(3).unwrap();
    packet.attach_dataplane(DataplaneConfig::default()).unwrap();
    for _ in 0..5 {
        packet.packet_epoch().unwrap();
    }
    for tunnel in ["tunnel1", "tunnel2", "tunnel3"] {
        let key = SeriesKey::new(tunnel, Metric::AvailableBandwidth);
        let a = fluid.telemetry.last(&key).unwrap();
        let b = packet.telemetry.last(&key).unwrap();
        assert!((a - b).abs() < 1.0, "{tunnel}: fluid {a} vs packet {b}");
    }
}
