//! Pins the million-flow control plane's core contract **bit for
//! bit**: after every patch (arrival / departure / reroute / demand
//! change / headroom change), [`SharedWaterfill::resolve`]'s standing
//! solution must equal [`SharedWaterfill::full_rates`] — the audited
//! from-scratch recompute — with `f64::to_bits` equality, under random
//! cross-pair interleavings.
//!
//! This is strictly stronger than the netsim engine's 1e-6-tolerance
//! pin: the canonical fill makes every rate a pure function of the
//! saturation structure (see the `framework::waterfill` module docs),
//! so incremental and full solves cannot even differ in the last ulp.

use framework::waterfill::SharedWaterfill;
use framework::{optimizer::SharedLinkModel, PairId};
use proptest::prelude::*;

/// Deterministic xorshift so each proptest case derives its own event
/// sequence from one seed.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn mbps(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.below(10_000) as f64 / 10_000.0) * (hi - lo)
    }
}

/// A shared-trunk model across `pairs` pairs: every pair has a private
/// access link per tunnel plus a trunk link shared by a group of
/// pairs — so saturation sets genuinely couple across pairs, the case
/// the expansion scan must get right.
fn grid_model(pairs: usize, group: usize, rng: &mut Rng) -> SharedLinkModel {
    let trunks = pairs.div_ceil(group);
    let mut headroom = Vec::new();
    let mut tunnel_links = Vec::new();
    let mut candidates = Vec::new();
    // trunk links first
    for _ in 0..trunks {
        headroom.push(rng.mbps(8.0, 40.0));
    }
    for p in 0..pairs {
        let mut cand = Vec::new();
        for t in 0..2usize {
            let access = headroom.len();
            headroom.push(rng.mbps(4.0, 25.0));
            let trunk = (p / group + t) % trunks;
            cand.push(tunnel_links.len());
            tunnel_links.push(vec![trunk, access]);
        }
        candidates.push(cand);
    }
    SharedLinkModel::new(headroom, tunnel_links, candidates)
}

fn assert_bitwise(wf: &SharedWaterfill, step: usize, seed: u64) {
    let standing = wf.rates();
    let full = wf.full_rates();
    assert_eq!(standing.len(), full.len());
    for ((ia, ra), (ib, rb)) in standing.iter().zip(&full) {
        assert_eq!(ia, ib);
        assert!(
            ra.to_bits() == rb.to_bits(),
            "step {step} (seed {seed}): flow {ia} incremental {ra:.17} != full {rb:.17}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ≥4 pairs, random arrival/departure/reroute/demand/capacity
    /// interleavings: incremental ≡ recompute, bitwise, at every step.
    #[test]
    fn incremental_equals_recompute_bitwise(seed in 1u64..5_000) {
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let pairs = 4 + rng.below(5) as usize; // 4..=8
        let model = grid_model(pairs, 3, &mut rng);
        let mut wf = SharedWaterfill::new(&model);
        let mut live: Vec<(u64, usize)> = Vec::new(); // (id, pair)
        let mut next_id = 0u64;
        let steps = 60 + rng.below(60) as usize;
        for step in 0..steps {
            match rng.below(10) {
                // Arrival (weighted heaviest, mixed greedy/demand).
                0..=3 => {
                    let pair = rng.below(pairs as u64) as usize;
                    let cand = &model.candidates[pair];
                    let tunnel = cand[rng.below(cand.len() as u64) as usize];
                    let demand = match rng.below(3) {
                        0 => None,
                        _ => Some(rng.mbps(0.2, 12.0)),
                    };
                    wf.insert(next_id, tunnel, demand);
                    live.push((next_id, pair));
                    next_id += 1;
                }
                // Departure.
                4..=5 => {
                    if !live.is_empty() {
                        let i = rng.below(live.len() as u64) as usize;
                        let (id, _) = live.swap_remove(i);
                        wf.remove(id);
                    }
                }
                // Reroute onto the pair's other candidate.
                6 => {
                    if !live.is_empty() {
                        let i = rng.below(live.len() as u64) as usize;
                        let (id, pair) = live[i];
                        let cand = &model.candidates[pair];
                        let tunnel = cand[rng.below(cand.len() as u64) as usize];
                        wf.set_tunnel(id, tunnel);
                    }
                }
                // Demand ramp (up, down, or to greedy).
                7..=8 => {
                    if !live.is_empty() {
                        let i = rng.below(live.len() as u64) as usize;
                        let (id, _) = live[i];
                        let demand = match rng.below(4) {
                            0 => None,
                            _ => Some(rng.mbps(0.1, 15.0)),
                        };
                        wf.set_demand(id, demand);
                    }
                }
                // Headroom change (trunk or access).
                _ => {
                    let link = rng.below(wf.link_count() as u64) as usize;
                    wf.set_headroom(link, rng.mbps(2.0, 40.0));
                }
            }
            wf.resolve();
            assert_bitwise(&wf, step, seed);
        }
        // The point of the machinery: the interleaving must actually
        // have exercised the cheap paths, not escalated every event.
        let stats = wf.stats();
        prop_assert!(
            stats.incremental_solves + stats.fast_path_events > 0,
            "no incremental work happened: {stats:?}"
        );
    }
}

/// The `PairId` import is exercised by the optimizer-level smoke below
/// (and keeps the test aligned with the controller's vocabulary).
#[test]
fn standing_engine_matches_assign_flows_shared_totals() {
    use framework::optimizer::{assign_flows_shared, FlowDemand};
    let mut rng = Rng(77);
    let model = grid_model(4, 2, &mut rng);
    let flows: Vec<FlowDemand> = (0..6)
        .map(|i| FlowDemand {
            pair: PairId(i % 4),
            demand: if i % 2 == 0 { None } else { Some(3.0) },
        })
        .collect();
    let assignment = assign_flows_shared(&model, &flows).unwrap();
    // Mirror the chosen placement in the standing engine: totals agree
    // to float tolerance (different but equivalent max-min fills).
    let mut wf = SharedWaterfill::new(&model);
    for (i, (f, &t)) in flows.iter().zip(&assignment.tunnel_of_flow).enumerate() {
        wf.insert(i as u64, t, f.demand);
    }
    wf.resolve();
    assert!(wf.audit());
    let total: f64 = wf.rates().iter().map(|(_, r)| r).sum();
    assert!(
        (total - assignment.predicted_total).abs() < 1e-6,
        "engine total {total} vs assignment total {}",
        assignment.predicted_total
    );
}
