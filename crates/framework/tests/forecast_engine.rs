//! Correctness of the shared ForecastEngine: the trained-model cache
//! must be invisible in results (identical forecasts, identical
//! recommendations) and safe under concurrency (no deadlocks, no reads
//! staler than the configured refit threshold).

use framework::controller::{decide_flows, SequenceLog};
use framework::hecate::HecateService;
use framework::optimizer::Objective;
use framework::scheduler::FlowRequest;
use framework::telemetry::{Metric, SeriesKey, TelemetryService};
use hecate_ml::pipeline::forecast_next;
use hecate_ml::RegressorKind;
use proptest::prelude::*;

/// A telemetry store with `paths` bandwidth series of distinct levels
/// and shapes, `len` samples each at 1 Hz.
fn store_with_paths(paths: usize, len: usize) -> (TelemetryService, Vec<String>) {
    let ts = TelemetryService::new(1024);
    let names: Vec<String> = (0..paths).map(|i| format!("path{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        let level = 5.0 + 3.0 * i as f64;
        for t in 0..len as u64 {
            let v = level + ((t as f64 / (4.0 + i as f64)).sin() * 1.5);
            ts.insert(
                &SeriesKey::new(name, Metric::AvailableBandwidth),
                t * 1000,
                v,
            );
        }
    }
    (ts, names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite: a cache-hit forecast is bitwise-identical to a fresh
    /// `forecast_next` when no new samples arrived — for arbitrary
    /// series content, arbitrary history length and both a
    /// deterministic and a seeded-stochastic model.
    #[test]
    fn cache_hit_is_bitwise_identical_to_fresh_forecast(
        series in prop::collection::vec(0.1f64..100.0, 13..200),
        stochastic in prop::bool::ANY,
    ) {
        let kind = if stochastic { RegressorKind::Rfr } else { RegressorKind::Lr };
        let ts = TelemetryService::new(1024);
        let key = SeriesKey::new("p", Metric::AvailableBandwidth);
        for (t, v) in series.iter().enumerate() {
            ts.insert(&key, t as u64 * 1000, *v);
        }
        let h = HecateService::with_model(kind);
        // populate (refit) ...
        let first = h.forecast_path(&ts, "p", Metric::AvailableBandwidth).unwrap();
        // ... then hit, with zero new samples in between
        let hit = h.forecast_path(&ts, "p", Metric::AvailableBandwidth).unwrap();
        // the reference: fitting from scratch on the exact same history
        let history = ts.last_n(&key, 120.max(h.min_history()));
        let fresh = forecast_next(kind, &history, h.lags, h.horizon, h.seed).unwrap();
        prop_assert_eq!(&hit.values, &fresh, "cache hit must not change bits");
        prop_assert_eq!(&hit.values, &first.values);
        let stats = h.cache_stats();
        prop_assert_eq!((stats.refits, stats.hits), (1, 1));
    }
}

/// Acceptance: the cached engine's recommendations match the uncached
/// engine's on identical telemetry — RFR, 8 candidate paths, both the
/// single best-path question and a batched greedy-flow placement.
#[test]
fn cached_recommendations_match_uncached_on_8_paths() {
    let (ts, names) = store_with_paths(8, 60);
    let hecate = HecateService::new(); // the paper's RFR
    let cold = hecate.forecast_all_uncached(&ts, &names, Metric::AvailableBandwidth);
    let warm = hecate.forecast_all(&ts, &names, Metric::AvailableBandwidth);
    assert_eq!(cold.len(), 8);
    assert_eq!(warm.len(), 8);
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.path, w.path);
        assert_eq!(c.values, w.values, "{}: cached forecast diverged", c.path);
    }
    // Same recommendation for a single flow...
    let best_cold = hecate.best_path_by_bandwidth(&ts, &names).unwrap();
    let best_warm = hecate.best_path_by_bandwidth(&ts, &names).unwrap();
    assert_eq!(best_cold, best_warm);
    assert_eq!(best_cold, "path7", "highest level wins");
    // ... and for a whole batch placed jointly.
    let reqs: Vec<FlowRequest> = (0..4)
        .map(|i| FlowRequest {
            label: format!("f{i}"),
            tos: 0,
            demand_mbps: None,
            start_ms: 0,
            pair: framework::PairId::default(),
        })
        .collect();
    let mut log = SequenceLog::default();
    let again = decide_flows(
        &hecate,
        &ts,
        &reqs,
        &names,
        Objective::MaxBandwidth,
        &mut log,
    )
    .unwrap();
    let mut log2 = SequenceLog::default();
    let rerun = decide_flows(
        &hecate,
        &ts,
        &reqs,
        &names,
        Objective::MaxBandwidth,
        &mut log2,
    )
    .unwrap();
    assert_eq!(again, rerun, "warm batch decisions are stable");
    let stats = hecate.cache_stats();
    assert_eq!(stats.refits, 8, "one fit per path, everything else served");
    assert!(stats.hits >= 8, "{stats:?}");
}

/// Satellite: concurrent batched decisions against concurrent telemetry
/// writers — the engine must not deadlock, every decision must succeed,
/// and no cached model may serve data staler than `refit_after`.
#[test]
fn concurrent_decisions_and_writers_stay_fresh() {
    let (ts, names) = store_with_paths(4, 40);
    let mut hecate = HecateService::with_model(RegressorKind::Lr); // fast fits
    hecate.refit_after = 8;
    let hecate = hecate;
    let rounds = 30u64;

    std::thread::scope(|scope| {
        // Writers: each path's series keeps growing while decisions run.
        for name in &names {
            let ts = ts.clone();
            scope.spawn(move || {
                let key = SeriesKey::new(name, Metric::AvailableBandwidth);
                for t in 0..rounds {
                    ts.insert(&key, (40 + t) * 1000, 10.0 + (t as f64 / 3.0).cos());
                    std::thread::yield_now();
                }
            });
        }
        // Deciders: two threads batch-deciding flows the whole time.
        for d in 0..2 {
            let hecate = hecate.clone();
            let ts = ts.clone();
            let names = names.clone();
            scope.spawn(move || {
                for r in 0..rounds {
                    let reqs: Vec<FlowRequest> = (0..3)
                        .map(|i| FlowRequest {
                            label: format!("d{d}r{r}f{i}"),
                            tos: 0,
                            demand_mbps: None,
                            start_ms: 0,
                            pair: framework::PairId::default(),
                        })
                        .collect();
                    let mut log = SequenceLog::default();
                    let decisions = decide_flows(
                        &hecate,
                        &ts,
                        &reqs,
                        &names,
                        Objective::MaxBandwidth,
                        &mut log,
                    )
                    .expect("warm store: decisions never fail");
                    assert_eq!(decisions.len(), 3);
                    assert!(decisions.iter().all(|dec| dec.used_forecast));
                }
            });
        }
    });

    // Writers are done: one more decision round must leave every cached
    // model within refit_after of the final series state.
    let mut log = SequenceLog::default();
    decide_flows(
        &hecate,
        &ts,
        &[FlowRequest {
            label: "final".into(),
            tos: 0,
            demand_mbps: None,
            start_ms: 0,
            pair: framework::PairId::default(),
        }],
        &names,
        Objective::MaxBandwidth,
        &mut log,
    )
    .unwrap();
    for name in &names {
        let age = hecate
            .cache_age(&ts, name, Metric::AvailableBandwidth)
            .expect("every path is cached");
        assert!(
            age < hecate.refit_after.max(1),
            "{name}: cached model is {age} samples stale (refit_after {})",
            hecate.refit_after
        );
    }
}
