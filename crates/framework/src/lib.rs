//! The Hecate–PolKA integration framework: the paper's core contribution
//! (Sec. IV, Figs 3–4).
//!
//! The moving parts, mirroring Fig 3:
//!
//! * [`telemetry::TelemetryService`] — a time-series store fed by the
//!   emulator's per-path probes ("telemetry data … stored in a time
//!   series database for analysis");
//! * [`hecate::HecateService`] — wraps one of the eighteen regressors,
//!   forecasts each path's QoS for the next `horizon` steps ("Hecate
//!   computes the predicted values for the next 10 steps");
//! * [`optimizer`] — objective functions over path forecasts
//!   (min-latency, max-bandwidth, min-max-utilization) and the flow→tunnel
//!   assignment search;
//! * [`controller`] — the Fig 4 sequence: new flow → telemetry → Hecate →
//!   optimizer → SR (PolKA) service → flow steered;
//! * [`scheduler::Scheduler`] — queued flow requests with start times;
//! * [`dashboard`] — the "link occupation graphs" as ASCII rendering;
//! * [`sdn::SelfDrivingNetwork`] — the assembled system: netsim substrate,
//!   freeRtr agents, compiled PolKA tunnels, services; plus runnable
//!   reproductions of the paper's two experiments
//!   ([`sdn::SelfDrivingNetwork::run_latency_migration`] → Fig 11,
//!   [`sdn::SelfDrivingNetwork::run_flow_aggregation`] → Fig 12);
//! * [`policies`] — the decision-policy ablation of Sec. III ("Real-time
//!   Decision Making"): Hecate forecasts vs last-sample vs static.

pub mod controller;
pub mod dashboard;
pub mod dataloop;
pub mod hecate;
pub mod optimizer;
pub mod policies;
pub mod scheduler;
pub mod sdn;
pub mod telemetry;
pub mod waterfill;

pub use hecate::HecateService;
pub use optimizer::{Objective, OptimizerConfig, SolveMode};
pub use scheduler::{FlowRequest, Scheduler};
pub use sdn::SelfDrivingNetwork;
pub use telemetry::{Metric, TelemetryService};
pub use waterfill::{SharedWaterfill, StripedResidual};

/// Index of a **managed ingress/egress pair** — the unit the multi-pair
/// control plane keys everything on: candidate tunnel sets, telemetry
/// namespaces, flow admission and the shared-link assignment.
///
/// A single-pair deployment (the paper's testbed,
/// [`SelfDrivingNetwork::over_topology`]) is `PairId(0)` everywhere and
/// keeps the legacy un-namespaced series/tunnel names, so existing
/// behavior is bit-for-bit unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PairId(pub usize);

impl PairId {
    /// The pair's index into the network's managed-pair table.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for PairId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Errors from the framework layer.
#[derive(Debug)]
pub enum FrameworkError {
    /// Not enough telemetry history to make a decision.
    InsufficientTelemetry {
        /// Series that is too short.
        key: String,
        /// Samples available.
        have: usize,
        /// Samples needed.
        need: usize,
    },
    /// The ML layer failed.
    Ml(hecate_ml::MlError),
    /// The control plane failed.
    Freertr(freertr::FreertrError),
    /// The emulator failed.
    Netsim(netsim::NetsimError),
    /// The packet-level data plane failed.
    Dataplane(dataplane::DataplaneError),
    /// No candidate tunnel satisfies the request.
    NoFeasiblePath,
}

impl std::fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameworkError::InsufficientTelemetry { key, have, need } => {
                write!(f, "series {key:?} has {have} samples, need {need}")
            }
            FrameworkError::Ml(e) => write!(f, "ML failure: {e}"),
            FrameworkError::Freertr(e) => write!(f, "control-plane failure: {e}"),
            FrameworkError::Netsim(e) => write!(f, "emulator failure: {e}"),
            FrameworkError::Dataplane(e) => write!(f, "data-plane failure: {e}"),
            FrameworkError::NoFeasiblePath => write!(f, "no feasible path"),
        }
    }
}

impl std::error::Error for FrameworkError {}

impl From<hecate_ml::MlError> for FrameworkError {
    fn from(e: hecate_ml::MlError) -> Self {
        FrameworkError::Ml(e)
    }
}
impl From<freertr::FreertrError> for FrameworkError {
    fn from(e: freertr::FreertrError) -> Self {
        FrameworkError::Freertr(e)
    }
}
impl From<netsim::NetsimError> for FrameworkError {
    fn from(e: netsim::NetsimError) -> Self {
        FrameworkError::Netsim(e)
    }
}
impl From<dataplane::DataplaneError> for FrameworkError {
    fn from(e: dataplane::DataplaneError) -> Self {
        FrameworkError::Dataplane(e)
    }
}
