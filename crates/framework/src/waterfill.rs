//! Incremental shared-link water-fill: the million-flow control plane.
//!
//! [`crate::optimizer::assign_flows_shared`] recomputes the entire
//! max-min matrix on every call — fine for hundreds of flows, hopeless
//! for 100k. This module keeps a *standing* max-min solution over a
//! [`SharedLinkModel`] and patches it: flow arrivals, departures,
//! reroutes, demand changes and headroom changes re-water-fill only the
//! affected links' saturation sets, mirroring the component-local
//! re-solve `netsim::FairShareEngine` proved out for the event core.
//! The full recompute stays available as the audited fallback
//! ([`SharedWaterfill::full_rates`] / [`SharedWaterfill::audit`]).
//!
//! # The bit-identity contract
//!
//! Unlike the netsim engine (which pins incremental ≡ full only to a
//! float tolerance), this engine is *canonical*: every committed rate
//! is a pure function of the saturation structure, independent of how
//! the solver got there.
//!
//! * Per-round link shares are always computed fresh as
//!   `(headroom − Σ determined member rates) / active count`, with the
//!   sum taken over the link's full member set in flow-id order —
//!   never by decrementing a running residual. A member whose rate is
//!   not yet determined contributes nothing, so the float accumulation
//!   order of the determined subset is identical whether the other
//!   members are "active in this solve" or "pinned from a previous
//!   solve". (The fill caches each link's sum between rounds, but only
//!   re-uses it while no member's determined state changed — a cache
//!   hit returns the exact bits the full re-summation would.)
//! * The expansion scan compares water levels **bitwise** (no epsilon):
//!   after a restricted solve, each touched link's canonical joint
//!   level `λ = (headroom − Σ below-level rates) / |at-level members|`
//!   is recomputed, and any outside member whose pinned rate differs
//!   from the level it would get in a full recompute joins the
//!   component for the next iteration. The fixpoint is therefore
//!   exactly the full-recompute solution, bit for bit — pinned by the
//!   `incremental_waterfill` proptest.
//!
//! Fast paths (a demand-limited arrival under slack links, a zero-rate
//! departure) skip the solve entirely; both are exact, not
//! approximate, because the skipped solve would assign the same bits.
//!
//! # Why the hot paths are arrays, not maps
//!
//! At 100k standing flows a backbone link carries thousands of member
//! flows, and every solve walks the touched links' full member sets
//! (the canonical sums above demand it). Pointer-chasing a
//! `BTreeSet<u64>` per member and a `BTreeMap` per rate lookup put a
//! ~100 ns constant on each visit — the difference between a sub-ms
//! and a 100 ms tick. So flows live in a dense slot arena
//! (`ids: id → slot` is consulted once per *event*, never per member)
//! and each link's member list is a flow-id-sorted `Vec<(id, slot)>`:
//! every canonical walk is a contiguous scan with indexed loads, and
//! the id ordering the contract sums in is the Vec order itself.
//! Patches also *pre-seed* the at-level peers of any saturated link
//! they touch (arrival, growth, reroute — not just release), so the
//! common squeeze converges in one restricted solve instead of paying
//! a full expansion iteration to discover those peers.
//!
//! # Sharding
//!
//! [`StripedResidual`] publishes per-link residual headroom behind
//! striped reader-writer locks for the sharded controller tick:
//! worker threads take concurrent *read* snapshots while partitioned
//! per-pair work runs, and every write happens sequentially in fixed
//! link order at the merge barrier — so the data each shard reads is
//! the previous tick's state regardless of shard count or OS
//! scheduling, and results stay bit-identical to the sequential path.

use crate::optimizer::SharedLinkModel;
use netsim::{WaterfillMetrics, WaterfillStats};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};

/// Slack margin for the *fast-path gates only* (never for rates): a
/// demand-limited arrival takes the fast path when every link keeps
/// more than this much spare beyond the demand.
const EPS: f64 = 1e-9;

/// Restricted-solve iterations before escalating to the full flow set.
const MAX_EXPANSIONS: usize = 8;

/// Demand-limited freeze tolerance inside the fill, identical to the
/// legacy progressive water-fill's freeze test so both describe the
/// same structure.
const DEMAND_TOL: f64 = 1e-12;

#[derive(Debug, Clone)]
struct WfFlow {
    tunnel: usize,
    demand: Option<f64>,
    rate: f64,
}

impl WfFlow {
    /// Exact at-demand test: demand-limited freezes assign exactly `d`,
    /// so bitwise `>=` is the canonical membership test.
    fn at_demand(&self) -> bool {
        self.demand.is_some_and(|d| self.rate >= d)
    }
}

/// A standing incremental max-min solution over a [`SharedLinkModel`].
///
/// Flows are identified by caller-chosen `u64` ids (sorted iteration
/// order is the determinism contract). Tunnels and links are the
/// model's indices; the model's `headroom` seeds the engine's and can
/// be patched per-link afterwards with
/// [`SharedWaterfill::set_headroom`].
#[derive(Debug)]
pub struct SharedWaterfill {
    headroom: Vec<f64>,
    tunnel_links: Vec<Vec<usize>>,
    /// Flow id → arena slot; the only per-event map lookup.
    ids: BTreeMap<u64, u32>,
    /// Dense flow arena; freed slots are recycled via `free`.
    slots: Vec<WfFlow>,
    free: Vec<u32>,
    /// Per link: `(id, slot)` members sorted by flow id — the canonical
    /// summation order, walked contiguously.
    members: Vec<Vec<(u64, u32)>>,
    seeds: BTreeSet<u64>,
    changed: BTreeMap<u64, f64>,
    /// Cached Σ member rates per link (flow-id order), for the O(1)
    /// fast-path residual gate. Recomputed canonically on read when
    /// dirty — never drifts.
    used_cache: Vec<f64>,
    used_dirty: Vec<bool>,
    /// Slot → position in the current solve's `order`, `-1` outside it.
    /// A reusable scratch so membership tests in the solver hot loops
    /// are indexed loads, not map probes; entries are reset on solve
    /// exit.
    scratch_pos: Vec<i32>,
    stats: WaterfillMetrics,
}

/// What one restricted fill produced, alongside the pre-solve link
/// statistics its build walk collected for free.
struct FillOutcome {
    /// `(flow, rate)` for the solved set, flow-id order.
    rates: BTreeMap<u64, f64>,
    /// Links picked as bottlenecks, with their frozen share.
    picked: BTreeMap<usize, f64>,
    /// The same rates by `order` position, for O(1) overlay lookups.
    by_pos: Vec<f64>,
    /// Per touched link: pre-solve `(Σ member rates, max member rate)`
    /// — the canonical id-order sum and the water-level anchor, both
    /// computed in the same walk that classified the members.
    pre: BTreeMap<usize, (f64, f64)>,
}

impl SharedWaterfill {
    /// A fresh engine over the model's links and tunnels, no flows yet.
    pub fn new(model: &SharedLinkModel) -> Self {
        let links = model.headroom.len();
        SharedWaterfill {
            headroom: model.headroom.clone(),
            tunnel_links: model.tunnel_links.clone(),
            ids: BTreeMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            members: vec![Vec::new(); links],
            seeds: BTreeSet::new(),
            changed: BTreeMap::new(),
            used_cache: vec![0.0; links],
            used_dirty: vec![false; links],
            scratch_pos: Vec::new(),
            stats: WaterfillMetrics::default(),
        }
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.headroom.len()
    }

    /// Number of tunnels.
    pub fn tunnel_count(&self) -> usize {
        self.tunnel_links.len()
    }

    /// Number of managed flows.
    pub fn flow_count(&self) -> usize {
        self.ids.len()
    }

    /// Registers a flow on `tunnel`. `demand: None` = greedy.
    /// Re-inserting an existing id replaces it.
    ///
    /// Fast path, proven exact by the max-min certificate: a
    /// demand-limited arrival whose every link keeps spare capacity
    /// beyond the demand saturates nothing, so no other flow's
    /// certificate link changes and the arrival's own rate is exactly
    /// its demand — the same bits a solve would assign.
    ///
    /// # Panics
    /// Panics when `tunnel` is out of range — a wiring bug, like
    /// handing `with_tunnel_caps` the wrong cap count.
    pub fn insert(&mut self, id: u64, tunnel: usize, demand: Option<f64>) {
        assert!(
            tunnel < self.tunnel_links.len(),
            "tunnel index out of range"
        );
        if self.ids.contains_key(&id) {
            self.remove(id);
        }
        let links = self.tunnel_links[tunnel].clone();
        let fast = demand.is_some_and(|d| links.iter().all(|&l| self.residual(l) > d + EPS));
        let rate = if fast {
            // detlint: allow(bare-panic) — `fast` implies `demand.is_some()` one line up.
            demand.expect("fast implies demand")
        } else {
            0.0
        };
        if !fast {
            // Pre-seed the squeeze: an arrival that will contend on a
            // saturated link pulls that link's at-level peers into the
            // same solve, so the restricted solve converges without an
            // expansion iteration discovering them.
            self.level_seeds(&links, id);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = WfFlow {
                    tunnel,
                    demand,
                    rate,
                };
                s
            }
            None => {
                self.slots.push(WfFlow {
                    tunnel,
                    demand,
                    rate,
                });
                (self.slots.len() - 1) as u32
            }
        };
        for &l in &links {
            let mem = &mut self.members[l];
            let pos = mem.partition_point(|&(m, _)| m < id);
            mem.insert(pos, (id, slot));
            self.used_dirty[l] = true;
        }
        self.ids.insert(id, slot);
        if fast {
            self.stats.fast_path_events.inc();
            self.changed.insert(id, rate);
        } else {
            self.seeds.insert(id);
        }
    }

    /// Unregisters a flow, seeding neighbors entitled to grow into the
    /// capacity it releases. A zero-rate departure releases nothing and
    /// skips the solve — the departure fast path.
    pub fn remove(&mut self, id: u64) {
        let Some(slot) = self.ids.get(&id).copied() else {
            return;
        };
        let f = self.slots[slot as usize].clone();
        let links = self.tunnel_links[f.tunnel].clone();
        if f.rate > 0.0 {
            self.level_seeds(&links, id);
        } else {
            self.stats.fast_path_events.inc();
        }
        for &l in &links {
            let mem = &mut self.members[l];
            if let Ok(pos) = mem.binary_search_by_key(&id, |&(m, _)| m) {
                mem.remove(pos);
            }
            self.used_dirty[l] = true;
        }
        self.ids.remove(&id);
        self.free.push(slot);
        self.seeds.remove(&id);
        self.changed.remove(&id);
    }

    /// Reroutes a flow onto a new tunnel, seeding both the release side
    /// and the flow itself.
    ///
    /// # Panics
    /// Panics when `tunnel` is out of range (wiring bug).
    pub fn set_tunnel(&mut self, id: u64, tunnel: usize) {
        assert!(
            tunnel < self.tunnel_links.len(),
            "tunnel index out of range"
        );
        let Some(slot) = self.ids.get(&id).copied() else {
            return;
        };
        let f = self.slots[slot as usize].clone();
        if f.tunnel == tunnel {
            return;
        }
        let old_links = self.tunnel_links[f.tunnel].clone();
        if f.rate > 0.0 {
            self.level_seeds(&old_links, id);
        }
        for &l in &old_links {
            let mem = &mut self.members[l];
            if let Ok(pos) = mem.binary_search_by_key(&id, |&(m, _)| m) {
                mem.remove(pos);
            }
            self.used_dirty[l] = true;
        }
        let new_links = self.tunnel_links[tunnel].clone();
        // Pre-seed the landing side's at-level peers too — the arrival
        // squeeze, same as a fresh insert on a saturated tunnel.
        self.level_seeds(&new_links, id);
        for &l in &new_links {
            let mem = &mut self.members[l];
            let pos = mem.partition_point(|&(m, _)| m < id);
            mem.insert(pos, (id, slot));
            self.used_dirty[l] = true;
        }
        let f = &mut self.slots[slot as usize];
        f.tunnel = tunnel;
        f.rate = 0.0;
        self.seeds.insert(id);
    }

    /// Changes a flow's offered load (`None` = greedy). Both directions
    /// seed the flow's saturated links' at-level peers: shrinking below
    /// the current rate releases capacity they are entitled to grow
    /// into, growing squeezes them — either way they belong in the same
    /// restricted solve.
    pub fn set_demand(&mut self, id: u64, demand: Option<f64>) {
        let Some(slot) = self.ids.get(&id).copied() else {
            return;
        };
        if self.slots[slot as usize].demand == demand {
            return;
        }
        let links = self.tunnel_links[self.slots[slot as usize].tunnel].clone();
        self.level_seeds(&links, id);
        self.slots[slot as usize].demand = demand;
        self.seeds.insert(id);
    }

    /// Changes a link's headroom; all its member flows re-solve.
    ///
    /// # Panics
    /// Panics when `link` is out of range (wiring bug).
    pub fn set_headroom(&mut self, link: usize, mbps: f64) {
        assert!(link < self.headroom.len(), "link index out of range");
        if self.headroom[link] == mbps {
            return;
        }
        self.headroom[link] = mbps;
        self.seeds
            .extend(self.members[link].iter().map(|&(m, _)| m));
    }

    /// Re-solves everything the batched patches since the last resolve
    /// touched, returning `(flow, new rate)` for every flow whose rate
    /// changed — sorted by flow id.
    pub fn resolve(&mut self) -> Vec<(u64, f64)> {
        let seeds = std::mem::take(&mut self.seeds);
        let comp: BTreeSet<u64> = seeds
            .into_iter()
            .filter(|id| self.ids.contains_key(id))
            .collect();
        if !comp.is_empty() {
            self.solve(comp);
        }
        std::mem::take(&mut self.changed).into_iter().collect()
    }

    /// Current rate of a flow.
    pub fn rate(&self, id: u64) -> Option<f64> {
        self.ids.get(&id).map(|&s| self.slots[s as usize].rate)
    }

    /// The tunnel a flow currently sits on (for diff-patching a
    /// standing engine against a freshly decided placement).
    pub fn tunnel_of(&self, id: u64) -> Option<usize> {
        self.ids.get(&id).map(|&s| self.slots[s as usize].tunnel)
    }

    /// A flow's current elastic demand (`Some(None)` = present and
    /// greedy, `None` = unknown flow).
    pub fn demand_of(&self, id: u64) -> Option<Option<f64>> {
        self.ids.get(&id).map(|&s| self.slots[s as usize].demand)
    }

    /// All `(flow, rate)` pairs, sorted by flow id.
    pub fn rates(&self) -> Vec<(u64, f64)> {
        self.ids
            .iter()
            .map(|(id, &s)| (*id, self.slots[s as usize].rate))
            .collect()
    }

    /// The audited fallback: a from-scratch canonical water-fill over
    /// every flow, ignoring (and not touching) the standing solution.
    /// [`SharedWaterfill::resolve`] must always land on exactly these
    /// bits — that is the incremental ≡ recompute contract.
    pub fn full_rates(&self) -> Vec<(u64, f64)> {
        let order: Vec<u64> = self.ids.keys().copied().collect();
        let order_slots: Vec<u32> = order.iter().map(|id| self.ids[id]).collect();
        let mut pos = vec![-1i32; self.slots.len()];
        for (i, &s) in order_slots.iter().enumerate() {
            pos[s as usize] = i as i32;
        }
        let out = self.fill(&order, &order_slots, &pos);
        out.rates.into_iter().collect()
    }

    /// `true` when the standing solution equals the full recompute bit
    /// for bit. Call after [`SharedWaterfill::resolve`].
    pub fn audit(&self) -> bool {
        self.rates()
            .into_iter()
            .zip(self.full_rates())
            .all(|((ia, ra), (ib, rb))| ia == ib && ra.to_bits() == rb.to_bits())
    }

    /// Per-link residual headroom (`headroom − Σ member rates`), for
    /// publishing into a [`StripedResidual`].
    pub fn residuals(&mut self) -> Vec<f64> {
        (0..self.headroom.len()).map(|l| self.residual(l)).collect()
    }

    /// Audit counters (a snapshot; the live instruments are
    /// [`SharedWaterfill::metrics`]).
    pub fn stats(&self) -> WaterfillStats {
        self.stats.snapshot()
    }

    /// The live `obsv` instruments — register under
    /// `framework.waterfill.incremental` via [`WaterfillMetrics::register`].
    pub fn metrics(&self) -> &WaterfillMetrics {
        &self.stats
    }

    /// Remaining capacity of `link` under current rates. Canonical on
    /// every read: the cache is recomputed (full member sum in id
    /// order) whenever a member's rate or the membership changed.
    fn residual(&mut self, link: usize) -> f64 {
        if self.used_dirty[link] {
            self.used_cache[link] = self.members[link]
                .iter()
                .map(|&(_, s)| self.slots[s as usize].rate)
                .sum();
            self.used_dirty[link] = false;
        }
        self.headroom[link] - self.used_cache[link]
    }

    /// Seeds the at-level members of each saturated link in `links`
    /// (excluding `skip`) — the flows a patch at that link squeezes or
    /// releases, depending on the direction of the change. Unsaturated
    /// links constrain nobody and skip through.
    fn level_seeds(&mut self, links: &[usize], skip: u64) {
        for &l in links {
            let mut used = 0.0;
            let mut level = f64::NEG_INFINITY;
            for &(_, s) in &self.members[l] {
                let r = self.slots[s as usize].rate;
                used += r;
                level = level.max(r);
            }
            if self.headroom[l] - used > EPS {
                continue;
            }
            for &(m, s) in &self.members[l] {
                if m == skip {
                    continue;
                }
                let mf = &self.slots[s as usize];
                if !mf.at_demand() && mf.rate >= level {
                    self.seeds.insert(m);
                }
            }
        }
    }

    fn solve(&mut self, mut comp: BTreeSet<u64>) {
        let mut iterations = 0usize;
        loop {
            let full = iterations >= MAX_EXPANSIONS || comp.len() * 2 > self.ids.len();
            if full {
                comp = self.ids.keys().copied().collect();
            }
            let order: Vec<u64> = comp.iter().copied().collect();
            let order_slots: Vec<u32> = order.iter().map(|id| self.ids[id]).collect();
            // Publish slot → order position into the reusable scratch so
            // every membership test below is an indexed load. Comp only
            // grows across iterations (and a full solve covers every
            // flow), so the next iteration's pass overwrites every entry
            // this one set; explicit reset happens only on return.
            if self.scratch_pos.len() < self.slots.len() {
                self.scratch_pos.resize(self.slots.len(), -1);
            }
            for (i, &s) in order_slots.iter().enumerate() {
                self.scratch_pos[s as usize] = i as i32;
            }
            let out = self.fill(&order, &order_slots, &self.scratch_pos);
            if full {
                self.stats.full_solves.inc();
                self.commit(&out.rates);
                for &s in &order_slots {
                    self.scratch_pos[s as usize] = -1;
                }
                return;
            }
            // Per-link rate delta of the solved set, for the O(comp)
            // overload estimate below. Gate only, never a rate: its EPS
            // slack absorbs the float drift vs a canonical re-summation.
            let mut delta: BTreeMap<usize, f64> = BTreeMap::new();
            for (i, &s) in order_slots.iter().enumerate() {
                let f = &self.slots[s as usize];
                let d = out.by_pos[i] - f.rate;
                for &l in &self.tunnel_links[f.tunnel] {
                    *delta.entry(l).or_insert(0.0) += d;
                }
            }
            // Expansion scan, rate comparisons bitwise: join every
            // outside member whose pinned rate differs from what the
            // full recompute would assign at this link. Slack links
            // (no pre-solve saturation, not picked) classify nobody and
            // skip without a member walk — backbone trunks with
            // headroom never pay it.
            let mut joins: BTreeSet<u64> = BTreeSet::new();
            for (&l, &(pre_used, pre_max)) in &out.pre {
                let rate_now = |s: u32| match self.scratch_pos[s as usize] {
                    p if p >= 0 => out.by_pos[p as usize],
                    _ => self.slots[s as usize].rate,
                };
                let est = pre_used + delta.get(&l).copied().unwrap_or(0.0);
                if self.headroom[l] - est < -EPS {
                    // Overload safety net: pull everyone in.
                    joins.extend(
                        self.members[l]
                            .iter()
                            .filter(|&&(_, s)| self.scratch_pos[s as usize] < 0)
                            .map(|&(m, _)| m),
                    );
                    continue;
                }
                // Level anchor: the *lower* of the pre-solve level and
                // this solve's picked level, so both squeezed (level
                // fell) and lifted (level rose) members classify as
                // at-level.
                let saturated = !self.members[l].is_empty() && self.headroom[l] - pre_used <= EPS;
                let level = match (saturated.then_some(pre_max), out.picked.get(&l)) {
                    (Some(p), Some(n)) => Some(p.min(*n)),
                    (Some(p), None) => Some(p),
                    (None, Some(n)) => Some(*n),
                    (None, None) => None,
                };
                let Some(level) = level else {
                    continue;
                };
                // Canonical joint level over the at-level members —
                // exactly the share a full recompute computes when it
                // picks this link as a bottleneck.
                let mut below_sum = 0.0;
                let mut at_level = 0usize;
                for &(_, s) in &self.members[l] {
                    let r = rate_now(s);
                    let capped = self.slots[s as usize].demand.is_some_and(|d| r >= d);
                    if !capped && r >= level {
                        at_level += 1;
                    } else {
                        below_sum += r;
                    }
                }
                if at_level == 0 {
                    continue;
                }
                let joint = ((self.headroom[l] - below_sum).max(0.0)) / at_level as f64;
                let lam_mismatch = out.picked.get(&l).is_some_and(|lam| *lam != joint);
                for &(m, s) in &self.members[l] {
                    if self.scratch_pos[s as usize] >= 0 {
                        continue;
                    }
                    let r = self.slots[s as usize].rate;
                    let capped = self.slots[s as usize].demand.is_some_and(|d| r >= d);
                    let at = !capped && r >= level;
                    if r > joint || (at && (joint != r || lam_mismatch)) {
                        joins.insert(m);
                    }
                }
            }
            if joins.is_empty() {
                self.stats.incremental_solves.inc();
                self.commit(&out.rates);
                for &s in &order_slots {
                    self.scratch_pos[s as usize] = -1;
                }
                return;
            }
            self.stats.expansions.inc();
            comp.extend(joins);
            iterations += 1;
        }
    }

    fn commit(&mut self, new_rates: &BTreeMap<u64, f64>) {
        for (id, r) in new_rates {
            // detlint: allow(bare-panic) — the fill only rates flows it was handed.
            let slot = *self.ids.get(id).expect("solved flows exist");
            let f = &mut self.slots[slot as usize];
            if f.rate != *r {
                f.rate = *r;
                self.changed.insert(*id, *r);
                for &l in &self.tunnel_links[f.tunnel] {
                    self.used_dirty[l] = true;
                }
            }
        }
    }

    /// The canonical water-fill restricted to `order` (every other
    /// flow's rate is pinned): global demand-limited freezing first,
    /// otherwise the bottleneck link's active members freeze at the
    /// minimum share, ties to the smallest link index. Per-round link
    /// shares are recomputed fresh from the full member set in flow-id
    /// order — see the module docs for why that makes the result a
    /// pure function of the saturation structure. Between rounds each
    /// link's `(used, active)` is cached and re-summed only when one of
    /// its members froze, which is bit-identical to re-summing every
    /// round (no member state changed means the same walk yields the
    /// same bits) and turns the per-round cost from O(all touched
    /// members) into O(members of links whose state moved).
    fn fill(&self, order: &[u64], order_slots: &[u32], pos: &[i32]) -> FillOutcome {
        let n = order.len();
        let mut rates = vec![0.0f64; n];
        let mut frozen = vec![false; n];
        // Per touched link: members in id order, inside flows by
        // position, outside flows by pinned rate — plus the cached
        // canonical (used, active) for the current frozen state.
        enum Member {
            In(usize),
            Out(f64),
        }
        struct LinkState {
            mem: Vec<Member>,
            used: f64,
            active: usize,
            dirty: bool,
        }
        // The tunnel (hence link set) of each inside flow, for dirtying
        // its links when it freezes.
        let mut flow_tunnel = vec![0usize; n];
        let mut links: BTreeMap<usize, LinkState> = BTreeMap::new();
        let mut pre: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
        for (i, &slot) in order_slots.iter().enumerate() {
            let f = &self.slots[slot as usize];
            flow_tunnel[i] = f.tunnel;
            let tunnel_links = &self.tunnel_links[f.tunnel];
            if tunnel_links.is_empty() {
                frozen[i] = true;
                rates[i] = f.demand.unwrap_or(0.0);
                continue;
            }
            for &l in tunnel_links {
                if links.contains_key(&l) {
                    continue;
                }
                // One fused walk per link: member classification plus
                // the pre-solve canonical Σ rates and water level the
                // expansion scan anchors on.
                let mut used = 0.0f64;
                let mut level = f64::NEG_INFINITY;
                let mem = self.members[l]
                    .iter()
                    .map(|&(_, s)| {
                        let mf = &self.slots[s as usize];
                        used += mf.rate;
                        level = level.max(mf.rate);
                        match pos[s as usize] {
                            p if p >= 0 => Member::In(p as usize),
                            _ => Member::Out(mf.rate),
                        }
                    })
                    .collect();
                pre.insert(l, (used, level));
                links.insert(
                    l,
                    LinkState {
                        mem,
                        used: 0.0,
                        active: 0,
                        dirty: true,
                    },
                );
            }
        }
        let mut picked: BTreeMap<usize, f64> = BTreeMap::new();
        let mut unfrozen = frozen.iter().filter(|f| !**f).count();
        for _round in 0..n + links.len() + 1 {
            if unfrozen == 0 {
                break;
            }
            let mut min_share = f64::INFINITY;
            let mut min_link: Option<usize> = None;
            for (l, ls) in links.iter_mut() {
                if ls.dirty {
                    // The canonical full re-summation, id order.
                    let mut used = 0.0;
                    let mut active = 0usize;
                    for m in &ls.mem {
                        match m {
                            Member::Out(r) => used += r,
                            Member::In(pos) => {
                                if frozen[*pos] {
                                    used += rates[*pos];
                                } else {
                                    active += 1;
                                }
                            }
                        }
                    }
                    ls.used = used;
                    ls.active = active;
                    ls.dirty = false;
                }
                if ls.active == 0 {
                    continue;
                }
                let share = (self.headroom[*l] - ls.used).max(0.0) / ls.active as f64;
                let better = match min_link {
                    None => true,
                    Some(k) => share < min_share || (share == min_share && *l < k),
                };
                if better {
                    min_share = share;
                    min_link = Some(*l);
                }
            }
            let Some(bottleneck) = min_link else { break };
            let mut froze: Vec<usize> = Vec::new();
            let demand_limited: Vec<usize> = (0..n)
                .filter(|&i| {
                    !frozen[i]
                        && self.slots[order_slots[i] as usize]
                            .demand
                            .is_some_and(|d| d <= min_share + DEMAND_TOL)
                })
                .collect();
            if demand_limited.is_empty() {
                picked.insert(bottleneck, min_share);
                // Collecting first releases the `links` borrow before
                // the dirtying pass below.
                let at_bottleneck: Vec<usize> = links[&bottleneck]
                    .mem
                    .iter()
                    .filter_map(|m| match m {
                        Member::In(pos) if !frozen[*pos] => Some(*pos),
                        _ => None,
                    })
                    .collect();
                for pos in at_bottleneck {
                    frozen[pos] = true;
                    rates[pos] = min_share;
                    froze.push(pos);
                }
            } else {
                for i in demand_limited {
                    frozen[i] = true;
                    rates[i] = self.slots[order_slots[i] as usize]
                        .demand
                        // detlint: allow(bare-panic) — membership required demand above.
                        .expect("checked demand-limited");
                    froze.push(i);
                }
            }
            unfrozen -= froze.len();
            for i in froze {
                for l in &self.tunnel_links[flow_tunnel[i]] {
                    if let Some(ls) = links.get_mut(l) {
                        ls.dirty = true;
                    }
                }
            }
        }
        FillOutcome {
            rates: order.iter().copied().zip(rates.iter().copied()).collect(),
            picked,
            by_pos: rates,
            pre,
        }
    }
}

/// Shared-link residual state for the sharded controller tick, behind
/// striped reader-writer locks: link `l` lives in stripe `l % stripes`.
///
/// The determinism contract: worker threads only ever *read* during a
/// tick's partitioned phase (concurrent, lock-free in the common
/// uncontended case); all writes happen at the merge barrier,
/// sequentially, in ascending link order. Every shard therefore sees
/// the previous tick's state no matter how many shards run or how the
/// OS schedules them — the reason sharded results are bit-identical to
/// the sequential path.
#[derive(Debug)]
pub struct StripedResidual {
    stripes: Vec<RwLock<Vec<f64>>>,
    links: usize,
}

impl StripedResidual {
    /// `links` residual slots across `stripes` locks (at least one).
    pub fn new(links: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        let mut slots = vec![Vec::new(); stripes];
        for l in 0..links {
            slots[l % stripes].push(0.0);
        }
        StripedResidual {
            stripes: slots.into_iter().map(RwLock::new).collect(),
            links,
        }
    }

    /// Number of link slots.
    pub fn len(&self) -> usize {
        self.links
    }

    /// `true` when there are no link slots.
    pub fn is_empty(&self) -> bool {
        self.links == 0
    }

    /// Reads one link's residual (shared lock).
    pub fn get(&self, link: usize) -> f64 {
        let s = link % self.stripes.len();
        self.stripes[s].read()[link / self.stripes.len()]
    }

    /// Writes one link's residual (exclusive lock). Merge-phase only.
    pub fn set(&self, link: usize, residual: f64) {
        let s = link % self.stripes.len();
        self.stripes[s].write()[link / self.stripes.len()] = residual;
    }

    /// Publishes a full residual vector, in ascending link order.
    ///
    /// # Panics
    /// Panics when `residuals` is not one value per link (wiring bug).
    pub fn publish(&self, residuals: &[f64]) {
        assert_eq!(residuals.len(), self.links, "one residual per link");
        for (l, r) in residuals.iter().enumerate() {
            self.set(l, *r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::SharedLinkModel;

    /// Two pairs, two tunnels each; tunnels 1 and 2 share link 2.
    fn model() -> SharedLinkModel {
        SharedLinkModel::new(
            vec![20.0, 10.0, 10.0, 20.0, 10.0],
            vec![vec![0], vec![1, 2], vec![2, 3], vec![4]],
            vec![vec![0, 1], vec![2, 3]],
        )
    }

    #[test]
    fn greedy_flows_split_a_shared_link() {
        let mut wf = SharedWaterfill::new(&model());
        wf.insert(1, 1, None);
        wf.insert(2, 2, None);
        let rates: BTreeMap<u64, f64> = wf.resolve().into_iter().collect();
        assert_eq!(rates[&1], 5.0);
        assert_eq!(rates[&2], 5.0);
        assert!(wf.audit());
    }

    #[test]
    fn demand_limited_arrival_takes_the_fast_path() {
        let mut wf = SharedWaterfill::new(&model());
        wf.insert(1, 0, Some(3.0));
        assert_eq!(wf.resolve(), vec![(1, 3.0)]);
        assert_eq!(wf.stats().fast_path_events, 1);
        assert_eq!(wf.stats().incremental_solves + wf.stats().full_solves, 0);
        assert!(wf.audit());
    }

    #[test]
    fn departure_releases_capacity_to_the_level_peers() {
        let mut wf = SharedWaterfill::new(&model());
        wf.insert(1, 1, None);
        wf.insert(2, 2, None);
        wf.resolve();
        wf.remove(1);
        let rates: BTreeMap<u64, f64> = wf.resolve().into_iter().collect();
        assert_eq!(rates[&2], 10.0);
        assert!(wf.audit());
    }

    #[test]
    fn demand_ramp_patches_in_place() {
        let mut wf = SharedWaterfill::new(&model());
        wf.insert(1, 1, Some(2.0));
        wf.insert(2, 2, None);
        wf.resolve();
        assert_eq!(wf.rate(1), Some(2.0));
        assert_eq!(wf.rate(2), Some(8.0));
        // Ramp the mouse up: now both contend for link 2's 10 Mb/s.
        wf.set_demand(1, Some(6.0));
        let rates: BTreeMap<u64, f64> = wf.resolve().into_iter().collect();
        assert_eq!(rates[&1], 5.0);
        assert_eq!(rates[&2], 5.0);
        assert!(wf.audit());
        // Ramp back down: peer reclaims the release.
        wf.set_demand(1, Some(1.0));
        let rates: BTreeMap<u64, f64> = wf.resolve().into_iter().collect();
        assert_eq!(rates[&1], 1.0);
        assert_eq!(rates[&2], 9.0);
        assert!(wf.audit());
    }

    #[test]
    fn reroute_moves_the_contention() {
        let mut wf = SharedWaterfill::new(&model());
        wf.insert(1, 1, None);
        wf.insert(2, 2, None);
        wf.resolve();
        wf.set_tunnel(1, 0);
        let rates: BTreeMap<u64, f64> = wf.resolve().into_iter().collect();
        assert_eq!(rates[&1], 20.0);
        assert_eq!(rates[&2], 10.0);
        assert!(wf.audit());
    }

    #[test]
    fn headroom_change_reflows_members() {
        let mut wf = SharedWaterfill::new(&model());
        wf.insert(1, 1, None);
        wf.insert(2, 2, None);
        wf.resolve();
        wf.set_headroom(2, 4.0);
        let rates: BTreeMap<u64, f64> = wf.resolve().into_iter().collect();
        assert_eq!(rates[&1], 2.0);
        assert_eq!(rates[&2], 2.0);
        assert!(wf.audit());
    }

    #[test]
    fn no_link_is_oversubscribed() {
        let mut wf = SharedWaterfill::new(&model());
        for id in 0..12u64 {
            wf.insert(
                id,
                (id % 4) as usize,
                if id % 3 == 0 { None } else { Some(1.5) },
            );
        }
        wf.resolve();
        let mut used = [0.0f64; 5];
        for (id, r) in wf.rates() {
            for &l in &model().tunnel_links[(id % 4) as usize] {
                used[l] += r;
            }
        }
        for (l, u) in used.iter().enumerate() {
            assert!(
                *u <= model().headroom[l] + 1e-6,
                "link {l} oversubscribed: {u}"
            );
        }
        assert!(wf.audit());
    }

    #[test]
    fn slot_recycling_survives_churn() {
        // Arena slots are recycled through the free list; a departing
        // id must never alias a survivor's rate or membership.
        let mut wf = SharedWaterfill::new(&model());
        wf.insert(1, 1, None);
        wf.insert(2, 2, None);
        wf.resolve();
        wf.remove(1);
        wf.insert(3, 1, Some(2.0));
        wf.resolve();
        assert_eq!(wf.rate(1), None);
        assert_eq!(wf.rate(3), Some(2.0));
        assert_eq!(wf.tunnel_of(3), Some(1));
        assert_eq!(wf.flow_count(), 2);
        assert!(wf.audit());
    }

    #[test]
    fn striped_residual_round_trips() {
        let sr = StripedResidual::new(9, 4);
        assert_eq!(sr.len(), 9);
        let vals: Vec<f64> = (0..9).map(|l| l as f64 * 1.5).collect();
        sr.publish(&vals);
        for (l, v) in vals.iter().enumerate() {
            assert_eq!(sr.get(l), *v);
        }
        sr.set(7, 42.0);
        assert_eq!(sr.get(7), 42.0);
    }
}
