//! Closing the control loop through the packet-level data plane.
//!
//! With [`SelfDrivingNetwork::attach_dataplane`] the loop becomes the
//! one the paper actually runs on hardware:
//!
//! ```text
//! decide → compile routeID (CRT) → stamp at ingress → forward packets
//!   → link/flow counters → telemetry store → forecast → re-decide
//! ```
//!
//! Every tunnel carries a periodic *probe* flow and every managed flow
//! a traffic source in [`dataplane::PacketNet`]; one
//! [`SelfDrivingNetwork::packet_epoch`] forwards a window of real
//! packets, then feeds the **measured** counters (per-directed-link
//! load, per-flow delivered goodput, egress-PoT verdicts) into the
//! telemetry store — the same store Hecate forecasts from. Path
//! migration reaches the plane as exactly one ingress routeID swap
//! ([`dataplane::PacketNet::set_route`]); core nodes are never touched.

use crate::sdn::SelfDrivingNetwork;
use crate::telemetry::{Metric, SeriesKey};
use crate::FrameworkError;
use dataplane::{FlowRoute, PacketNet, TrafficSpec};
use netsim::NodeIdx;
use std::collections::HashMap;

/// Tuning for the attached packet plane.
#[derive(Debug, Clone)]
pub struct DataplaneConfig {
    /// Packet-time per epoch (ms). One telemetry sample per tunnel and
    /// flow is produced per epoch; the paper samples at 1 Hz.
    pub epoch_ms: u64,
    /// Per-tunnel probe rate (Mbps) — the always-on measurement stream.
    pub probe_rate_mbps: f64,
    /// Probe payload size (bytes).
    pub probe_bytes: u32,
    /// Default offered load for managed flows without a declared demand
    /// (a stand-in for greedy TCP; the drop-tail queues shave it).
    pub default_flow_mbps: f64,
    /// Managed-flow payload size (bytes).
    pub flow_bytes: u32,
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        DataplaneConfig {
            epoch_ms: 1000,
            probe_rate_mbps: 0.4,
            probe_bytes: 250,
            default_flow_mbps: 8.0,
            flow_bytes: 1250,
        }
    }
}

/// The attached packet plane plus the stamping state the ingress edge
/// keeps per flow.
#[derive(Debug)]
pub struct PacketPlane {
    net: PacketNet,
    cfg: DataplaneConfig,
    /// flow label -> tunnel currently stamped at the ingress.
    stamped: HashMap<String, String>,
    /// Epochs run so far.
    pub epochs: u64,
}

impl PacketPlane {
    /// The underlying packet network (counters, reports).
    pub fn net(&self) -> &PacketNet {
        &self.net
    }

    /// Total ingress routeID rewrites performed by migrations.
    pub fn ingress_rewrites(&self) -> u64 {
        self.net.ingress_rewrites
    }

    /// The tunnel currently stamped for a managed flow.
    pub fn stamped_tunnel(&self, label: &str) -> Option<&str> {
        self.stamped.get(label).map(String::as_str)
    }

    /// Attaches (or detaches) the sim-time tracer on the packet net.
    pub(crate) fn set_tracer(&mut self, tracer: obsv::Tracer) {
        self.net.set_tracer(tracer);
    }

    /// Exposes the packet net's live loss counters in `registry`.
    pub(crate) fn register_metrics(&self, registry: &obsv::Registry) {
        self.net.register_metrics(registry);
    }
}

/// What one packet epoch measured.
#[derive(Debug, Clone)]
pub struct PacketEpochReport {
    /// Sample timestamp (ms, simulation clock).
    pub at_ms: u64,
    /// Measured available bandwidth per tunnel (Mbps), candidate order.
    pub tunnel_available: Vec<(String, f64)>,
    /// Delivered goodput per managed flow (Mbps).
    pub flow_goodput: Vec<(String, f64)>,
    /// Packets delivered (with verified PoT) in this epoch, all flows.
    pub delivered: u64,
    /// Packets dropped in this epoch, all flows and causes.
    pub dropped: u64,
    /// Packets rejected by the egress PoT check in this epoch.
    pub pot_rejected: u64,
    /// Ingress routeID rewrites performed in this epoch (migrations).
    pub rewrites: u64,
}

impl SelfDrivingNetwork {
    /// The packet route for a compiled tunnel (host links are edge
    /// business; the label encodes the router path).
    fn tunnel_packet_route(&self, tunnel: &str) -> Result<FlowRoute, FrameworkError> {
        let compiled = self
            .tunnels
            .get(tunnel)
            .ok_or(FrameworkError::NoFeasiblePath)?;
        Ok(FlowRoute::polka(
            compiled.node_path[0],
            compiled.node_path[1],
            compiled.route.clone(),
            &compiled.spec,
        ))
    }

    /// Builds the packet-level data plane over the current topology and
    /// starts one probe stream per tunnel. Uses the same node-ID
    /// allocator that compiled the tunnels, so stamped routeIDs and the
    /// plane's core nodes agree.
    pub fn attach_dataplane(&mut self, cfg: DataplaneConfig) -> Result<(), FrameworkError> {
        let mut net = PacketNet::new(&self.sim.topo, &mut self.alloc)?;
        for name in self.tunnel_names() {
            let route = self.tunnel_packet_route(&name)?;
            net.add_flow(TrafficSpec {
                name: format!("probe:{name}"),
                route,
                payload_bytes: cfg.probe_bytes,
                rate_mbps: cfg.probe_rate_mbps,
            })?;
        }
        // A bundle attached before the plane existed still reaches it.
        net.set_tracer(self.obsv.tracer.clone());
        net.register_metrics(&self.obsv.metrics);
        self.packet_plane = Some(PacketPlane {
            net,
            cfg,
            stamped: HashMap::new(),
            epochs: 0,
        });
        Ok(())
    }

    /// The attached plane, if any.
    pub fn dataplane(&self) -> Option<&PacketPlane> {
        self.packet_plane.as_ref()
    }

    /// Resolves the link between two named routers, seeing through
    /// failures (a failed link is invisible to `link_between`, but
    /// restores and re-rates must still find it).
    fn resolve_link(&self, a: &str, b: &str) -> Result<netsim::LinkId, FrameworkError> {
        let na = self.sim.topo.node(a)?;
        let nb = self.sim.topo.node(b)?;
        let lid = self.sim.topo.link_between(na, nb).or_else(|_| {
            self.sim
                .topo
                .neighbors(na)
                .iter()
                .find(|(n, _)| *n == nb)
                .map(|(_, l)| *l)
                .ok_or(netsim::NetsimError::NotAdjacent(a.into(), b.into()))
        })?;
        Ok(lid)
    }

    /// Fails (or restores) the link between two named routers in *both*
    /// planes: the packet plane immediately, the fluid substrate via a
    /// validated event at the current time.
    pub fn set_link_state(&mut self, a: &str, b: &str, up: bool) -> Result<(), FrameworkError> {
        let lid = self.resolve_link(a, b)?;
        let now = self.sim.now_ms();
        self.sim.schedule(now, netsim::Event::SetLinkUp(lid, up))?;
        if let Some(plane) = self.packet_plane.as_mut() {
            plane.net.set_link_up(lid, up);
        }
        Ok(())
    }

    /// Re-rates the link between two named routers in *both* planes —
    /// the hook scenario traffic matrices and maintenance drains
    /// modulate capacity through. Works on failed links too (the new
    /// rate applies once the link is restored).
    pub fn set_link_capacity(&mut self, a: &str, b: &str, mbps: f64) -> Result<(), FrameworkError> {
        let lid = self.resolve_link(a, b)?;
        let now = self.sim.now_ms();
        self.sim
            .schedule(now, netsim::Event::SetLinkCapacity(lid, mbps.max(0.0)))?;
        if let Some(plane) = self.packet_plane.as_mut() {
            plane.net.set_link_rate(lid, mbps.max(0.0));
        }
        Ok(())
    }

    /// Runs one epoch of the packet data plane and feeds the measured
    /// counters into the telemetry store:
    ///
    /// 1. ingress sync — every managed flow's stamped route is matched
    ///    to its current tunnel (a migration decided since the last
    ///    epoch lands here as **one** routeID swap);
    /// 2. forward a window of packets through queues and core nodes;
    /// 3. per tunnel, insert the *measured* available bandwidth
    ///    (bottleneck residual from link counters, plus the tunnel's own
    ///    delivered traffic, zero across failed links) — and per flow,
    ///    the delivered goodput; per directed link, the utilization.
    pub fn packet_epoch(&mut self) -> Result<PacketEpochReport, FrameworkError> {
        let mut plane = self.packet_plane.take().ok_or_else(|| {
            FrameworkError::Dataplane(dataplane::DataplaneError::Topology(
                "no packet plane attached; call attach_dataplane first".into(),
            ))
        })?;
        let result = self.packet_epoch_inner(&mut plane);
        self.packet_plane = Some(plane);
        result
    }

    fn packet_epoch_inner(
        &mut self,
        plane: &mut PacketPlane,
    ) -> Result<PacketEpochReport, FrameworkError> {
        // (1) ingress sync: stamp new flows, re-stamp migrated ones.
        let rewrites_before = plane.net.ingress_rewrites;
        let managed: Vec<(String, String, Option<f64>)> = self
            .flows
            .iter()
            .map(|f| (f.label.clone(), f.tunnel.clone(), f.demand))
            .collect();
        for (label, tunnel, demand) in &managed {
            let route = self.tunnel_packet_route(tunnel)?;
            match plane.stamped.get(label) {
                None => {
                    plane.net.add_flow(TrafficSpec {
                        name: label.clone(),
                        route,
                        payload_bytes: plane.cfg.flow_bytes,
                        rate_mbps: demand.unwrap_or(plane.cfg.default_flow_mbps),
                    })?;
                    plane.stamped.insert(label.clone(), tunnel.clone());
                }
                Some(current) if current != tunnel => {
                    plane.net.set_route(label, route)?;
                    plane.stamped.insert(label.clone(), tunnel.clone());
                }
                Some(_) => {}
            }
        }

        // (2) forward one window of packets; advance the fluid clock in
        // lockstep so timestamps and control-plane state (link events)
        // stay coherent.
        let epoch_ms = plane.cfg.epoch_ms.max(1);
        let window = plane.net.run_window(epoch_ms * 1_000_000);
        self.sim
            .run_until(self.sim.now_ms() + epoch_ms, self.sample_ms.max(1));
        let at = self.sim.now_ms();

        // (3) measured telemetry. Index the window by directed link.
        let by_dir: HashMap<(NodeIdx, NodeIdx), &dataplane::netem::LinkWindow> =
            window.links.iter().map(|l| ((l.from, l.to), l)).collect();
        let goodput_of: HashMap<&str, f64> = window
            .flows
            .iter()
            .map(|f| (f.name.as_str(), f.goodput_mbps))
            .collect();
        let mut tunnel_available = Vec::new();
        for name in self.tunnel_names() {
            let compiled = &self.tunnels[&name];
            let mut residual = f64::INFINITY;
            for hop in compiled.node_path.windows(2) {
                let Some(lw) = by_dir.get(&(hop[0], hop[1])) else {
                    residual = 0.0;
                    break;
                };
                if !lw.up {
                    residual = 0.0;
                    break;
                }
                residual = residual.min(lw.rate_mbps - lw.used_mbps);
            }
            // Capacity visible to the optimizer: bottleneck residual
            // plus what this tunnel's own streams already deliver
            // (mirrors the fluid collector's accounting).
            let own: f64 = goodput_of
                .get(format!("probe:{name}").as_str())
                .copied()
                .unwrap_or(0.0)
                + managed
                    .iter()
                    .filter(|(_, t, _)| *t == name)
                    .filter_map(|(l, _, _)| goodput_of.get(l.as_str()))
                    .sum::<f64>();
            let avail = residual.max(0.0) + own;
            self.telemetry.insert(
                &SeriesKey::new(&name, Metric::AvailableBandwidth),
                at,
                avail,
            );
            tunnel_available.push((name, avail));
        }
        let mut flow_goodput = Vec::new();
        for (label, _, _) in &managed {
            let g = goodput_of.get(label.as_str()).copied().unwrap_or(0.0);
            self.telemetry
                .insert(&SeriesKey::new(label, Metric::FlowRate), at, g);
            flow_goodput.push((label.clone(), g));
        }
        for lw in &window.links {
            let key = SeriesKey::new(
                &format!(
                    "link:{}-{}",
                    self.sim.topo.node_name(lw.from),
                    self.sim.topo.node_name(lw.to)
                ),
                Metric::LinkUtilization,
            );
            // Keep the store to series that have ever carried packets —
            // but once a series exists it must keep receiving samples,
            // including zeros, or a link that went idle (migration,
            // failure) would read as busy forever.
            if lw.report.tx_pkts == 0 && lw.used_mbps == 0.0 && self.telemetry.is_empty(&key) {
                continue;
            }
            self.telemetry
                .insert(&key, at, (lw.used_mbps / lw.rate_mbps.max(1e-9)).min(1.0));
        }
        plane.epochs += 1;
        let sum = |f: fn(&dataplane::FlowReport) -> u64| -> u64 {
            window.flows.iter().map(|w| f(&w.report)).sum()
        };
        Ok(PacketEpochReport {
            at_ms: at,
            tunnel_available,
            flow_goodput,
            delivered: sum(|r| r.delivered),
            dropped: sum(|r| {
                r.dropped_no_route + r.dropped_link_down + r.dropped_ttl + r.dropped_queue
            }),
            pot_rejected: sum(|r| r.pot_rejected),
            rewrites: plane.net.ingress_rewrites - rewrites_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Objective;
    use crate::scheduler::FlowRequest;
    use crate::PairId;

    fn attached() -> SelfDrivingNetwork {
        let mut sdn = SelfDrivingNetwork::testbed(5).unwrap();
        sdn.attach_dataplane(DataplaneConfig::default()).unwrap();
        sdn
    }

    #[test]
    fn probes_measure_every_tunnel() {
        let mut sdn = attached();
        let r = sdn.packet_epoch().unwrap();
        assert_eq!(r.tunnel_available.len(), 3);
        // Idle tunnels measure close to their configured bottlenecks
        // (20/10/5 Mbps), from real packet counters.
        let avail: HashMap<&str, f64> = r
            .tunnel_available
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        assert!((avail["tunnel1"] - 20.0).abs() < 1.0, "{avail:?}");
        assert!((avail["tunnel2"] - 10.0).abs() < 1.0, "{avail:?}");
        assert!((avail["tunnel3"] - 5.0).abs() < 1.0, "{avail:?}");
        assert_eq!(r.pot_rejected, 0);
        assert!(r.delivered > 0);
    }

    #[test]
    fn managed_flow_traffic_shows_up_in_counters() {
        let mut sdn = attached();
        sdn.admit_flow(
            &FlowRequest {
                label: "flow1".into(),
                tos: 32,
                demand_mbps: Some(6.0),
                start_ms: 0,
                pair: PairId::default(),
            },
            Objective::MaxBandwidth,
        )
        .unwrap();
        sdn.packet_epoch().unwrap();
        let r = sdn.packet_epoch().unwrap();
        let g = r.flow_goodput.iter().find(|(l, _)| l == "flow1").unwrap().1;
        assert!((g - 6.0).abs() < 0.5, "goodput {g}");
        // Link telemetry exists for the tunnel1 path.
        let key = SeriesKey::new("link:MIA-SAO", Metric::LinkUtilization);
        assert!(sdn.telemetry.last(&key).unwrap() > 0.2);
    }

    #[test]
    fn epoch_without_attachment_errors() {
        let mut sdn = SelfDrivingNetwork::testbed(5).unwrap();
        assert!(sdn.packet_epoch().is_err());
    }

    #[test]
    fn capacity_change_reaches_both_planes() {
        let mut sdn = attached();
        sdn.packet_epoch().unwrap();
        // Squeeze tunnel1's bottleneck from 20 to 2 Mbps.
        sdn.set_link_capacity("MIA", "SAO", 2.0).unwrap();
        let r = sdn.packet_epoch().unwrap();
        let avail1 = r
            .tunnel_available
            .iter()
            .find(|(n, _)| n == "tunnel1")
            .unwrap()
            .1;
        assert!(avail1 < 3.0, "packet plane saw the squeeze: {r:?}");
        // The fluid plane agrees.
        let t1 = sdn.tunnels["tunnel1"].node_path.clone();
        let fluid = sdn.sim.path_available_mbps(&t1).unwrap();
        assert!(fluid < 3.0, "fluid plane saw the squeeze: {fluid}");
        // Restore.
        sdn.set_link_capacity("MIA", "SAO", 20.0).unwrap();
        let r = sdn.packet_epoch().unwrap();
        let avail1 = r
            .tunnel_available
            .iter()
            .find(|(n, _)| n == "tunnel1")
            .unwrap()
            .1;
        assert!(avail1 > 15.0, "{r:?}");
    }

    #[test]
    fn link_failure_zeroes_the_tunnel_and_restoration_recovers() {
        let mut sdn = attached();
        sdn.packet_epoch().unwrap();
        sdn.set_link_state("MIA", "SAO", false).unwrap();
        let down = sdn.packet_epoch().unwrap();
        let avail1 = down
            .tunnel_available
            .iter()
            .find(|(n, _)| n == "tunnel1")
            .unwrap()
            .1;
        // A handful of in-flight packets may still drain in the first
        // failed epoch; the measured capacity collapses all the same.
        assert!(avail1 < 0.5, "{down:?}");
        assert!(down.dropped > 0);
        // The link's utilization series keeps receiving samples (now
        // zeros) instead of freezing at its pre-failure value.
        let util = sdn
            .telemetry
            .last(&SeriesKey::new("link:MIA-SAO", Metric::LinkUtilization))
            .unwrap();
        assert!(util < 0.01, "stale link series: {util}");
        sdn.set_link_state("MIA", "SAO", true).unwrap();
        let up = sdn.packet_epoch().unwrap();
        let avail1 = up
            .tunnel_available
            .iter()
            .find(|(n, _)| n == "tunnel1")
            .unwrap()
            .1;
        assert!(avail1 > 15.0, "{up:?}");
    }
}
