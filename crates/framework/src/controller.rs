//! The Controller: the Fig 4 decision sequence.
//!
//! "When a new data flow arrives, the Controller consults the Optimizer
//! to determine the most suitable path. After the optimal path is
//! identified, the Controller communicates this decision to the SR
//! Service, establishing the path and configuring a policy to route the
//! flow through it by adjusting the edge routers."

use crate::hecate::{HecateService, PathForecast};
use crate::optimizer::{
    assign_flows, assign_flows_shared_with, select_path, FlowDemand, Objective, OptimizerConfig,
    SharedLinkModel, SolverKind,
};
use crate::scheduler::FlowRequest;
use crate::telemetry::{Metric, SeriesKey, TelemetryService};
use crate::FrameworkError;

/// The outcome of one path decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PathDecision {
    /// Chosen tunnel name.
    pub tunnel: String,
    /// Whether the decision used Hecate forecasts (false = fallback to
    /// the arbitrary first candidate, the paper's "phase (i)").
    pub used_forecast: bool,
    /// Score of the chosen path under the objective (forecast mean);
    /// `None` on the cold-start fallback, where no forecast exists.
    /// (The seed used `f64::NAN` here, which silently broke the derived
    /// `PartialEq`: two identical cold-start decisions compared
    /// unequal.)
    pub score: Option<f64>,
}

/// The Fig 4 message sequence, recorded step by step so tests and the
/// repro harness can assert the exact interaction order.
#[derive(Debug, Clone, Default)]
pub struct SequenceLog {
    steps: Vec<String>,
}

impl SequenceLog {
    /// Records one interaction.
    pub fn record(&mut self, step: &str) {
        self.steps.push(step.to_string());
    }

    /// The recorded steps in order.
    pub fn steps(&self) -> &[String] {
        &self.steps
    }
}

/// Pure decision function: given telemetry and candidates, run the
/// Fig 4 consultation (getTelemetry → askHecatePath → Optimizer) and
/// return the decision. Falls back to the first candidate when
/// forecasting is impossible (cold start).
pub fn decide_path(
    hecate: &HecateService,
    telemetry: &TelemetryService,
    candidates: &[String],
    objective: Objective,
    log: &mut SequenceLog,
) -> Result<PathDecision, FrameworkError> {
    if candidates.is_empty() {
        return Err(FrameworkError::NoFeasiblePath);
    }
    log.record("getTelemetry");
    let metric = match objective {
        Objective::MinLatency => Metric::Rtt,
        _ => Metric::AvailableBandwidth,
    };
    log.record("askHecatePath");
    let forecasts = hecate.forecast_all(telemetry, candidates, metric);
    if forecasts.is_empty() {
        // Cold start: the paper's phase (i) "controller allocates the
        // flow to an arbitrary path".
        log.record("fallbackArbitraryPath");
        return Ok(PathDecision {
            tunnel: candidates[0].clone(),
            used_forecast: false,
            score: None,
        });
    }
    let best = select_path(objective, &forecasts)?;
    log.record("optimizerReturn");
    Ok(PathDecision {
        tunnel: best.path.clone(),
        used_forecast: true,
        score: Some(best.mean()),
    })
}

/// Exhaustive assignment is k^n; above this bound the batch falls back
/// to the online greedy placement.
const EXHAUSTIVE_ASSIGNMENT_BOUND: u64 = 100_000;

/// Batched decision function: one Fig 4 consultation for *every* flow
/// due in the same scheduler tick.
///
/// The per-path forecasts are computed once (fanned out in parallel,
/// served from Hecate's trained-model cache) and amortized across the
/// whole batch — the AMPF insight that per-flow ML path assignment only
/// scales when classifier cost is shared across arriving flows. Returns
/// one decision per request, in request order.
///
/// Placement semantics per objective:
///
/// * a batch of one always decides exactly like [`decide_path`];
/// * [`Objective::MaxBandwidth`] places the batch jointly: the
///   exhaustive [`assign_flows`] search (the same optimum the
///   re-optimizer uses) when `candidates^flows` is small enough,
///   otherwise an online greedy water-fill where each flow takes the
///   tunnel currently offering it the best share;
/// * the latency/utilization objectives have no flow-interaction model,
///   so every flow gets the single [`select_path`] winner;
/// * cold start sends the whole batch to the first candidate (phase i).
pub fn decide_flows(
    hecate: &HecateService,
    telemetry: &TelemetryService,
    requests: &[FlowRequest],
    candidates: &[String],
    objective: Objective,
    log: &mut SequenceLog,
) -> Result<Vec<PathDecision>, FrameworkError> {
    if candidates.is_empty() {
        return Err(FrameworkError::NoFeasiblePath);
    }
    if requests.is_empty() {
        return Ok(Vec::new());
    }
    if requests.len() == 1 {
        return Ok(vec![decide_path(
            hecate, telemetry, candidates, objective, log,
        )?]);
    }
    log.record("getTelemetry");
    let metric = match objective {
        Objective::MinLatency => Metric::Rtt,
        _ => Metric::AvailableBandwidth,
    };
    log.record("askHecatePath");
    let forecasts = hecate.forecast_all(telemetry, candidates, metric);
    if forecasts.is_empty() {
        log.record("fallbackArbitraryPath");
        return Ok(requests
            .iter()
            .map(|_| PathDecision {
                tunnel: candidates[0].clone(),
                used_forecast: false,
                score: None,
            })
            .collect());
    }
    let decisions = match objective {
        Objective::MaxBandwidth => {
            let caps: Vec<f64> = forecasts.iter().map(|f| f.mean().max(0.0)).collect();
            let tunnel_of_flow = place_batch(
                &caps,
                &requests.iter().map(|r| r.demand_mbps).collect::<Vec<_>>(),
            )?;
            tunnel_of_flow
                .into_iter()
                .map(|t| PathDecision {
                    tunnel: forecasts[t].path.clone(),
                    used_forecast: true,
                    score: Some(forecasts[t].mean()),
                })
                .collect()
        }
        _ => {
            let best = select_path(objective, &forecasts)?;
            requests
                .iter()
                .map(|_| PathDecision {
                    tunnel: best.path.clone(),
                    used_forecast: true,
                    score: Some(best.mean()),
                })
                .collect()
        }
    };
    log.record("optimizerReturn");
    Ok(decisions)
}

/// Places a batch of flows on tunnels with predicted capacities `caps`:
/// the exhaustive optimum when the search space is small, an online
/// greedy water-fill otherwise.
fn place_batch(caps: &[f64], demands: &[Option<f64>]) -> Result<Vec<usize>, FrameworkError> {
    let k = caps.len() as u64;
    let exhaustive_fits = k
        .checked_pow(demands.len().min(u32::MAX as usize) as u32)
        .is_some_and(|space| space <= EXHAUSTIVE_ASSIGNMENT_BOUND);
    if exhaustive_fits {
        return Ok(assign_flows(caps, demands)?.tunnel_of_flow);
    }
    // Online greedy: each flow takes the tunnel currently offering it
    // the best share. Greedy flows split a tunnel's residual evenly;
    // demand-limited flows reserve their demand. O(flows * tunnels).
    let mut reserved = vec![0.0f64; caps.len()];
    let mut greedy_count = vec![0usize; caps.len()];
    let mut placement = Vec::with_capacity(demands.len());
    for demand in demands {
        let share = |t: usize| -> f64 {
            let residual = (caps[t] - reserved[t]).max(0.0);
            match demand {
                Some(d) => d.min(residual / (greedy_count[t] + 1) as f64),
                None => residual / (greedy_count[t] + 1) as f64,
            }
        };
        let Some(best) = (0..caps.len()).max_by(|&a, &b| share(a).total_cmp(&share(b))) else {
            // No candidate tunnels at all: nothing to place on.
            return Err(FrameworkError::NoFeasiblePath);
        };
        match demand {
            Some(d) => reserved[best] += d,
            None => greedy_count[best] += 1,
        }
        placement.push(best);
    }
    Ok(placement)
}

/// Batched decision for a **multi-pair** network: one Fig 4
/// consultation for every flow due in the tick, across *all* managed
/// pairs, against the shared-link capacity model.
///
/// `tunnel_names` is the global candidate order (every pair's tunnels,
/// pair-scoped series names) aligned with `model.tunnel_links`; the
/// forecasts are therefore keyed `(pair, tunnel, metric)` in Hecate's
/// cache — one trained model per pair-scoped series, exactly like the
/// single-pair engine keys per tunnel.
///
/// Placement semantics mirror [`decide_flows`]:
///
/// * cold start (no forecastable series at all) sends each flow to its
///   own pair's first candidate;
/// * latency/utilization objectives have no flow-interaction model:
///   each pair's flows all take that pair's [`select_path`] winner;
/// * [`Objective::MaxBandwidth`] forms per-tunnel capacity caps
///   (forecast mean, falling back to the last observed sample, floored
///   at zero), folds them into the model as synthetic links
///   ([`SharedLinkModel::with_tunnel_caps`]), and places the batch with
///   [`crate::optimizer::assign_flows_shared`] — so no shared link is
///   oversubscribed.
///
/// Single-pair networks never call this: they keep the legacy
/// [`decide_flows`] path bit-for-bit.
pub fn decide_flows_pairs(
    hecate: &HecateService,
    telemetry: &TelemetryService,
    requests: &[FlowRequest],
    tunnel_names: &[String],
    model: &SharedLinkModel,
    objective: Objective,
    log: &mut SequenceLog,
) -> Result<Vec<PathDecision>, FrameworkError> {
    if tunnel_names.is_empty() || tunnel_names.len() != model.tunnel_links.len() {
        return Err(FrameworkError::NoFeasiblePath);
    }
    if requests.is_empty() {
        return Ok(Vec::new());
    }
    for req in requests {
        if model
            .candidates
            .get(req.pair.index())
            .is_none_or(|c| c.is_empty())
        {
            return Err(FrameworkError::NoFeasiblePath);
        }
    }
    log.record("getTelemetry");
    let metric = match objective {
        Objective::MinLatency => Metric::Rtt,
        _ => Metric::AvailableBandwidth,
    };
    log.record("askHecatePath");
    let forecasts = hecate.forecast_all(telemetry, tunnel_names, metric);
    let (decisions, _solver) = pair_decisions_from_forecasts(
        telemetry,
        requests,
        tunnel_names,
        model,
        objective,
        metric,
        &OptimizerConfig::default(),
        &forecasts,
        log,
    )?;
    Ok(decisions)
}

/// The placement tail shared by the sequential and sharded multi-pair
/// consultations: everything after the forecasts are in hand. Keeping
/// this single makes the sharded path bit-identical by construction —
/// the only thing sharding changes is *how* the forecasts were
/// gathered, and the merge re-establishes the sequential order before
/// this runs.
#[allow(clippy::too_many_arguments)]
fn pair_decisions_from_forecasts(
    telemetry: &TelemetryService,
    requests: &[FlowRequest],
    tunnel_names: &[String],
    model: &SharedLinkModel,
    objective: Objective,
    metric: Metric,
    config: &OptimizerConfig,
    forecasts: &[PathForecast],
    log: &mut SequenceLog,
) -> Result<(Vec<PathDecision>, Option<SolverKind>), FrameworkError> {
    if forecasts.is_empty() {
        // Cold start: each pair's phase-(i) arbitrary first candidate.
        log.record("fallbackArbitraryPath");
        return Ok((
            requests
                .iter()
                .map(|req| PathDecision {
                    tunnel: tunnel_names[model.candidates[req.pair.index()][0]].clone(),
                    used_forecast: false,
                    score: None,
                })
                .collect(),
            None,
        ));
    }
    let forecast_of = |t: usize| forecasts.iter().find(|f| f.path == tunnel_names[t]);
    let mut solver = None;
    let decisions = match objective {
        Objective::MaxBandwidth => {
            // Per-tunnel caps: forecast mean, else last sample, else 0.
            let caps: Vec<f64> = (0..tunnel_names.len())
                .map(|t| {
                    forecast_of(t)
                        .map(|f| f.mean())
                        .or_else(|| telemetry.last(&SeriesKey::new(&tunnel_names[t], metric)))
                        .unwrap_or(0.0)
                        .max(0.0)
                })
                .collect();
            let capped = model.clone().with_tunnel_caps(&caps);
            let flows: Vec<FlowDemand> = requests
                .iter()
                .map(|r| FlowDemand {
                    pair: r.pair,
                    demand: r.demand_mbps,
                })
                .collect();
            let (assignment, kind) = assign_flows_shared_with(&capped, &flows, config)?;
            solver = Some(kind);
            assignment
                .tunnel_of_flow
                .iter()
                .map(|&t| PathDecision {
                    tunnel: tunnel_names[t].clone(),
                    used_forecast: true,
                    score: forecast_of(t).map(|f| f.mean()),
                })
                .collect()
        }
        _ => {
            // No flow-interaction model: each pair's flows take that
            // pair's winner among its own forecasts.
            requests
                .iter()
                .map(|req| {
                    let mine: Vec<_> = model.candidates[req.pair.index()]
                        .iter()
                        .filter_map(|&t| forecast_of(t).cloned())
                        .collect();
                    match select_path(objective, &mine) {
                        Ok(best) => PathDecision {
                            tunnel: best.path.clone(),
                            used_forecast: true,
                            score: Some(best.mean()),
                        },
                        // This pair is still cold: arbitrary first.
                        Err(_) => PathDecision {
                            tunnel: tunnel_names[model.candidates[req.pair.index()][0]].clone(),
                            used_forecast: false,
                            score: None,
                        },
                    }
                })
                .collect()
        }
    };
    log.record("optimizerReturn");
    Ok((decisions, solver))
}

/// Per-shard accounting from one sharded consultation: which shard,
/// how many pair-scoped candidate series it forecast, and its isolated
/// busy time. The SDN layer emits one `decide.solve` span per entry,
/// after the join, in shard order — the same
/// emission-order-never-depends-on-scheduling idiom as the data
/// plane's sharded forwarder.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecisionShardReport {
    /// Shard index; the shard owns pairs `p` with `p % shards == shard`.
    pub shard: usize,
    /// Pair-scoped candidate series this shard forecast.
    pub series: usize,
    /// Busy time spent forecasting them (excludes merge and solve).
    pub busy_ns: u64,
}

/// What a sharded consultation produced.
#[derive(Debug, Clone)]
pub struct ShardedDecision {
    /// One decision per request, in request order — bit-identical to
    /// [`decide_flows_pairs`] at any shard count.
    pub decisions: Vec<PathDecision>,
    /// Which shared-link solver placed the batch (`None` on cold start
    /// and for the per-pair objectives, which never solve jointly).
    pub solver: Option<SolverKind>,
    /// Per-shard accounting, in shard order.
    pub shards: Vec<DecisionShardReport>,
}

/// [`decide_flows_pairs`] with the forecast fan-out partitioned across
/// `config.decision_shards` worker threads.
///
/// Each worker owns stateless clones of the Hecate and telemetry
/// service handles (both are `Arc`-backed, so "clone" is a pointer
/// copy) and forecasts the candidate series of the pairs it owns
/// (`pair % shards`) — disjoint series sets, so the per-series model
/// cache gives every worker exactly the forecasts the sequential pass
/// would have computed. Results come back over a crossbeam channel,
/// are re-ordered into the global candidate order, and the placement
/// tail is the *same code* the sequential path runs: the decisions are
/// bit-identical to [`decide_flows_pairs`] at any shard count
/// (pinned by `sharded_decisions.rs`).
///
/// `config.decision_shards <= 1` skips the thread machinery entirely.
#[allow(clippy::too_many_arguments)]
pub fn decide_flows_pairs_sharded(
    hecate: &HecateService,
    telemetry: &TelemetryService,
    requests: &[FlowRequest],
    tunnel_names: &[String],
    model: &SharedLinkModel,
    objective: Objective,
    config: &OptimizerConfig,
    log: &mut SequenceLog,
) -> Result<ShardedDecision, FrameworkError> {
    if tunnel_names.is_empty() || tunnel_names.len() != model.tunnel_links.len() {
        return Err(FrameworkError::NoFeasiblePath);
    }
    if requests.is_empty() {
        return Ok(ShardedDecision {
            decisions: Vec::new(),
            solver: None,
            shards: Vec::new(),
        });
    }
    for req in requests {
        if model
            .candidates
            .get(req.pair.index())
            .is_none_or(|c| c.is_empty())
        {
            return Err(FrameworkError::NoFeasiblePath);
        }
    }
    let shards = config
        .decision_shards
        .max(1)
        .min(model.candidates.len().max(1));
    log.record("getTelemetry");
    let metric = match objective {
        Objective::MinLatency => Metric::Rtt,
        _ => Metric::AvailableBandwidth,
    };
    log.record("askHecatePath");
    // Tunnel → owning pair, derived from the model rather than assuming
    // a pair-major layout of `tunnel_names`.
    let mut owner = vec![0usize; tunnel_names.len()];
    for (p, cand) in model.candidates.iter().enumerate() {
        for &t in cand {
            if let Some(o) = owner.get_mut(t) {
                *o = p;
            }
        }
    }
    let (forecasts, reports) = if shards == 1 {
        // detlint: allow(wall-clock) — shard busy time is the reported
        // quantity (span stamps), never fed back into a decision.
        #[allow(clippy::disallowed_methods)]
        let t0 = std::time::Instant::now();
        let forecasts = hecate.forecast_all(telemetry, tunnel_names, metric);
        let report = DecisionShardReport {
            shard: 0,
            series: tunnel_names.len(),
            busy_ns: t0.elapsed().as_nanos() as u64,
        };
        (forecasts, vec![report])
    } else {
        let (tx, rx) = crossbeam::channel::bounded(shards);
        let mut handles = Vec::with_capacity(shards);
        for s in 0..shards {
            let names: Vec<String> = (0..tunnel_names.len())
                .filter(|&t| owner[t] % shards == s)
                .map(|t| tunnel_names[t].clone())
                .collect();
            let worker_hecate = hecate.clone();
            let worker_telemetry = telemetry.clone();
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                // detlint: allow(wall-clock) — per-shard busy time is
                // the reported quantity (span stamps), never fed back
                // into a decision.
                #[allow(clippy::disallowed_methods)]
                let t0 = std::time::Instant::now();
                let forecasts = worker_hecate.forecast_all(&worker_telemetry, &names, metric);
                let busy_ns = t0.elapsed().as_nanos() as u64;
                let _ = tx.send((s, names.len(), forecasts, busy_ns));
            }));
        }
        drop(tx);
        let mut parts: Vec<(usize, usize, Vec<PathForecast>, u64)> = rx.iter().collect();
        for h in handles {
            // detlint: allow(bare-panic) — a panicked worker's
            // forecasts are gone; propagating the panic is the only
            // honest outcome.
            h.join().expect("decision shard worker panicked");
        }
        parts.sort_by_key(|&(s, ..)| s);
        // Merge back into the global candidate order — the order the
        // sequential fan-out returns — so the placement tail sees an
        // input independent of worker scheduling.
        let index: std::collections::BTreeMap<&str, usize> = tunnel_names
            .iter()
            .enumerate()
            .map(|(t, n)| (n.as_str(), t))
            .collect();
        let mut merged: Vec<(usize, PathForecast)> = Vec::new();
        let mut reports = Vec::with_capacity(shards);
        for (shard, series, forecasts, busy_ns) in parts {
            reports.push(DecisionShardReport {
                shard,
                series,
                busy_ns,
            });
            for f in forecasts {
                if let Some(&t) = index.get(f.path.as_str()) {
                    merged.push((t, f));
                }
            }
        }
        merged.sort_by_key(|&(t, _)| t);
        (merged.into_iter().map(|(_, f)| f).collect(), reports)
    };
    let (decisions, solver) = pair_decisions_from_forecasts(
        telemetry,
        requests,
        tunnel_names,
        model,
        objective,
        metric,
        config,
        &forecasts,
        log,
    )?;
    Ok(ShardedDecision {
        decisions,
        solver,
        shards: reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::SeriesKey;

    fn store_with(paths: &[(&str, f64)], metric: Metric) -> TelemetryService {
        let ts = TelemetryService::new(1000);
        for (name, level) in paths {
            for t in 0..40u64 {
                ts.insert(
                    &SeriesKey::new(name, metric),
                    t * 1000,
                    level + (t as f64 / 7.0).sin() * 0.5,
                );
            }
        }
        ts
    }

    fn candidates() -> Vec<String> {
        vec!["tunnel1".into(), "tunnel2".into(), "tunnel3".into()]
    }

    #[test]
    fn warm_decision_uses_forecasts() {
        let ts = store_with(
            &[("tunnel1", 20.0), ("tunnel2", 10.0), ("tunnel3", 5.0)],
            Metric::AvailableBandwidth,
        );
        let mut log = SequenceLog::default();
        let d = decide_path(
            &HecateService::new(),
            &ts,
            &candidates(),
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        assert_eq!(d.tunnel, "tunnel1");
        assert!(d.used_forecast);
        assert_eq!(
            log.steps(),
            &["getTelemetry", "askHecatePath", "optimizerReturn"]
        );
    }

    #[test]
    fn latency_objective_reads_rtt_series() {
        let ts = store_with(&[("tunnel1", 58.0), ("tunnel2", 16.0)], Metric::Rtt);
        let mut log = SequenceLog::default();
        let d = decide_path(
            &HecateService::new(),
            &ts,
            &["tunnel1".into(), "tunnel2".into()],
            Objective::MinLatency,
            &mut log,
        )
        .unwrap();
        assert_eq!(d.tunnel, "tunnel2");
        assert!((d.score.unwrap() - 16.0).abs() < 2.0);
    }

    #[test]
    fn cold_start_falls_back_to_first() {
        let ts = TelemetryService::new(10);
        let mut log = SequenceLog::default();
        let d = decide_path(
            &HecateService::new(),
            &ts,
            &candidates(),
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        assert_eq!(d.tunnel, "tunnel1");
        assert!(!d.used_forecast);
        assert!(log.steps().contains(&"fallbackArbitraryPath".to_string()));
    }

    #[test]
    fn no_candidates_is_error() {
        let ts = TelemetryService::new(10);
        let mut log = SequenceLog::default();
        assert!(decide_path(
            &HecateService::new(),
            &ts,
            &[],
            Objective::MaxBandwidth,
            &mut log
        )
        .is_err());
    }

    #[test]
    fn cold_start_decisions_compare_equal() {
        // The NAN score made two identical cold-start decisions unequal
        // under the derived PartialEq; Option<f64> restores reflexivity.
        let ts = TelemetryService::new(10);
        let mut log = SequenceLog::default();
        let h = HecateService::new();
        let a = decide_path(&h, &ts, &candidates(), Objective::MaxBandwidth, &mut log).unwrap();
        let b = decide_path(&h, &ts, &candidates(), Objective::MaxBandwidth, &mut log).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.score, None);
    }

    fn reqs(n: usize) -> Vec<FlowRequest> {
        (0..n)
            .map(|i| FlowRequest {
                label: format!("f{i}"),
                tos: 32,
                demand_mbps: None,
                start_ms: 0,
                pair: crate::PairId::default(),
            })
            .collect()
    }

    #[test]
    fn batch_of_one_matches_decide_path() {
        let ts = store_with(
            &[("tunnel1", 20.0), ("tunnel2", 10.0), ("tunnel3", 5.0)],
            Metric::AvailableBandwidth,
        );
        let h = HecateService::new();
        let mut log = SequenceLog::default();
        let single =
            decide_path(&h, &ts, &candidates(), Objective::MaxBandwidth, &mut log).unwrap();
        let batch = decide_flows(
            &h,
            &ts,
            &reqs(1),
            &candidates(),
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        assert_eq!(batch, vec![single]);
    }

    #[test]
    fn greedy_batch_spreads_across_tunnels() {
        // Three greedy flows over predicted capacities ~20/10/5: the
        // joint optimum is one flow per tunnel (the Fig 12 decision),
        // not all three piled on the fattest path.
        let ts = store_with(
            &[("tunnel1", 20.0), ("tunnel2", 10.0), ("tunnel3", 5.0)],
            Metric::AvailableBandwidth,
        );
        let h = HecateService::new();
        let mut log = SequenceLog::default();
        let decisions = decide_flows(
            &h,
            &ts,
            &reqs(3),
            &candidates(),
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        let mut tunnels: Vec<&str> = decisions.iter().map(|d| d.tunnel.as_str()).collect();
        tunnels.sort_unstable();
        assert_eq!(tunnels, vec!["tunnel1", "tunnel2", "tunnel3"]);
        assert!(decisions.iter().all(|d| d.used_forecast));
        assert!(decisions.iter().all(|d| d.score.is_some()));
        assert_eq!(
            log.steps(),
            &["getTelemetry", "askHecatePath", "optimizerReturn"],
            "one consultation for the whole batch"
        );
    }

    #[test]
    fn latency_batch_sends_everyone_to_the_fastest_path() {
        let ts = store_with(&[("tunnel1", 58.0), ("tunnel2", 16.0)], Metric::Rtt);
        let h = HecateService::new();
        let mut log = SequenceLog::default();
        let decisions = decide_flows(
            &h,
            &ts,
            &reqs(4),
            &["tunnel1".into(), "tunnel2".into()],
            Objective::MinLatency,
            &mut log,
        )
        .unwrap();
        assert!(decisions.iter().all(|d| d.tunnel == "tunnel2"));
    }

    #[test]
    fn cold_batch_falls_back_for_every_flow() {
        let ts = TelemetryService::new(10);
        let mut log = SequenceLog::default();
        let decisions = decide_flows(
            &HecateService::new(),
            &ts,
            &reqs(3),
            &candidates(),
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        assert_eq!(decisions.len(), 3);
        assert!(decisions
            .iter()
            .all(|d| d.tunnel == "tunnel1" && !d.used_forecast));
        assert!(log.steps().contains(&"fallbackArbitraryPath".to_string()));
    }

    #[test]
    fn empty_batch_is_empty() {
        let ts = TelemetryService::new(10);
        let mut log = SequenceLog::default();
        let decisions = decide_flows(
            &HecateService::new(),
            &ts,
            &[],
            &candidates(),
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        assert!(decisions.is_empty());
    }

    // ---- multi-pair batched decisions ----

    /// Two pairs, two tunnels each, tunnels 1 and 2 sharing link 2.
    fn pair_model() -> (SharedLinkModel, Vec<String>) {
        let model = SharedLinkModel::new(
            vec![20.0, 10.0, 10.0, 20.0, 10.0],
            vec![vec![0], vec![1, 2], vec![2, 3], vec![4]],
            vec![vec![0, 1], vec![2, 3]],
        );
        let names = vec![
            "p0/tunnel1".to_string(),
            "p0/tunnel2".to_string(),
            "p1/tunnel1".to_string(),
            "p1/tunnel2".to_string(),
        ];
        (model, names)
    }

    fn pair_reqs(pairs: &[usize]) -> Vec<FlowRequest> {
        pairs
            .iter()
            .enumerate()
            .map(|(i, &p)| FlowRequest {
                label: format!("f{i}"),
                tos: 32,
                demand_mbps: None,
                start_ms: 0,
                pair: crate::PairId(p),
            })
            .collect()
    }

    #[test]
    fn pair_batch_consults_scoped_series_and_spreads() {
        // Warm telemetry under the pair-scoped names: the consultation
        // is keyed (pair, tunnel, metric) and the joint placement sends
        // each pair to its uncontended tunnel.
        let (model, names) = pair_model();
        let ts = store_with(
            &[
                ("p0/tunnel1", 20.0),
                ("p0/tunnel2", 9.0),
                ("p1/tunnel1", 9.0),
                ("p1/tunnel2", 10.0),
            ],
            Metric::AvailableBandwidth,
        );
        let h = HecateService::new();
        let mut log = SequenceLog::default();
        let decisions = decide_flows_pairs(
            &h,
            &ts,
            &pair_reqs(&[0, 1]),
            &names,
            &model,
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        assert_eq!(decisions[0].tunnel, "p0/tunnel1");
        assert_eq!(decisions[1].tunnel, "p1/tunnel2");
        assert!(decisions.iter().all(|d| d.used_forecast));
        assert_eq!(
            log.steps(),
            &["getTelemetry", "askHecatePath", "optimizerReturn"],
            "one consultation for the whole cross-pair batch"
        );
    }

    #[test]
    fn pair_batch_cold_start_falls_back_per_pair() {
        let (model, names) = pair_model();
        let ts = TelemetryService::new(10);
        let mut log = SequenceLog::default();
        let decisions = decide_flows_pairs(
            &HecateService::new(),
            &ts,
            &pair_reqs(&[0, 1, 1]),
            &names,
            &model,
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        // Each flow lands on its own pair's first candidate, not a
        // global first.
        assert_eq!(decisions[0].tunnel, "p0/tunnel1");
        assert_eq!(decisions[1].tunnel, "p1/tunnel1");
        assert_eq!(decisions[2].tunnel, "p1/tunnel1");
        assert!(decisions.iter().all(|d| !d.used_forecast));
        assert!(log.steps().contains(&"fallbackArbitraryPath".to_string()));
    }

    #[test]
    fn pair_batch_latency_objective_decides_per_pair() {
        let (model, names) = pair_model();
        let ts = store_with(
            &[
                ("p0/tunnel1", 50.0),
                ("p0/tunnel2", 15.0),
                ("p1/tunnel1", 12.0),
                ("p1/tunnel2", 40.0),
            ],
            Metric::Rtt,
        );
        let mut log = SequenceLog::default();
        let decisions = decide_flows_pairs(
            &HecateService::new(),
            &ts,
            &pair_reqs(&[0, 1]),
            &names,
            &model,
            Objective::MinLatency,
            &mut log,
        )
        .unwrap();
        assert_eq!(decisions[0].tunnel, "p0/tunnel2", "pair 0's fastest");
        assert_eq!(decisions[1].tunnel, "p1/tunnel1", "pair 1's fastest");
    }

    #[test]
    fn pair_batch_rejects_unknown_pair() {
        let (model, names) = pair_model();
        let ts = TelemetryService::new(10);
        let mut log = SequenceLog::default();
        assert!(decide_flows_pairs(
            &HecateService::new(),
            &ts,
            &pair_reqs(&[5]),
            &names,
            &model,
            Objective::MaxBandwidth,
            &mut log,
        )
        .is_err());
    }

    #[test]
    fn huge_batch_uses_greedy_placement_and_terminates() {
        // 3^1000 would overflow the exhaustive search; the water-fill
        // must kick in, keep flows on real tunnels and still spread.
        let ts = store_with(
            &[("tunnel1", 20.0), ("tunnel2", 10.0), ("tunnel3", 5.0)],
            Metric::AvailableBandwidth,
        );
        let h = HecateService::new();
        let mut log = SequenceLog::default();
        let decisions = decide_flows(
            &h,
            &ts,
            &reqs(1000),
            &candidates(),
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        assert_eq!(decisions.len(), 1000);
        let on = |t: &str| decisions.iter().filter(|d| d.tunnel == t).count();
        assert!(on("tunnel1") > on("tunnel2"));
        assert!(on("tunnel2") > on("tunnel3"));
        assert!(on("tunnel3") > 0, "even the thinnest tunnel gets flows");
    }
}
