//! The Controller: the Fig 4 decision sequence.
//!
//! "When a new data flow arrives, the Controller consults the Optimizer
//! to determine the most suitable path. After the optimal path is
//! identified, the Controller communicates this decision to the SR
//! Service, establishing the path and configuring a policy to route the
//! flow through it by adjusting the edge routers."

use crate::hecate::HecateService;
use crate::optimizer::{select_path, Objective};
use crate::telemetry::{Metric, TelemetryService};
use crate::FrameworkError;

/// The outcome of one path decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PathDecision {
    /// Chosen tunnel name.
    pub tunnel: String,
    /// Whether the decision used Hecate forecasts (false = fallback to
    /// the arbitrary first candidate, the paper's "phase (i)").
    pub used_forecast: bool,
    /// Score of the chosen path under the objective (forecast mean).
    pub score: f64,
}

/// The Fig 4 message sequence, recorded step by step so tests and the
/// repro harness can assert the exact interaction order.
#[derive(Debug, Clone, Default)]
pub struct SequenceLog {
    steps: Vec<String>,
}

impl SequenceLog {
    /// Records one interaction.
    pub fn record(&mut self, step: &str) {
        self.steps.push(step.to_string());
    }

    /// The recorded steps in order.
    pub fn steps(&self) -> &[String] {
        &self.steps
    }
}

/// Pure decision function: given telemetry and candidates, run the
/// Fig 4 consultation (getTelemetry → askHecatePath → Optimizer) and
/// return the decision. Falls back to the first candidate when
/// forecasting is impossible (cold start).
pub fn decide_path(
    hecate: &HecateService,
    telemetry: &TelemetryService,
    candidates: &[String],
    objective: Objective,
    log: &mut SequenceLog,
) -> Result<PathDecision, FrameworkError> {
    if candidates.is_empty() {
        return Err(FrameworkError::NoFeasiblePath);
    }
    log.record("getTelemetry");
    let metric = match objective {
        Objective::MinLatency => Metric::Rtt,
        _ => Metric::AvailableBandwidth,
    };
    log.record("askHecatePath");
    let forecasts = hecate.forecast_all(telemetry, candidates, metric);
    if forecasts.is_empty() {
        // Cold start: the paper's phase (i) "controller allocates the
        // flow to an arbitrary path".
        log.record("fallbackArbitraryPath");
        return Ok(PathDecision {
            tunnel: candidates[0].clone(),
            used_forecast: false,
            score: f64::NAN,
        });
    }
    let best = select_path(objective, &forecasts)?;
    log.record("optimizerReturn");
    Ok(PathDecision {
        tunnel: best.path.clone(),
        used_forecast: true,
        score: best.mean(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::SeriesKey;

    fn store_with(paths: &[(&str, f64)], metric: Metric) -> TelemetryService {
        let ts = TelemetryService::new(1000);
        for (name, level) in paths {
            for t in 0..40u64 {
                ts.insert(
                    &SeriesKey::new(name, metric),
                    t * 1000,
                    level + (t as f64 / 7.0).sin() * 0.5,
                );
            }
        }
        ts
    }

    fn candidates() -> Vec<String> {
        vec!["tunnel1".into(), "tunnel2".into(), "tunnel3".into()]
    }

    #[test]
    fn warm_decision_uses_forecasts() {
        let ts = store_with(
            &[("tunnel1", 20.0), ("tunnel2", 10.0), ("tunnel3", 5.0)],
            Metric::AvailableBandwidth,
        );
        let mut log = SequenceLog::default();
        let d = decide_path(
            &HecateService::new(),
            &ts,
            &candidates(),
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        assert_eq!(d.tunnel, "tunnel1");
        assert!(d.used_forecast);
        assert_eq!(
            log.steps(),
            &["getTelemetry", "askHecatePath", "optimizerReturn"]
        );
    }

    #[test]
    fn latency_objective_reads_rtt_series() {
        let ts = store_with(&[("tunnel1", 58.0), ("tunnel2", 16.0)], Metric::Rtt);
        let mut log = SequenceLog::default();
        let d = decide_path(
            &HecateService::new(),
            &ts,
            &["tunnel1".into(), "tunnel2".into()],
            Objective::MinLatency,
            &mut log,
        )
        .unwrap();
        assert_eq!(d.tunnel, "tunnel2");
        assert!((d.score - 16.0).abs() < 2.0);
    }

    #[test]
    fn cold_start_falls_back_to_first() {
        let ts = TelemetryService::new(10);
        let mut log = SequenceLog::default();
        let d = decide_path(
            &HecateService::new(),
            &ts,
            &candidates(),
            Objective::MaxBandwidth,
            &mut log,
        )
        .unwrap();
        assert_eq!(d.tunnel, "tunnel1");
        assert!(!d.used_forecast);
        assert!(log.steps().contains(&"fallbackArbitraryPath".to_string()));
    }

    #[test]
    fn no_candidates_is_error() {
        let ts = TelemetryService::new(10);
        let mut log = SequenceLog::default();
        assert!(decide_path(
            &HecateService::new(),
            &ts,
            &[],
            Objective::MaxBandwidth,
            &mut log
        )
        .is_err());
    }
}
